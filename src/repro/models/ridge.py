"""Linear (ridge) regression — the framework's "regression" instantiation.

Section III-A: for regression the target ``y`` is a real number.  The loss
is the squared error ``l = ½(w'x − y)²`` with the λ/2‖w‖² regularizer of
Eq. (2); the per-sample gradient is ``(w'x − y)·x``.

Because the residual ``w'x − y`` is unbounded in general, the gradient's L1
sensitivity is controlled by clipping the residual to ``[-residual_bound,
+residual_bound]`` before forming the gradient (a standard DP-SGD device:
clipping is applied identically to every sample, so the Appendix-A swap
argument gives sensitivity ``2·r·R/b``).
"""

from __future__ import annotations

import numpy as np

from repro.models.base import Model
from repro.privacy.sensitivity import squared_loss_gradient_sensitivity
from repro.utils.exceptions import ConfigurationError
from repro.utils.validation import check_matrix, check_positive, check_vector


class RidgeRegression(Model):
    """Scalar linear regression with squared loss and residual clipping.

    Labels are real numbers rather than class indices, so this model
    overrides the label validation and the (meaningless) error-rate oracles
    report the fraction of predictions farther than ``error_tolerance``
    from the target, giving the device runtime a uniform "n_e" to report.

    Examples
    --------
    >>> import numpy as np
    >>> model = RidgeRegression(num_features=2)
    >>> w = np.array([1.0, -1.0])
    >>> float(model.predict(w, np.array([[2.0, 1.0]]))[0])
    1.0
    """

    def __init__(
        self,
        num_features: int,
        l2_regularization: float = 0.0,
        *,
        residual_bound: float = 1.0,
        error_tolerance: float = 0.5,
    ):
        super().__init__(num_features, num_classes=1, l2_regularization=l2_regularization)
        self._residual_bound = check_positive(residual_bound, "residual_bound")
        self._error_tolerance = check_positive(error_tolerance, "error_tolerance")

    @property
    def num_parameters(self) -> int:
        return self.num_features

    @property
    def residual_bound(self) -> float:
        """Clipping bound r on the residual w'x − y."""
        return self._residual_bound

    def validate_batch(self, features, labels=None):
        features = check_matrix(features, "features", shape=(None, self.num_features))
        if labels is None:
            return features, None
        labels = check_vector(labels, "labels", size=features.shape[0])
        return features, labels

    def predict(self, parameters: np.ndarray, features: np.ndarray) -> np.ndarray:
        features, _ = self.validate_batch(features)
        parameters = np.asarray(parameters, dtype=np.float64)
        if parameters.shape != (self.num_parameters,):
            raise ValueError(
                f"parameters must have shape ({self.num_parameters},), "
                f"got {parameters.shape}"
            )
        return features @ parameters

    def _clipped_residual(self, parameters, features, labels) -> np.ndarray:
        residual = self.predict(parameters, features) - labels
        return np.clip(residual, -self._residual_bound, self._residual_bound)

    def loss(self, parameters: np.ndarray, features: np.ndarray, labels: np.ndarray) -> float:
        features, labels = self.validate_batch(features, labels)
        residual = self.predict(parameters, features) - labels
        reg = 0.5 * self.l2_regularization * float(np.dot(parameters, parameters))
        return 0.5 * float(np.mean(residual**2)) + reg

    def gradient(
        self, parameters: np.ndarray, features: np.ndarray, labels: np.ndarray
    ) -> np.ndarray:
        """Averaged clipped-residual gradient, including λw."""
        features, labels = self.validate_batch(features, labels)
        residual = self._clipped_residual(parameters, features, labels)
        grad = features.T @ residual / features.shape[0]
        if self.l2_regularization:
            grad = grad + self.l2_regularization * np.asarray(parameters, dtype=np.float64)
        return grad

    def gradient_sensitivity(self, batch_size: int) -> float:
        """``2·r·R/b`` with residual bound r and ‖x‖₁ ≤ R = 1."""
        return squared_loss_gradient_sensitivity(
            batch_size, feature_l1_bound=1.0, residual_bound=self._residual_bound
        )

    def prediction_errors(self, parameters, features, labels) -> np.ndarray:
        """A prediction "errs" when it is off by more than ``error_tolerance``."""
        features, labels = self.validate_batch(features, labels)
        return np.abs(self.predict(parameters, features) - labels) > self._error_tolerance
