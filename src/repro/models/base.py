"""Model interface shared by every classifier/predictor in the framework.

Section III-A: a wide range of learning algorithms is represented by a
predictor ``h(x; w)`` and a loss ``l(y, h(x; w))``; Crowd-ML only needs
three operations from a model — predict, evaluate the loss, and compute the
(sub)gradient of the loss with respect to the parameters.  The model also
reports the L1 global sensitivity of its averaged minibatch gradient, which
the device uses to calibrate the Laplace mechanism (Theorem 1).

Parameters are stored as a single flat ``numpy`` vector so that the server
update (Eq. 3), the projection ``Π_W``, and the noise mechanisms are all
model-agnostic.  Multiclass models internally reshape the flat vector into
a ``(C, D)`` matrix.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

from repro.utils.exceptions import ConfigurationError
from repro.utils.validation import check_labels, check_matrix, check_non_negative


class Model(ABC):
    """A parametric classifier/predictor with loss and gradient oracles.

    Subclasses implement the static shape of the parameter vector plus the
    three oracles on *batches*: :meth:`predict`, :meth:`loss`, and
    :meth:`gradient` (the averaged gradient over the batch, including the
    λ-regularization term, exactly the quantity each device releases).
    """

    def __init__(self, num_features: int, num_classes: int, l2_regularization: float = 0.0):
        if num_features <= 0:
            raise ConfigurationError(f"num_features must be positive, got {num_features}")
        if num_classes <= 0:
            raise ConfigurationError(f"num_classes must be positive, got {num_classes}")
        self._num_features = int(num_features)
        self._num_classes = int(num_classes)
        self._l2_regularization = check_non_negative(l2_regularization, "l2_regularization")

    @property
    def num_features(self) -> int:
        """Feature dimension D."""
        return self._num_features

    @property
    def num_classes(self) -> int:
        """Number of classes C (1 for scalar regression)."""
        return self._num_classes

    @property
    def l2_regularization(self) -> float:
        """Regularization weight λ of Eq. (2)."""
        return self._l2_regularization

    @property
    @abstractmethod
    def num_parameters(self) -> int:
        """Length of the flat parameter vector."""

    def init_parameters(self, rng: Optional[np.random.Generator] = None, scale: float = 0.0
                        ) -> np.ndarray:
        """Return an initial flat parameter vector.

        ``scale = 0`` gives the all-zeros start; a positive scale draws the
        "randomized w" initialization of Algorithm 2 from N(0, scale²).
        """
        if scale < 0:
            raise ConfigurationError(f"scale must be non-negative, got {scale}")
        if scale == 0.0 or rng is None:
            return np.zeros(self.num_parameters, dtype=np.float64)
        return rng.normal(0.0, scale, size=self.num_parameters)

    def validate_batch(self, features: np.ndarray, labels: Optional[np.ndarray] = None,
                       validate: bool = True):
        """Coerce and check a feature batch (and labels when given).

        ``validate=False`` skips the checks (and the label-dtype copy) for
        callers that guarantee well-formed float64/int64 arrays — the
        device hot path validates once at buffering time, not once per
        oracle call.  Outputs are bit-identical either way for valid
        input.
        """
        if not validate:
            return features, labels
        features = check_matrix(features, "features", shape=(None, self._num_features))
        if labels is None:
            return features, None
        labels = self._validate_labels(labels, features.shape[0])
        return features, labels

    def _validate_labels(self, labels: np.ndarray, batch_size: int) -> np.ndarray:
        labels = check_labels(labels, "labels", self._num_classes)
        if labels.shape[0] != batch_size:
            raise ConfigurationError(
                f"labels length {labels.shape[0]} != batch size {batch_size}"
            )
        return labels

    @abstractmethod
    def predict(self, parameters: np.ndarray, features: np.ndarray) -> np.ndarray:
        """Predict targets for a ``(n, D)`` feature batch."""

    @abstractmethod
    def loss(self, parameters: np.ndarray, features: np.ndarray, labels: np.ndarray) -> float:
        """Mean loss over the batch, including the λ/2‖w‖² term."""

    @abstractmethod
    def gradient(
        self, parameters: np.ndarray, features: np.ndarray, labels: np.ndarray
    ) -> np.ndarray:
        """Averaged (sub)gradient over the batch, flat, including λw."""

    @abstractmethod
    def gradient_sensitivity(self, batch_size: int) -> float:
        """L1 global sensitivity of the averaged gradient (data term only).

        This is the sensitivity with respect to swapping one *sample*; the
        λw term is sample-independent and contributes nothing.  Assumes
        ``‖x‖₁ ≤ 1`` (the library's preprocessing enforces this).
        """

    def prediction_errors(
        self, parameters: np.ndarray, features: np.ndarray, labels: np.ndarray
    ) -> np.ndarray:
        """Boolean per-sample error indicators (Algorithm 1, Routine 2).

        Classification: prediction ≠ label.  Regression models override
        this with a tolerance criterion.
        """
        features, labels = self.validate_batch(features, labels)
        return self.predict(parameters, features) != labels

    def errors_and_gradient(
        self, parameters: np.ndarray, features: np.ndarray, labels: np.ndarray,
        validate: bool = True,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-sample errors and the averaged gradient of one batch.

        This is Routine 2's inner computation, fused so subclasses can
        share one forward pass (one validation, one score matrix) between
        the two oracles.  The default delegates to the two separate
        oracles; overrides must be *bit-identical* to that default — the
        device hot path relies on it.  ``validate=False`` is the trusted
        fast path for pre-validated buffers (see :meth:`validate_batch`).
        """
        return (
            self.prediction_errors(parameters, features, labels),
            self.gradient(parameters, features, labels),
        )

    def error_rate(self, parameters: np.ndarray, features: np.ndarray, labels: np.ndarray
                   ) -> float:
        """Fraction of misclassified samples."""
        return float(np.mean(self.prediction_errors(parameters, features, labels)))

    def misclassified_count(
        self, parameters: np.ndarray, features: np.ndarray, labels: np.ndarray
    ) -> int:
        """Number of misclassified samples n_e (Algorithm 1, Routine 2)."""
        return int(np.sum(self.prediction_errors(parameters, features, labels)))

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(num_features={self._num_features}, "
            f"num_classes={self._num_classes}, "
            f"l2_regularization={self._l2_regularization})"
        )
