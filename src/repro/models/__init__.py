"""Classifier/predictor zoo: the ``h(x; w)``, ``l`` pairs of Section III-A.

* :class:`~repro.models.logistic.MulticlassLogisticRegression` — Table I,
  the model used in every experiment of the paper.
* :class:`~repro.models.linear_svm.MulticlassLinearSVM` — Crammer-Singer
  hinge loss, one of the other supported algorithm families.
* :class:`~repro.models.ridge.RidgeRegression` — the regression
  instantiation (real-valued targets).

All models share the flat-parameter :class:`~repro.models.base.Model`
interface and report the L1 sensitivity of their averaged minibatch
gradient so devices can calibrate the Laplace mechanism of Theorem 1.
"""

from repro.models.base import Model
from repro.models.linear_svm import MulticlassLinearSVM
from repro.models.logistic import MulticlassLogisticRegression
from repro.models.ridge import RidgeRegression

__all__ = [
    "Model",
    "MulticlassLinearSVM",
    "MulticlassLogisticRegression",
    "RidgeRegression",
]
