"""Multiclass linear SVM (Crammer-Singer hinge loss).

One of the "wide range of learning algorithms" Section III-A says the
framework supports.  The loss for a sample ``(x, y)`` is

    l(w; x, y) = max(0, 1 + max_{k ≠ y} w_k' x − w_y' x)

with subgradient ``+x`` in the most-violating row ``k*`` and ``−x`` in row
``y`` when the margin is violated (zero otherwise).  The averaged
subgradient therefore has the same 4/b L1 sensitivity as logistic
regression under ``‖x‖₁ ≤ 1``, so the device can calibrate its Laplace
mechanism identically.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import Model
from repro.privacy.sensitivity import hinge_gradient_sensitivity


class MulticlassLinearSVM(Model):
    """Crammer-Singer multiclass SVM trained by subgradient descent.

    Examples
    --------
    >>> import numpy as np
    >>> model = MulticlassLinearSVM(num_features=2, num_classes=3)
    >>> w = model.init_parameters()
    >>> model.loss(w, np.array([[1.0, 0.0]]), np.array([0])) == 1.0
    True
    """

    @property
    def num_parameters(self) -> int:
        return self.num_classes * self.num_features

    def _weights(self, parameters: np.ndarray) -> np.ndarray:
        parameters = np.asarray(parameters, dtype=np.float64)
        if parameters.shape != (self.num_parameters,):
            raise ValueError(
                f"parameters must have shape ({self.num_parameters},), "
                f"got {parameters.shape}"
            )
        return parameters.reshape(self.num_classes, self.num_features)

    def scores(self, parameters: np.ndarray, features: np.ndarray) -> np.ndarray:
        """Class scores ``x W'`` with shape ``(n, C)``."""
        features, _ = self.validate_batch(features)
        return features @ self._weights(parameters).T

    def predict(self, parameters: np.ndarray, features: np.ndarray) -> np.ndarray:
        return np.argmax(self.scores(parameters, features), axis=1)

    def _margins(self, scores: np.ndarray, labels: np.ndarray):
        """Return (violating class k*, hinge value) per sample."""
        n = scores.shape[0]
        rows = np.arange(n)
        true_scores = scores[rows, labels]
        rival = scores.copy()
        rival[rows, labels] = -np.inf
        rival_class = np.argmax(rival, axis=1)
        rival_scores = rival[rows, rival_class]
        hinge = 1.0 + rival_scores - true_scores
        return rival_class, np.maximum(hinge, 0.0)

    def loss(self, parameters: np.ndarray, features: np.ndarray, labels: np.ndarray) -> float:
        features, labels = self.validate_batch(features, labels)
        scores = features @ self._weights(parameters).T
        _, hinge = self._margins(scores, labels)
        reg = 0.5 * self.l2_regularization * float(np.dot(parameters, parameters))
        return float(np.mean(hinge)) + reg

    def gradient(
        self, parameters: np.ndarray, features: np.ndarray, labels: np.ndarray
    ) -> np.ndarray:
        """Averaged Crammer-Singer subgradient, flat, including λw."""
        features, labels = self.validate_batch(features, labels)
        n = features.shape[0]
        scores = features @ self._weights(parameters).T
        rival_class, hinge = self._margins(scores, labels)
        active = hinge > 0.0
        grad = np.zeros((self.num_classes, self.num_features), dtype=np.float64)
        if np.any(active):
            rows = np.where(active)[0]
            # +x on the violating class, -x on the true class.
            np.add.at(grad, rival_class[rows], features[rows])
            np.add.at(grad, labels[rows], -features[rows])
        flat = grad.reshape(-1) / n
        if self.l2_regularization:
            flat = flat + self.l2_regularization * np.asarray(parameters, dtype=np.float64)
        return flat

    def gradient_sensitivity(self, batch_size: int) -> float:
        """Same 4/b bound as logistic regression (see module docstring)."""
        return hinge_gradient_sensitivity(batch_size)
