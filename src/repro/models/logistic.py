"""Multiclass logistic regression — Table I of the paper.

    Prediction:  argmax_k  w_k' x
    Risk:        (1/N) Σ_i [ −w_{y_i}' x_i + log Σ_l exp(w_l' x_i) ]
                 + (λ/2) Σ_k ‖w_k‖²
    Gradient:    ∇_{w_k} R = (1/N) Σ_i x_i [ −I[y_i = k] + P(y = k | x_i) ]
                 + λ w_k

Parameters are stored flat as the row-major flattening of the ``(C, D)``
matrix ``[w_1; ...; w_C]``.  The averaged data gradient has L1 sensitivity
``4/b`` for ``‖x‖₁ ≤ 1`` (Appendix A), which is what
:meth:`MulticlassLogisticRegression.gradient_sensitivity` reports.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.models.base import Model
from repro.privacy.sensitivity import logistic_gradient_sensitivity
from repro.utils.numerics import log_sum_exp, one_hot, softmax

#: Reusable row-index buffer for the fused oracle's in-place one-hot
#: subtraction — grown on demand, sliced per call (batches are small and
#: the oracle runs once per check-in).
_ROW_INDICES = np.arange(64)


def _row_indices(count: int) -> np.ndarray:
    global _ROW_INDICES
    if count > _ROW_INDICES.shape[0]:
        _ROW_INDICES = np.arange(max(count, 2 * _ROW_INDICES.shape[0]))
    return _ROW_INDICES[:count]


class MulticlassLogisticRegression(Model):
    """Softmax classifier with L2 regularization (Table I).

    Examples
    --------
    >>> import numpy as np
    >>> model = MulticlassLogisticRegression(num_features=2, num_classes=3)
    >>> w = model.init_parameters()
    >>> x = np.array([[0.5, 0.5]])
    >>> int(model.predict(w, x)[0]) in {0, 1, 2}
    True
    """

    @property
    def num_parameters(self) -> int:
        return self.num_classes * self.num_features

    def _weights(self, parameters: np.ndarray) -> np.ndarray:
        parameters = np.asarray(parameters, dtype=np.float64)
        if parameters.shape != (self.num_parameters,):
            raise ValueError(
                f"parameters must have shape ({self.num_parameters},), "
                f"got {parameters.shape}"
            )
        return parameters.reshape(self.num_classes, self.num_features)

    def scores(self, parameters: np.ndarray, features: np.ndarray) -> np.ndarray:
        """Class scores ``x W'`` with shape ``(n, C)``."""
        features, _ = self.validate_batch(features)
        return features @ self._weights(parameters).T

    def posterior(self, parameters: np.ndarray, features: np.ndarray) -> np.ndarray:
        """Class posteriors ``P(y = k | x)`` with shape ``(n, C)``."""
        return softmax(self.scores(parameters, features), axis=1)

    def predict(self, parameters: np.ndarray, features: np.ndarray) -> np.ndarray:
        """argmax_k w_k' x for each row of ``features``."""
        return np.argmax(self.scores(parameters, features), axis=1)

    def loss(self, parameters: np.ndarray, features: np.ndarray, labels: np.ndarray) -> float:
        """Mean negative log-likelihood plus (λ/2)‖w‖² (Table I risk)."""
        features, labels = self.validate_batch(features, labels)
        scores = features @ self._weights(parameters).T
        true_scores = scores[np.arange(scores.shape[0]), labels]
        nll = float(np.mean(log_sum_exp(scores, axis=1) - true_scores))
        reg = 0.5 * self.l2_regularization * float(np.dot(parameters, parameters))
        return nll + reg

    def gradient(
        self, parameters: np.ndarray, features: np.ndarray, labels: np.ndarray
    ) -> np.ndarray:
        """Averaged gradient of Table I, flat, including the λw term."""
        features, labels = self.validate_batch(features, labels)
        n = features.shape[0]
        probs = softmax(features @ self._weights(parameters).T, axis=1)
        residual = probs - one_hot(labels, self.num_classes)  # (n, C)
        grad = residual.T @ features / n  # (C, D)
        flat = grad.reshape(-1)
        if self.l2_regularization:
            flat = flat + self.l2_regularization * np.asarray(parameters, dtype=np.float64)
        return flat

    def errors_and_gradient(
        self, parameters: np.ndarray, features: np.ndarray, labels: np.ndarray,
        validate: bool = True,
    ) -> tuple[np.ndarray, np.ndarray]:
        """One shared score matrix for both Routine 2 oracles.

        Bit-identical to the separate calls: ``prediction_errors`` is
        ``argmax`` over the same ``x W'`` scores, and ``gradient`` applies
        ``softmax`` to them — computing the matmul once changes no bits
        (the one-hot subtraction is performed in place on the softmax
        output: subtracting 1.0 from the label entries and 0.0 from the
        rest is the identical float operation).
        """
        features, labels = self.validate_batch(features, labels, validate)
        scores = features @ self._weights(parameters).T
        errors = scores.argmax(axis=1) != labels
        residual = softmax(scores, axis=1)
        residual[_row_indices(residual.shape[0]), labels] -= 1.0
        flat = (residual.T @ features / features.shape[0]).reshape(-1)
        if self.l2_regularization:
            flat = flat + self.l2_regularization * np.asarray(parameters, dtype=np.float64)
        return errors, flat

    def gradient_sensitivity(self, batch_size: int) -> float:
        """Appendix A bound: 4/b under ‖x‖₁ ≤ 1."""
        return logistic_gradient_sensitivity(batch_size)

    def per_sample_gradients(
        self, parameters: np.ndarray, features: np.ndarray, labels: np.ndarray
    ) -> np.ndarray:
        """Per-sample data gradients, shape ``(n, C·D)`` (no λ term).

        Exposed for the Eq. (13) noise-power ablation, which needs
        ``E[‖g‖²]`` over individual sample gradients.
        """
        features, labels = self.validate_batch(features, labels)
        probs = softmax(features @ self._weights(parameters).T, axis=1)
        residual = probs - one_hot(labels, self.num_classes)  # (n, C)
        # grads[i] = outer(residual[i], features[i]) flattened row-major.
        grads = residual[:, :, None] * features[:, None, :]  # (n, C, D)
        return grads.reshape(features.shape[0], -1)
