"""Named, parameterized component registries.

The declarative experiment layer (:mod:`repro.experiments`) refers to
models, dataset makers, partitioners, learning-rate schedules, and privacy
mechanisms *by name*, so that an :class:`~repro.experiments.ArmSpec` is pure
data (serializable to JSON) and a worker process can rebuild every component
from ``(name, kwargs)`` pairs.  Downstream code extends the system without
touching core modules::

    from repro.registry import MODELS

    @MODELS.register("my_model")
    def _build(num_features, num_classes, **kwargs):
        return MyModel(num_features, num_classes, **kwargs)

Six registries are populated at import time with every built-in component:

* :data:`MODELS` — ``logistic``, ``linear_svm``, ``ridge``.
* :data:`DATASETS` — ``mnist_like``, ``cifar_like``, ``activity_stream``,
  ``thermostat``.
* :data:`PARTITIONERS` — ``iid``, ``dirichlet``, ``shard``.
* :data:`SCHEDULES` — ``inverse_sqrt``, ``constant``, ``inverse_time``,
  ``step_decay``.
* :data:`PRIVACY_MECHANISMS` — ``laplace``, ``discrete_laplace``,
  ``gaussian``, ``exponential``.
* :data:`GATEWAY_ASSIGNMENTS` — ``round_robin``, ``block``, ``hash``
  device→gateway assignment policies for the two-tier topology.
* :data:`SHARD_ROUTING` — ``stable_hash``, ``modulo`` device→shard
  routing policies for the multi-worker serving tier.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, Optional

from repro.utils.exceptions import ReproError


class RegistryError(ReproError):
    """An unknown name was looked up, or a name was registered twice."""


class Registry:
    """A mapping from names to component factories.

    Parameters
    ----------
    kind:
        Human-readable description of what the registry holds (used in
        error messages, e.g. ``"model"``).

    Examples
    --------
    >>> reg = Registry("greeter")
    >>> @reg.register("hello")
    ... def make_hello(name="world"):
    ...     return f"hello, {name}"
    >>> reg.create("hello", name="crowd")
    'hello, crowd'
    >>> "hello" in reg
    True
    """

    def __init__(self, kind: str):
        self._kind = kind
        self._factories: Dict[str, Callable[..., Any]] = {}

    @property
    def kind(self) -> str:
        """What this registry holds (``"model"``, ``"dataset maker"``, ...)."""
        return self._kind

    def register(
        self,
        name: str,
        factory: Optional[Callable[..., Any]] = None,
        *,
        overwrite: bool = False,
    ):
        """Register ``factory`` under ``name``.

        Usable directly (``reg.register("x", build_x)``) or as a decorator
        (``@reg.register("x")``).  Registering an existing name raises
        :class:`RegistryError` unless ``overwrite=True``.
        """

        def _add(fn: Callable[..., Any]) -> Callable[..., Any]:
            if not overwrite and name in self._factories:
                raise RegistryError(
                    f"{self._kind} '{name}' is already registered; "
                    f"pass overwrite=True to replace it"
                )
            self._factories[name] = fn
            return fn

        if factory is not None:
            return _add(factory)
        return _add

    def unregister(self, name: str) -> None:
        """Remove ``name`` (raises :class:`RegistryError` if absent)."""
        self.get(name)
        del self._factories[name]

    def get(self, name: str) -> Callable[..., Any]:
        """Return the factory registered under ``name``."""
        try:
            return self._factories[name]
        except KeyError:
            known = ", ".join(sorted(self._factories)) or "<none>"
            raise RegistryError(
                f"unknown {self._kind} '{name}' (registered: {known})"
            ) from None

    def create(self, name: str, /, **kwargs: Any) -> Any:
        """Instantiate the component: ``get(name)(**kwargs)``.

        ``name`` is positional-only so component factories may themselves
        take a ``name`` keyword.
        """
        return self.get(name)(**kwargs)

    def names(self) -> tuple[str, ...]:
        """All registered names, sorted."""
        return tuple(sorted(self._factories))

    def __contains__(self, name: object) -> bool:
        return name in self._factories

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._factories)

    def __repr__(self) -> str:
        return f"Registry(kind={self._kind!r}, names={list(self.names())})"


#: Classifier/predictor families (``h(x; w)`` of Section III-A).
MODELS = Registry("model")
#: ``(train, test)`` dataset makers (plus the Fig. 3 stream generator).
DATASETS = Registry("dataset maker")
#: Sample-to-device assignment strategies.
PARTITIONERS = Registry("partitioner")
#: Learning-rate schedules (Eq. 5 and Remark 3 alternatives).
SCHEDULES = Registry("schedule")
#: Differential-privacy noise mechanisms.
PRIVACY_MECHANISMS = Registry("privacy mechanism")
#: Device→gateway assignment policies for the two-tier gateway topology.
#: Factories take ``num_devices`` and ``num_gateways`` and return a
#: sequence of gateway indices, one per device.
GATEWAY_ASSIGNMENTS = Registry("gateway assignment policy")
#: Device→shard routing policies for the sharded serving tier
#: (:mod:`repro.shard`).  Factories take no arguments and return a
#: routing function ``(device_id, num_shards) -> shard_index``.  Unlike
#: :data:`GATEWAY_ASSIGNMENTS` (which precomputes a list for a known
#: device population), routing functions handle *open* device-id spaces:
#: any id a client ever presents maps to a shard.
SHARD_ROUTING = Registry("shard routing policy")


def _register_builtins() -> None:
    from repro.data import (
        dirichlet_partition,
        iid_partition,
        make_activity_stream,
        make_cifar_like,
        make_mnist_like,
        make_thermostat_split,
        shard_partition,
    )
    from repro.models import (
        MulticlassLinearSVM,
        MulticlassLogisticRegression,
        RidgeRegression,
    )
    from repro.optim import (
        ConstantRate,
        InverseSqrtRate,
        InverseTimeRate,
        StepDecayRate,
    )
    from repro.privacy import (
        DiscreteLaplaceMechanism,
        ExponentialMechanism,
        GaussianMechanism,
        LaplaceMechanism,
    )

    MODELS.register("logistic", MulticlassLogisticRegression)
    MODELS.register("linear_svm", MulticlassLinearSVM)
    MODELS.register("ridge", RidgeRegression)

    DATASETS.register("mnist_like", make_mnist_like)
    DATASETS.register("cifar_like", make_cifar_like)
    DATASETS.register("activity_stream", make_activity_stream)
    DATASETS.register("thermostat", make_thermostat_split)

    PARTITIONERS.register("iid", iid_partition)
    PARTITIONERS.register("dirichlet", dirichlet_partition)
    PARTITIONERS.register("shard", shard_partition)

    SCHEDULES.register("inverse_sqrt", InverseSqrtRate)
    SCHEDULES.register("constant", ConstantRate)
    SCHEDULES.register("inverse_time", InverseTimeRate)
    SCHEDULES.register("step_decay", StepDecayRate)

    PRIVACY_MECHANISMS.register("laplace", LaplaceMechanism)
    PRIVACY_MECHANISMS.register("discrete_laplace", DiscreteLaplaceMechanism)
    PRIVACY_MECHANISMS.register("gaussian", GaussianMechanism)
    PRIVACY_MECHANISMS.register("exponential", ExponentialMechanism)

    # Pure index math, defined inline so the registry stays import-light
    # (repro.gateway imports this module, not the other way round).
    def _round_robin(num_devices: int, num_gateways: int):
        return [m % num_gateways for m in range(num_devices)]

    def _block(num_devices: int, num_gateways: int):
        return [m * num_gateways // num_devices for m in range(num_devices)]

    def _hash(num_devices: int, num_gateways: int):
        # Knuth multiplicative hashing: deterministic, scrambles locality.
        return [
            ((m * 2654435761) & 0xFFFFFFFF) % num_gateways
            for m in range(num_devices)
        ]

    GATEWAY_ASSIGNMENTS.register("round_robin", _round_robin)
    GATEWAY_ASSIGNMENTS.register("block", _block)
    GATEWAY_ASSIGNMENTS.register("hash", _hash)

    # Shard routing functions must be stable across processes (a front
    # end, its workers, and an offline reference all recompute them), so
    # they are pure integer math like the gateway policies above.
    def _shard_stable_hash():
        from repro.core.sharding import stable_device_hash

        def route(device_id: int, num_shards: int) -> int:
            return stable_device_hash(device_id) % num_shards

        return route

    def _shard_modulo():
        def route(device_id: int, num_shards: int) -> int:
            return int(device_id) % num_shards

        return route

    SHARD_ROUTING.register("stable_hash", _shard_stable_hash)
    SHARD_ROUTING.register("modulo", _shard_modulo)


_register_builtins()

__all__ = [
    "DATASETS",
    "GATEWAY_ASSIGNMENTS",
    "MODELS",
    "PARTITIONERS",
    "PRIVACY_MECHANISMS",
    "Registry",
    "RegistryError",
    "SCHEDULES",
    "SHARD_ROUTING",
]
