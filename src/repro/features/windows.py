"""Sliding-window segmentation of sensor streams.

The activity-recognition pipeline (Section V-B) computes acceleration
magnitudes continuously over 3.2 s sliding windows before the FFT; this
module provides the generic windowing primitive.
"""

from __future__ import annotations

import numpy as np

from repro.utils.exceptions import ConfigurationError


def sliding_windows(signal: np.ndarray, window_size: int, hop: int) -> np.ndarray:
    """Segment a 1-D ``signal`` into overlapping windows.

    Parameters
    ----------
    signal:
        1-D array of samples.
    window_size:
        Window length in samples (e.g. 64 = 3.2 s at 20 Hz).
    hop:
        Stride between consecutive window starts.

    Returns
    -------
    ``(num_windows, window_size)`` array; trailing samples that do not fill
    a window are discarded.

    >>> import numpy as np
    >>> sliding_windows(np.arange(5.0), window_size=3, hop=2)
    array([[0., 1., 2.],
           [2., 3., 4.]])
    """
    signal = np.asarray(signal, dtype=np.float64)
    if signal.ndim != 1:
        raise ConfigurationError(f"signal must be 1-D, got shape {signal.shape}")
    if window_size <= 0:
        raise ConfigurationError(f"window_size must be positive, got {window_size}")
    if hop <= 0:
        raise ConfigurationError(f"hop must be positive, got {hop}")
    if signal.shape[0] < window_size:
        return np.empty((0, window_size), dtype=np.float64)
    num_windows = 1 + (signal.shape[0] - window_size) // hop
    starts = np.arange(num_windows) * hop
    return np.stack([signal[s : s + window_size] for s in starts])


def window_majority_labels(labels: np.ndarray, window_size: int, hop: int) -> np.ndarray:
    """Label each window with the majority label of its samples.

    Mirrors :func:`sliding_windows` segmentation for a per-sample integer
    label stream, so features and labels stay aligned.
    """
    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 1:
        raise ConfigurationError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.shape[0] < window_size:
        return np.empty(0, dtype=np.int64)
    num_windows = 1 + (labels.shape[0] - window_size) // hop
    out = np.empty(num_windows, dtype=np.int64)
    for w in range(num_windows):
        chunk = labels[w * hop : w * hop + window_size]
        out[w] = np.bincount(chunk).argmax()
    return out
