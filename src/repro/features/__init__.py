"""Feature-extraction pipeline: sliding windows, FFT magnitudes, PCA.

Implements the Section V-B phone pipeline (|a| → 3.2 s windows → 64-bin
FFT) and the Section V-C image preprocessing (PCA to 50/100 dims).
"""

from repro.features.fft import (
    acceleration_magnitude,
    fft_magnitude,
    fft_magnitude_features,
)
from repro.features.pca import PCA
from repro.features.windows import sliding_windows, window_majority_labels

__all__ = [
    "PCA",
    "acceleration_magnitude",
    "fft_magnitude",
    "fft_magnitude_features",
    "sliding_windows",
    "window_majority_labels",
]
