"""Principal component analysis, implemented from scratch on numpy SVD.

Section V-C preprocesses MNIST images with PCA to 50 dimensions and the
CIFAR CNN features to 100 dimensions before L1 normalization.  This PCA is
the fit/transform implementation used by that pipeline.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.utils.exceptions import ConfigurationError
from repro.utils.validation import check_matrix, check_positive_int


class PCA:
    """Principal component analysis via singular value decomposition.

    Parameters
    ----------
    num_components:
        Output dimensionality (must not exceed min(n_samples, n_features)).

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> data = rng.normal(size=(100, 5))
    >>> pca = PCA(num_components=2).fit(data)
    >>> pca.transform(data).shape
    (100, 2)
    """

    def __init__(self, num_components: int):
        self._num_components = check_positive_int(num_components, "num_components")
        self._mean: Optional[np.ndarray] = None
        self._components: Optional[np.ndarray] = None
        self._explained_variance: Optional[np.ndarray] = None

    @property
    def num_components(self) -> int:
        return self._num_components

    @property
    def is_fitted(self) -> bool:
        return self._components is not None

    @property
    def mean(self) -> np.ndarray:
        """Per-feature training mean."""
        self._require_fitted()
        return self._mean.copy()

    @property
    def components(self) -> np.ndarray:
        """``(num_components, n_features)`` matrix of principal axes."""
        self._require_fitted()
        return self._components.copy()

    @property
    def explained_variance(self) -> np.ndarray:
        """Variance captured by each retained component."""
        self._require_fitted()
        return self._explained_variance.copy()

    @property
    def explained_variance_ratio(self) -> np.ndarray:
        """Fraction of total variance captured by each component."""
        self._require_fitted()
        total = self._total_variance
        if total == 0.0:
            return np.zeros_like(self._explained_variance)
        return self._explained_variance / total

    def _require_fitted(self):
        if not self.is_fitted:
            raise ConfigurationError("PCA must be fitted before use")

    def fit(self, data: np.ndarray) -> "PCA":
        """Learn the principal axes of ``data`` (rows are samples)."""
        data = check_matrix(data, "data")
        n, d = data.shape
        if self._num_components > min(n, d):
            raise ConfigurationError(
                f"num_components={self._num_components} exceeds "
                f"min(n_samples, n_features)={min(n, d)}"
            )
        self._mean = data.mean(axis=0)
        centered = data - self._mean
        # Economy SVD: centered = U S V'.
        _, singular_values, vt = np.linalg.svd(centered, full_matrices=False)
        self._components = vt[: self._num_components]
        variances = singular_values**2 / max(n - 1, 1)
        self._explained_variance = variances[: self._num_components]
        self._total_variance = float(variances.sum())
        return self

    def transform(self, data: np.ndarray) -> np.ndarray:
        """Project ``data`` onto the retained principal axes."""
        self._require_fitted()
        data = check_matrix(data, "data", shape=(None, self._mean.shape[0]))
        return (data - self._mean) @ self._components.T

    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        """Fit on ``data`` and return its projection."""
        return self.fit(data).transform(data)

    def inverse_transform(self, projected: np.ndarray) -> np.ndarray:
        """Map projected points back into the original feature space."""
        self._require_fitted()
        projected = check_matrix(projected, "projected", shape=(None, self._num_components))
        return projected @ self._components + self._mean
