"""FFT magnitude features (Section V-B).

The phone prototype computes the 64-bin FFT of acceleration magnitudes over
3.2 s sliding windows.  :func:`fft_magnitude_features` reproduces that
pipeline: window → (optionally de-mean) → real FFT → magnitude of the first
``num_bins`` bins.
"""

from __future__ import annotations

import numpy as np

from repro.features.windows import sliding_windows
from repro.utils.exceptions import ConfigurationError


def acceleration_magnitude(samples: np.ndarray) -> np.ndarray:
    """``|a| = sqrt(ax² + ay² + az²)`` for an ``(n, 3)`` triaxial stream.

    >>> import numpy as np
    >>> acceleration_magnitude(np.array([[3.0, 4.0, 0.0]]))
    array([5.])
    """
    samples = np.asarray(samples, dtype=np.float64)
    if samples.ndim != 2 or samples.shape[1] != 3:
        raise ConfigurationError(f"samples must have shape (n, 3), got {samples.shape}")
    return np.sqrt(np.sum(samples**2, axis=1))


def fft_magnitude(window: np.ndarray, num_bins: int, remove_mean: bool = True) -> np.ndarray:
    """Magnitudes of the first ``num_bins`` real-FFT bins of one window.

    De-meaning removes the gravity/DC component so the feature reflects
    motion dynamics rather than orientation.
    """
    window = np.asarray(window, dtype=np.float64)
    if window.ndim != 1:
        raise ConfigurationError(f"window must be 1-D, got shape {window.shape}")
    if num_bins <= 0:
        raise ConfigurationError(f"num_bins must be positive, got {num_bins}")
    if remove_mean:
        window = window - window.mean()
    spectrum = np.abs(np.fft.rfft(window, n=max(window.shape[0], 2 * num_bins)))
    return spectrum[:num_bins]


def fft_magnitude_features(
    magnitudes: np.ndarray,
    window_size: int = 64,
    hop: int = 64,
    num_bins: int = 64,
    remove_mean: bool = True,
) -> np.ndarray:
    """Full Section V-B pipeline: windows → FFT magnitudes per window.

    With the defaults (64-sample windows at 20 Hz ≈ 3.2 s, 64 bins) this is
    the exact feature extractor of the phone prototype.

    Returns an ``(num_windows, num_bins)`` feature matrix.
    """
    windows = sliding_windows(magnitudes, window_size=window_size, hop=hop)
    if windows.shape[0] == 0:
        return np.empty((0, num_bins), dtype=np.float64)
    return np.stack([fft_magnitude(w, num_bins, remove_mean) for w in windows])
