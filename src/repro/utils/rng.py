"""Deterministic hierarchical random-number generation.

Every stochastic component in the reproduction (noise mechanisms, delay
models, data generators, sample-to-device assignment) draws from a
``numpy.random.Generator`` obtained through an :class:`RngFactory`.  The
factory derives *named* child seeds from a root seed, so that

* each trial of an experiment is exactly reproducible from its root seed, and
* adding a new consumer of randomness does not perturb the streams consumed
  by existing components (streams are keyed by name, not by call order).
"""

from __future__ import annotations

import hashlib
from typing import Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]

_MASK_64 = (1 << 64) - 1


def derive_seed(root_seed: int, *names: object) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and a path of names.

    The derivation hashes the root seed together with the string forms of the
    path components, so distinct paths yield statistically independent
    streams while identical paths always yield the same seed.

    >>> derive_seed(0, "device", 3) == derive_seed(0, "device", 3)
    True
    >>> derive_seed(0, "device", 3) != derive_seed(0, "device", 4)
    True
    """
    hasher = hashlib.blake2b(digest_size=8)
    hasher.update(str(int(root_seed)).encode("utf-8"))
    for name in names:
        hasher.update(b"/")
        hasher.update(str(name).encode("utf-8"))
    return int.from_bytes(hasher.digest(), "little") & _MASK_64


def as_generator(seed: SeedLike) -> np.random.Generator:
    """Coerce ``seed`` into a ``numpy.random.Generator``.

    ``None`` produces a non-deterministic generator; an ``int`` seeds a new
    PCG64 generator; an existing generator is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


class RngFactory:
    """Factory for named, reproducible random streams.

    Parameters
    ----------
    root_seed:
        Seed from which all child streams are derived.

    Examples
    --------
    >>> factory = RngFactory(42)
    >>> rng_a = factory.generator("noise", 0)
    >>> rng_b = factory.generator("noise", 0)
    >>> float(rng_a.random()) == float(rng_b.random())
    True
    """

    def __init__(self, root_seed: int = 0):
        self._root_seed = int(root_seed)

    @property
    def root_seed(self) -> int:
        """The root seed this factory derives all streams from."""
        return self._root_seed

    def seed(self, *names: object) -> int:
        """Return the derived 64-bit seed for the stream named by ``names``."""
        return derive_seed(self._root_seed, *names)

    def generator(self, *names: object) -> np.random.Generator:
        """Return a fresh generator for the stream named by ``names``."""
        return np.random.default_rng(self.seed(*names))

    def child(self, *names: object) -> "RngFactory":
        """Return a sub-factory rooted at the derived seed for ``names``.

        Useful to hand a component its own namespace:
        ``factory.child("device", 7)`` gives device 7 an independent factory
        whose streams cannot collide with any other component's.
        """
        return RngFactory(self.seed(*names))

    def __repr__(self) -> str:
        return f"RngFactory(root_seed={self._root_seed})"


def spawn_generators(
    factory: RngFactory, prefix: str, count: int
) -> list[np.random.Generator]:
    """Return ``count`` independent generators named ``prefix/0..count-1``."""
    return [factory.generator(prefix, i) for i in range(count)]
