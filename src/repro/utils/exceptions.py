"""Exception hierarchy for the Crowd-ML reproduction.

All library-specific errors derive from :class:`ReproError` so callers can
catch the whole family with a single ``except`` clause while still being able
to distinguish configuration mistakes from runtime protocol failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """An invalid parameter or inconsistent combination of parameters."""


class PrivacyBudgetExceededError(ReproError):
    """A release was attempted after the privacy budget was exhausted.

    Raised by :class:`repro.privacy.accountant.PrivacyAccountant` when the
    cumulative per-sample epsilon would exceed the configured cap.
    """

    def __init__(self, spent: float, cap: float, requested: float = 0.0):
        self.spent = float(spent)
        self.cap = float(cap)
        self.requested = float(requested)
        super().__init__(
            f"privacy budget exceeded: spent={spent:.6g}, "
            f"requested={requested:.6g}, cap={cap:.6g}"
        )


class ProtocolError(ReproError):
    """A malformed or out-of-order message in the device-server protocol."""


class AuthenticationError(ProtocolError):
    """A device failed server-side authentication (Algorithm 2)."""
