"""Shared utilities: seeded RNG management, validation, numerics, errors."""

from repro.utils.exceptions import (
    AuthenticationError,
    ConfigurationError,
    PrivacyBudgetExceededError,
    ProtocolError,
    ReproError,
)
from repro.utils.numerics import (
    l1_normalize,
    log_sum_exp,
    one_hot,
    running_mean,
    softmax,
)
from repro.utils.rng import RngFactory, as_generator, derive_seed, spawn_generators
from repro.utils.validation import (
    check_fraction,
    check_in_choices,
    check_labels,
    check_matrix,
    check_non_negative,
    check_positive,
    check_positive_int,
    check_vector,
)

__all__ = [
    "AuthenticationError",
    "ConfigurationError",
    "PrivacyBudgetExceededError",
    "ProtocolError",
    "ReproError",
    "RngFactory",
    "as_generator",
    "check_fraction",
    "check_in_choices",
    "check_labels",
    "check_matrix",
    "check_non_negative",
    "check_positive",
    "check_positive_int",
    "check_vector",
    "derive_seed",
    "l1_normalize",
    "log_sum_exp",
    "one_hot",
    "running_mean",
    "softmax",
    "spawn_generators",
]
