"""Argument validation helpers.

These raise :class:`~repro.utils.exceptions.ConfigurationError` with a
message naming the offending parameter, so misconfiguration surfaces at
construction time rather than as a cryptic numpy broadcast error mid-run.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from repro.utils.exceptions import ConfigurationError


def check_positive(value: float, name: str) -> float:
    """Validate that ``value`` is a finite number strictly greater than zero."""
    value = float(value)
    if not np.isfinite(value) or value <= 0:
        raise ConfigurationError(f"{name} must be a positive finite number, got {value!r}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Validate that ``value`` is a finite number greater than or equal to zero."""
    value = float(value)
    if not np.isfinite(value) or value < 0:
        raise ConfigurationError(f"{name} must be a non-negative finite number, got {value!r}")
    return value


def check_positive_int(value: int, name: str) -> int:
    """Validate that ``value`` is an integer strictly greater than zero."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be an integer, got {type(value).__name__}")
    if value <= 0:
        raise ConfigurationError(f"{name} must be a positive integer, got {value}")
    return int(value)


def check_fraction(value: float, name: str, *, inclusive: bool = True) -> float:
    """Validate that ``value`` lies in ``[0, 1]`` (or ``(0, 1)`` if not inclusive)."""
    value = float(value)
    if inclusive:
        if not (0.0 <= value <= 1.0):
            raise ConfigurationError(f"{name} must be in [0, 1], got {value!r}")
    else:
        if not (0.0 < value < 1.0):
            raise ConfigurationError(f"{name} must be in (0, 1), got {value!r}")
    return value


def check_in_choices(value: object, name: str, choices: Iterable[object]) -> object:
    """Validate that ``value`` is one of ``choices``."""
    choices = tuple(choices)
    if value not in choices:
        raise ConfigurationError(f"{name} must be one of {choices}, got {value!r}")
    return value


def check_vector(
    array: np.ndarray,
    name: str,
    *,
    size: Optional[int] = None,
    dtype: type = np.float64,
) -> np.ndarray:
    """Coerce ``array`` to a 1-D float array, optionally of a fixed size."""
    array = np.asarray(array, dtype=dtype)
    if array.ndim != 1:
        raise ConfigurationError(f"{name} must be 1-dimensional, got shape {array.shape}")
    if size is not None and array.shape[0] != size:
        raise ConfigurationError(f"{name} must have length {size}, got {array.shape[0]}")
    if not np.all(np.isfinite(array)):
        raise ConfigurationError(f"{name} must contain only finite values")
    return array


def check_matrix(
    array: np.ndarray,
    name: str,
    *,
    shape: Optional[Sequence[Optional[int]]] = None,
    dtype: type = np.float64,
) -> np.ndarray:
    """Coerce ``array`` to a 2-D float array, optionally checking each dim.

    ``shape`` entries of ``None`` are wildcards, e.g. ``shape=(None, 50)``
    requires 50 columns but any number of rows.
    """
    array = np.asarray(array, dtype=dtype)
    if array.ndim != 2:
        raise ConfigurationError(f"{name} must be 2-dimensional, got shape {array.shape}")
    if shape is not None:
        for axis, want in enumerate(shape):
            if want is not None and array.shape[axis] != want:
                raise ConfigurationError(
                    f"{name} must have shape {tuple(shape)} (None=any), got {array.shape}"
                )
    if not np.all(np.isfinite(array)):
        raise ConfigurationError(f"{name} must contain only finite values")
    return array


def check_labels(labels: np.ndarray, name: str, num_classes: int) -> np.ndarray:
    """Coerce ``labels`` to integer class indices in ``[0, num_classes)``."""
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ConfigurationError(f"{name} must be 1-dimensional, got shape {labels.shape}")
    if not np.issubdtype(labels.dtype, np.integer):
        rounded = np.rint(labels)
        if not np.allclose(labels, rounded):
            raise ConfigurationError(f"{name} must contain integer class labels")
        labels = rounded.astype(np.int64)
    else:
        labels = labels.astype(np.int64)
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ConfigurationError(
            f"{name} must lie in [0, {num_classes}), got range "
            f"[{labels.min()}, {labels.max()}]"
        )
    return labels
