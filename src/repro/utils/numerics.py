"""Numerically stable primitives shared across models and mechanisms."""

from __future__ import annotations

import numpy as np


def log_sum_exp(scores: np.ndarray, axis: int = -1) -> np.ndarray:
    """Compute ``log(sum(exp(scores)))`` along ``axis`` without overflow.

    Subtracts the per-slice maximum before exponentiating, the standard
    stabilization for softmax-family computations.
    """
    scores = np.asarray(scores, dtype=np.float64)
    peak = np.max(scores, axis=axis, keepdims=True)
    shifted = scores - peak
    out = np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True)) + peak
    return np.squeeze(out, axis=axis)


def softmax(scores: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``.

    >>> import numpy as np
    >>> p = softmax(np.array([0.0, 0.0]))
    >>> np.allclose(p, [0.5, 0.5])
    True
    """
    scores = np.asarray(scores, dtype=np.float64)
    # ndarray methods dispatch straight to the reduction kernels that
    # np.max/np.sum wrap — identical bits, less per-call overhead (this
    # runs once per device check-in).
    shifted = scores - scores.max(axis=axis, keepdims=True)
    exps = np.exp(shifted)
    return exps / exps.sum(axis=axis, keepdims=True)


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Return the ``(n, num_classes)`` one-hot encoding of integer ``labels``."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    encoded = np.zeros((labels.shape[0], num_classes), dtype=np.float64)
    encoded[np.arange(labels.shape[0]), labels] = 1.0
    return encoded


def l1_normalize(features: np.ndarray, axis: int = -1, eps: float = 1e-12) -> np.ndarray:
    """Scale rows of ``features`` to unit L1 norm.

    Rows with (near-)zero norm are left at zero rather than amplified, so the
    guarantee ``‖x‖₁ ≤ 1`` assumed by the sensitivity analysis always holds.
    """
    features = np.asarray(features, dtype=np.float64)
    norms = np.sum(np.abs(features), axis=axis, keepdims=True)
    safe = np.where(norms > eps, norms, 1.0)
    return features / safe


def running_mean(values: np.ndarray) -> np.ndarray:
    """Return the running (prefix) mean of a 1-D sequence.

    Used for the time-averaged error curves of Fig. 3:
    ``Err(t) = (1/t) * sum_{i<=t} err_i``.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1:
        raise ValueError(f"values must be 1-D, got shape {values.shape}")
    if values.size == 0:
        return values.copy()
    return np.cumsum(values) / np.arange(1, values.size + 1)
