"""Gaussian mechanism — the (ε, δ) variant of footnote 1.

The paper notes that (ε, δ)-differential privacy can be achieved by adding
Gaussian instead of Laplace noise.  We implement the classical analytic
calibration for L2 sensitivity ``S₂``:

    σ = S₂ · sqrt(2 ln(1.25/δ)) / ε,     0 < ε ≤ 1, 0 < δ < 1

(Dwork & Roth, Theorem A.1).  For the averaged logistic gradient the L2
sensitivity is bounded by the L1 sensitivity, so ``S₂ ≤ 4/b`` is a valid
(if conservative) calibration.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.privacy.mechanism import Mechanism
from repro.utils.exceptions import ConfigurationError
from repro.utils.validation import check_fraction, check_positive


def gaussian_sigma(sensitivity_l2: float, epsilon: float, delta: float) -> float:
    """Noise standard deviation for the analytic Gaussian mechanism.

    Returns 0 for ε = ∞.

    >>> round(gaussian_sigma(1.0, 1.0, 1e-5), 4)
    4.8448
    """
    if math.isinf(epsilon):
        return 0.0
    sensitivity_l2 = check_positive(sensitivity_l2, "sensitivity_l2")
    epsilon = check_positive(epsilon, "epsilon")
    delta = check_fraction(delta, "delta", inclusive=False)
    if epsilon > 1.0:
        raise ConfigurationError(
            f"the classical Gaussian calibration requires epsilon <= 1, got {epsilon}"
        )
    return sensitivity_l2 * math.sqrt(2.0 * math.log(1.25 / delta)) / epsilon


class GaussianMechanism(Mechanism):
    """(ε, δ)-DP release of real vectors via Gaussian noise.

    Examples
    --------
    >>> import numpy as np
    >>> mech = GaussianMechanism(epsilon=0.5, delta=1e-5, sensitivity_l2=1.0,
    ...                          rng=np.random.default_rng(0))
    >>> mech.release(np.zeros(4)).shape
    (4,)
    """

    def __init__(
        self,
        epsilon: float,
        delta: float,
        sensitivity_l2: float,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__(epsilon, rng)
        self._delta = check_fraction(delta, "delta", inclusive=False)
        self._sensitivity_l2 = check_positive(sensitivity_l2, "sensitivity_l2")
        self._sigma = gaussian_sigma(self._sensitivity_l2, self._epsilon, self._delta)

    @property
    def delta(self) -> float:
        return self._delta

    @property
    def sensitivity_l2(self) -> float:
        """L2 global sensitivity the noise is calibrated to."""
        return self._sensitivity_l2

    @property
    def sigma(self) -> float:
        """Per-coordinate noise standard deviation (0 when ε = ∞)."""
        return self._sigma

    def noise_variance(self) -> float:
        """Per-coordinate noise variance σ²."""
        return self._sigma**2

    def expected_noise_power(self, dimension: int) -> float:
        """``E[‖z‖²] = D·σ²`` for a ``dimension``-long release."""
        return float(dimension) * self.noise_variance()

    def release(self, value: np.ndarray) -> np.ndarray:
        """Return ``value + z`` with ``z ~ N(0, σ²I)``."""
        value = np.asarray(value, dtype=np.float64)
        if self.is_identity:
            return value.copy()
        return value + self._rng.normal(0.0, self._sigma, size=value.shape)
