"""Discrete Laplace mechanism for integer counts (Eqs. (11) and (12)).

The device reports its misclassification count ``n_e`` and per-class label
counts ``n_y^k`` perturbed with *discrete* Laplace noise

    P(z) ∝ exp(-ε |z| / 2),  z ∈ {0, ±1, ±2, ...}

which (Appendix B) is the exponential mechanism with score
``d = -|n̂ - n|``; the score has sensitivity 1, giving ε-DP by
McSherry-Talwar.  The noise has zero mean and variance
``2 e^{-ε/2} / (1 - e^{-ε/2})²`` (Inusah & Kozubowski, 2006), which the
server-side monitor uses for its confidence reasoning (Eq. 14 remark).

Sampling uses the difference-of-geometrics representation: if
``G₁, G₂ ~ Geometric(1 - p)`` (number of failures) with ``p = e^{-ε/2}``,
then ``G₁ - G₂`` has the discrete Laplace distribution above.
"""

from __future__ import annotations

import math
from typing import Optional, Union

import numpy as np

from repro.privacy.mechanism import Mechanism
from repro.utils.validation import check_positive

IntOrArray = Union[int, np.ndarray]


def discrete_laplace_variance(epsilon: float, score_scale: float = 2.0) -> float:
    """Variance of discrete Laplace noise with ``P(z) ∝ exp(-ε|z|/score_scale)``.

    With ``p = exp(-ε/score_scale)`` the variance is ``2p/(1-p)²``.
    Returns 0 for ε = ∞.
    """
    if math.isinf(epsilon):
        return 0.0
    p = math.exp(-check_positive(epsilon, "epsilon") / score_scale)
    return 2.0 * p / (1.0 - p) ** 2


def sample_discrete_laplace(
    epsilon: float,
    rng: np.random.Generator,
    size=None,
    score_scale: float = 2.0,
) -> IntOrArray:
    """Draw discrete Laplace noise ``P(z) ∝ exp(-ε|z|/score_scale)``.

    Uses the identity ``z = G₁ - G₂`` with geometric ``Gᵢ`` counting
    failures before the first success with success probability ``1 - p``.
    """
    if math.isinf(epsilon):
        return 0 if size is None else np.zeros(size, dtype=np.int64)
    p = math.exp(-check_positive(epsilon, "epsilon") / score_scale)
    # numpy's geometric counts trials (support 1, 2, ...); subtract 1 for
    # the failures-count convention (support 0, 1, ...).
    shape = size if size is not None else 1
    g1 = rng.geometric(1.0 - p, size=shape) - 1
    g2 = rng.geometric(1.0 - p, size=shape) - 1
    noise = (g1 - g2).astype(np.int64)
    if size is None:
        return int(noise[0])
    return noise


class DiscreteLaplaceMechanism(Mechanism):
    """ε-DP release of integer counts via discrete Laplace noise.

    The released value may be negative with small probability; the paper
    keeps such values (they have limited effect on the server's running
    estimates, Appendix B Remark 2), and so do we by default.  Pass
    ``clip_negative=True`` to clamp at zero if an application needs
    non-negative counts (this only improves utility and cannot hurt DP,
    being post-processing).

    Examples
    --------
    >>> import numpy as np
    >>> mech = DiscreteLaplaceMechanism(epsilon=1.0,
    ...                                 rng=np.random.default_rng(0))
    >>> isinstance(mech.release(5), int)
    True
    """

    def __init__(
        self,
        epsilon: float,
        rng: Optional[np.random.Generator] = None,
        *,
        clip_negative: bool = False,
        score_scale: float = 2.0,
    ):
        super().__init__(epsilon, rng)
        self._clip_negative = bool(clip_negative)
        self._score_scale = check_positive(score_scale, "score_scale")

    @property
    def score_scale(self) -> float:
        """Denominator in the exponent, 2 for the paper's Eqs. (11)-(12)."""
        return self._score_scale

    def noise_variance(self) -> float:
        """Variance of the added integer noise."""
        return discrete_laplace_variance(self._epsilon, self._score_scale)

    def release(self, value: IntOrArray) -> IntOrArray:
        """Return ``value + z`` with discrete Laplace ``z`` (elementwise)."""
        if self._is_identity:
            # ε = ∞ adds no noise and draws nothing from the RNG (matching
            # sample_discrete_laplace's short-circuit); only the clipping
            # semantics are preserved.  The int64-ndarray test comes first:
            # that is every label-count release of a non-private run.
            if isinstance(value, np.ndarray) and value.ndim > 0:
                counts = value if value.dtype == np.int64 else value.astype(np.int64)
            elif np.isscalar(value) or (
                isinstance(value, np.ndarray) and value.ndim == 0
            ):
                noisy = int(value)
                return max(noisy, 0) if self._clip_negative else noisy
            else:
                counts = np.asarray(value, dtype=np.int64)
            if self._clip_negative:
                return np.maximum(counts, 0)
            # Match the noisy path's contract: the release never aliases
            # the caller's buffer.
            return counts.copy() if counts is value else counts
        if np.isscalar(value) or (isinstance(value, np.ndarray) and value.ndim == 0):
            true = int(value)
            noisy = true + int(
                sample_discrete_laplace(self._epsilon, self._rng, None, self._score_scale)
            )
            if self._clip_negative:
                noisy = max(noisy, 0)
            return noisy
        counts = np.asarray(value, dtype=np.int64)
        noise = sample_discrete_laplace(
            self._epsilon, self._rng, counts.shape, self._score_scale
        )
        noisy = counts + noise
        if self._clip_negative:
            noisy = np.maximum(noisy, 0)
        return noisy
