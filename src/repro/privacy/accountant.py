"""Privacy accounting for device releases.

Crowd-ML's guarantee is *per-sample*: because every sample participates in
exactly one minibatch, the sensitivity of the whole sequence of releases
equals the sensitivity of a single release (Appendix A/B: "the sensitivity
of multiple minibatches ... is the same as the sensitivity of a single
one").  The accountant therefore tracks two views:

* ``per_sample_epsilon`` — the guarantee the paper states, i.e. the maximum
  over samples of the ε consumed by the (single) minibatch containing it;
* ``total_epsilon`` — the naive sequential-composition sum over releases,
  reported for comparison with composition-based analyses.

It also enforces an optional cap on the per-sample ε, raising
:class:`~repro.utils.exceptions.PrivacyBudgetExceededError` before a release
that would exceed it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

from repro.privacy.mechanism import ReleaseRecord
from repro.utils.exceptions import PrivacyBudgetExceededError


@dataclass(frozen=True)
class PrivacySpend:
    """Aggregate ε/δ consumed so far, under both accounting views."""

    per_sample_epsilon: float
    total_epsilon: float
    total_delta: float
    num_releases: int


class PrivacyAccountant:
    """Tracks sanitized releases and enforces a per-sample ε cap.

    Parameters
    ----------
    per_sample_cap:
        Maximum allowed per-sample ε; ``None`` (default) disables the cap.

    Examples
    --------
    >>> from repro.privacy.mechanism import ReleaseRecord
    >>> acct = PrivacyAccountant(per_sample_cap=1.0)
    >>> acct.charge_checkin([ReleaseRecord(epsilon=0.5, mechanism="laplace")])
    >>> acct.spend().per_sample_epsilon
    0.5
    """

    def __init__(self, per_sample_cap: Optional[float] = None):
        if per_sample_cap is not None and per_sample_cap <= 0:
            raise ValueError(f"per_sample_cap must be positive, got {per_sample_cap!r}")
        self._per_sample_cap = per_sample_cap
        self._records: List[ReleaseRecord] = []
        self._per_sample_epsilon = 0.0
        self._total_epsilon = 0.0
        self._total_delta = 0.0

    @property
    def per_sample_cap(self) -> Optional[float]:
        """The enforced per-sample ε cap, or ``None``."""
        return self._per_sample_cap

    def charge_checkin(self, records: List[ReleaseRecord]) -> None:
        """Account for one check-in consisting of several mechanism releases.

        All releases in one check-in touch the *same* minibatch, so their
        epsilons add for the samples in that minibatch; across check-ins the
        per-sample guarantee is the max, not the sum.
        """
        finite = [r.epsilon for r in records if not math.isinf(r.epsilon)]
        checkin_epsilon = sum(finite) if finite else 0.0
        any_noisy = any(not math.isinf(r.epsilon) for r in records)
        if not any_noisy:
            checkin_epsilon = 0.0 if not records else checkin_epsilon
        candidate = max(self._per_sample_epsilon, checkin_epsilon)
        if self._per_sample_cap is not None and candidate > self._per_sample_cap + 1e-12:
            raise PrivacyBudgetExceededError(
                spent=self._per_sample_epsilon,
                cap=self._per_sample_cap,
                requested=checkin_epsilon,
            )
        self._records.extend(records)
        self._per_sample_epsilon = candidate
        self._total_epsilon += checkin_epsilon
        self._total_delta += sum(r.delta for r in records)

    def spend(self) -> PrivacySpend:
        """Return the cumulative spend under both accounting views."""
        return PrivacySpend(
            per_sample_epsilon=self._per_sample_epsilon,
            total_epsilon=self._total_epsilon,
            total_delta=self._total_delta,
            num_releases=len(self._records),
        )

    @property
    def records(self) -> List[ReleaseRecord]:
        """All release records charged so far (copy)."""
        return list(self._records)

    def reset(self) -> None:
        """Forget all history (e.g. between independent trials)."""
        self._records.clear()
        self._per_sample_epsilon = 0.0
        self._total_epsilon = 0.0
        self._total_delta = 0.0
