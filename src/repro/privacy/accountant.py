"""Privacy accounting for device releases.

Crowd-ML's guarantee is *per-sample*: because every sample participates in
exactly one minibatch, the sensitivity of the whole sequence of releases
equals the sensitivity of a single release (Appendix A/B: "the sensitivity
of multiple minibatches ... is the same as the sensitivity of a single
one").  The accountant therefore tracks two views:

* ``per_sample_epsilon`` — the guarantee the paper states, i.e. the maximum
  over samples of the ε consumed by the (single) minibatch containing it;
* ``total_epsilon`` — the naive sequential-composition sum over releases,
  reported for comparison with composition-based analyses.

It also enforces an optional cap on the per-sample ε, raising
:class:`~repro.utils.exceptions.PrivacyBudgetExceededError` before a release
that would exceed it.

The ledger is run-length encoded: consecutive identical records (a
check-in's C label-count releases, or repeated check-ins with the same
calibration) collapse into a single ``(record, count)`` run, so charging a
check-in grows the ledger by O(distinct records) — typically 3 — rather
than O(C).  Callers can hand the accountant pre-aggregated
:class:`~repro.privacy.mechanism.AggregatedRelease` groups for an O(1)
charge regardless of the number of classes; the expanded view is still
available through :attr:`PrivacyAccountant.records`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.privacy.mechanism import AggregatedRelease, ReleaseRecord
from repro.utils.exceptions import PrivacyBudgetExceededError

#: What :meth:`PrivacyAccountant.charge_checkin` accepts: plain records,
#: run-length groups, or a mix of both.
ReleaseLike = Union[ReleaseRecord, AggregatedRelease]


def aggregate_releases(
    records: Sequence[ReleaseLike],
) -> Tuple[AggregatedRelease, ...]:
    """Run-length encode a release sequence by (consecutive) equality.

    ``(grad, err, label, label, ..., label)`` becomes three groups
    regardless of the number of classes.  Already-aggregated entries pass
    through (merging with equal neighbours).

    >>> rec = ReleaseRecord(epsilon=0.1)
    >>> [g.count for g in aggregate_releases([rec, rec, rec])]
    [3]
    """
    groups: List[List] = []
    for entry in records:
        if isinstance(entry, AggregatedRelease):
            record, count = entry.record, entry.count
        else:
            record, count = entry, 1
        if groups and (groups[-1][0] is record or groups[-1][0] == record):
            groups[-1][1] += count
        else:
            groups.append([record, count])
    return tuple(AggregatedRelease(record, count) for record, count in groups)


@dataclass(frozen=True)
class PrivacySpend:
    """Aggregate ε/δ consumed so far, under both accounting views."""

    per_sample_epsilon: float
    total_epsilon: float
    total_delta: float
    num_releases: int


class PrivacyAccountant:
    """Tracks sanitized releases and enforces a per-sample ε cap.

    Parameters
    ----------
    per_sample_cap:
        Maximum allowed per-sample ε; ``None`` (default) disables the cap.

    Examples
    --------
    >>> from repro.privacy.mechanism import ReleaseRecord
    >>> acct = PrivacyAccountant(per_sample_cap=1.0)
    >>> acct.charge_checkin([ReleaseRecord(epsilon=0.5, mechanism="laplace")])
    >>> acct.spend().per_sample_epsilon
    0.5
    """

    def __init__(self, per_sample_cap: Optional[float] = None):
        if per_sample_cap is not None and per_sample_cap <= 0:
            raise ValueError(f"per_sample_cap must be positive, got {per_sample_cap!r}")
        self._per_sample_cap = per_sample_cap
        # Run-length ledger: mutable [record, count] runs in charge order.
        self._runs: List[List] = []
        self._num_records = 0
        self._per_sample_epsilon = 0.0
        self._total_epsilon = 0.0
        self._total_delta = 0.0
        # Devices charge the *same* release-group tuple every check-in
        # (the sanitizer memoizes it per realized batch size), so the
        # summation over its entries is computed once per distinct tuple
        # object.  The strong reference keeps the id stable.
        self._last_records = None
        self._last_sums = (0.0, 0.0, 0)

    @property
    def per_sample_cap(self) -> Optional[float]:
        """The enforced per-sample ε cap, or ``None``."""
        return self._per_sample_cap

    def charge_checkin(self, records: Iterable[ReleaseLike]) -> None:
        """Account for one check-in consisting of several mechanism releases.

        All releases in one check-in touch the *same* minibatch, so their
        epsilons add for the samples in that minibatch; across check-ins the
        per-sample guarantee is the max, not the sum.

        ``records`` may contain plain :class:`ReleaseRecord`\\ s and/or
        :class:`~repro.privacy.mechanism.AggregatedRelease` run-length
        groups; a group of ``count`` records is charged exactly as if the
        record appeared ``count`` times in sequence (the ε sum is
        accumulated by repeated addition, so the float result is
        bit-identical to the expanded form).
        """
        if not isinstance(records, (list, tuple)):
            records = tuple(records)
        if records is self._last_records:
            checkin_epsilon, checkin_delta, total = self._last_sums
        else:
            checkin_epsilon = 0.0
            checkin_delta = 0.0
            total = 0
            for entry in records:
                if type(entry) is AggregatedRelease:
                    record, count = entry.record, entry.count
                else:
                    record, count = entry, 1
                epsilon = record.epsilon
                if not math.isinf(epsilon):
                    # Repeated addition, not epsilon * count: preserves the
                    # exact left-to-right IEEE-754 sum of the expanded list.
                    for _ in range(count):
                        checkin_epsilon += epsilon
                if record.delta != 0.0:
                    for _ in range(count):
                        checkin_delta += record.delta
                total += count
            if isinstance(records, tuple):
                # Only tuples are safely immutable enough to memoize by id.
                self._last_records = records
                self._last_sums = (checkin_epsilon, checkin_delta, total)
        candidate = max(self._per_sample_epsilon, checkin_epsilon)
        if self._per_sample_cap is not None and candidate > self._per_sample_cap + 1e-12:
            raise PrivacyBudgetExceededError(
                spent=self._per_sample_epsilon,
                cap=self._per_sample_cap,
                requested=checkin_epsilon,
            )
        runs = self._runs
        for entry in records:
            if type(entry) is AggregatedRelease:
                record, count = entry.record, entry.count
            else:
                record, count = entry, 1
            if runs:
                last = runs[-1]
                last_record = last[0]
                # Identity first (memoized records repeat across
                # check-ins), then a cheap ε guard before the full
                # dataclass comparison — the common case is "different".
                if last_record is record or (
                    last_record.epsilon == record.epsilon
                    and last_record == record
                ):
                    last[1] += count
                    continue
            runs.append([record, count])
        self._num_records += total
        self._per_sample_epsilon = candidate
        self._total_epsilon += checkin_epsilon
        self._total_delta += checkin_delta

    def spend(self) -> PrivacySpend:
        """Return the cumulative spend under both accounting views."""
        return PrivacySpend(
            per_sample_epsilon=self._per_sample_epsilon,
            total_epsilon=self._total_epsilon,
            total_delta=self._total_delta,
            num_releases=self._num_records,
        )

    @property
    def records(self) -> List[ReleaseRecord]:
        """All release records charged so far, expanded, in charge order."""
        expanded: List[ReleaseRecord] = []
        for record, count in self._runs:
            expanded.extend([record] * count)
        return expanded

    @property
    def record_runs(self) -> List[Tuple[ReleaseRecord, int]]:
        """The run-length-encoded ledger (copy)."""
        return [(record, count) for record, count in self._runs]

    def reset(self) -> None:
        """Forget all history (e.g. between independent trials)."""
        self._runs.clear()
        self._num_records = 0
        self._per_sample_epsilon = 0.0
        self._total_epsilon = 0.0
        self._total_delta = 0.0

    def state_dict(self) -> Dict[str, Any]:
        """Serializable ledger state.

        Epsilons may be ``inf`` (the no-noise setting); JSON's
        ``Infinity`` literal round-trips it, and finite floats survive
        via ``repr`` exactly, so a restored ledger reports the identical
        spend bit for bit.
        """
        return {
            "per_sample_cap": self._per_sample_cap,
            "per_sample_epsilon": self._per_sample_epsilon,
            "total_epsilon": self._total_epsilon,
            "total_delta": self._total_delta,
            "num_records": self._num_records,
            "runs": [
                {
                    "epsilon": record.epsilon,
                    "delta": record.delta,
                    "mechanism": record.mechanism,
                    "sensitivity": record.sensitivity,
                    "count": count,
                }
                for record, count in self._runs
            ],
        }

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "PrivacyAccountant":
        """Inverse of :meth:`state_dict`."""
        cap = state["per_sample_cap"]
        accountant = cls(per_sample_cap=None if cap is None else float(cap))
        accountant._per_sample_epsilon = float(state["per_sample_epsilon"])
        accountant._total_epsilon = float(state["total_epsilon"])
        accountant._total_delta = float(state["total_delta"])
        accountant._num_records = int(state["num_records"])
        accountant._runs = [
            [
                ReleaseRecord(
                    epsilon=float(entry["epsilon"]),
                    delta=float(entry["delta"]),
                    mechanism=str(entry["mechanism"]),
                    sensitivity=float(entry["sensitivity"]),
                ),
                int(entry["count"]),
            ]
            for entry in state["runs"]
        ]
        return accountant
