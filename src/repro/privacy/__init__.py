"""Differential-privacy mechanisms used by Crowd-ML.

This package implements every mechanism the paper relies on:

* :class:`~repro.privacy.laplace.LaplaceMechanism` — Eq. (9)/(10), vector
  Laplace noise calibrated to L1 sensitivity (Theorem 1).
* :class:`~repro.privacy.discrete_laplace.DiscreteLaplaceMechanism` —
  Eqs. (11)/(12), integer-valued noise for counts (Theorem 2).
* :class:`~repro.privacy.gaussian.GaussianMechanism` — the (ε, δ) variant
  mentioned in footnote 1.
* :class:`~repro.privacy.exponential.ExponentialMechanism` — McSherry-Talwar
  sampling, used for label perturbation in the centralized baseline
  (Eq. (16), Theorem 3).
* :mod:`~repro.privacy.sensitivity` — global-sensitivity computations,
  including the 4/b bound of Appendix A and the Eq. (13) noise-power terms.
* :class:`~repro.privacy.accountant.PrivacyAccountant` — tracks the
  per-sample decomposition ε = ε_g + ε_e + C·ε_yk and enforces budget caps.
* :class:`~repro.privacy.budget.PrivacyBudget` — the ε split itself.
"""

from repro.privacy.accountant import (
    PrivacyAccountant,
    PrivacySpend,
    aggregate_releases,
)
from repro.privacy.attacks import (
    InversionResult,
    evaluate_inversion,
    inversion_attack_success,
    invert_logistic_gradient,
)
from repro.privacy.budget import CentralizedBudget, PrivacyBudget, split_budget
from repro.privacy.discrete_laplace import (
    DiscreteLaplaceMechanism,
    discrete_laplace_variance,
    sample_discrete_laplace,
)
from repro.privacy.exponential import (
    ExponentialMechanism,
    label_flip_distribution,
    perturb_label,
    perturb_labels,
)
from repro.privacy.gaussian import GaussianMechanism, gaussian_sigma
from repro.privacy.laplace import LaplaceMechanism, laplace_scale
from repro.privacy.mechanism import (
    AggregatedRelease,
    Mechanism,
    ReleaseRecord,
    validate_epsilon,
)
from repro.privacy.sensitivity import (
    count_sensitivity,
    feature_sensitivity,
    gradient_noise_power,
    hinge_gradient_sensitivity,
    laplace_noise_power,
    logistic_gradient_sensitivity,
    sampling_noise_power,
    squared_loss_gradient_sensitivity,
    total_gradient_noise_power,
)

__all__ = [
    "AggregatedRelease",
    "CentralizedBudget",
    "InversionResult",
    "evaluate_inversion",
    "inversion_attack_success",
    "invert_logistic_gradient",
    "DiscreteLaplaceMechanism",
    "ExponentialMechanism",
    "GaussianMechanism",
    "LaplaceMechanism",
    "Mechanism",
    "PrivacyAccountant",
    "PrivacyBudget",
    "PrivacySpend",
    "ReleaseRecord",
    "aggregate_releases",
    "count_sensitivity",
    "discrete_laplace_variance",
    "feature_sensitivity",
    "gaussian_sigma",
    "gradient_noise_power",
    "hinge_gradient_sensitivity",
    "label_flip_distribution",
    "laplace_noise_power",
    "laplace_scale",
    "logistic_gradient_sensitivity",
    "perturb_label",
    "perturb_labels",
    "sample_discrete_laplace",
    "sampling_noise_power",
    "split_budget",
    "squared_loss_gradient_sensitivity",
    "total_gradient_noise_power",
    "validate_epsilon",
]
