"""Exponential mechanism (McSherry & Talwar) and DP label perturbation.

The centralized baseline of Appendix C perturbs each label by sampling a
noisy label ``ŷ`` given the true label ``y`` from

    P(ŷ | y) ∝ exp(ε_y · d(y, ŷ) / 2),   d(y, ŷ) = I[y = ŷ]      (Eq. 16)

i.e. the true label keeps probability mass ``e^{ε/2}`` relative to each of
the ``C - 1`` other labels.  Since the score has sensitivity 1, this is
ε_y-differentially private (Theorem 3).
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Sequence

import numpy as np

from repro.privacy.mechanism import Mechanism
from repro.utils.numerics import softmax
from repro.utils.validation import check_positive, check_positive_int


class ExponentialMechanism(Mechanism):
    """Generic exponential mechanism over a finite candidate set.

    Parameters
    ----------
    epsilon:
        Privacy level ε.
    score_sensitivity:
        Global sensitivity of the score function (1 for indicator scores).

    The :meth:`release` method takes a vector of scores (one per candidate)
    and returns the index of the sampled candidate.
    """

    def __init__(
        self,
        epsilon: float,
        score_sensitivity: float = 1.0,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__(epsilon, rng)
        self._score_sensitivity = check_positive(score_sensitivity, "score_sensitivity")

    @property
    def score_sensitivity(self) -> float:
        """Global sensitivity of the score function."""
        return self._score_sensitivity

    def probabilities(self, scores: np.ndarray) -> np.ndarray:
        """Return the sampling distribution ``P(i) ∝ exp(ε·sᵢ / 2Δ)``."""
        scores = np.asarray(scores, dtype=np.float64)
        if self.is_identity:
            # ε = ∞ degenerates to argmax (ties split uniformly).
            best = scores == scores.max()
            return best / best.sum()
        logits = self._epsilon * scores / (2.0 * self._score_sensitivity)
        return softmax(logits)

    def release(self, scores: np.ndarray) -> int:
        """Sample a candidate index with probability ∝ exp(ε·score/2Δ)."""
        probs = self.probabilities(scores)
        return int(self._rng.choice(probs.shape[0], p=probs))


def label_flip_distribution(epsilon: float, num_classes: int) -> np.ndarray:
    """Per-label distribution ``P(ŷ | y)`` of Eq. (16) as a length-C vector.

    Entry 0 is the probability of keeping the true label; the remaining
    ``C - 1`` mass is split evenly.  For ε = ∞ the true label is kept with
    probability 1.
    """
    num_classes = check_positive_int(num_classes, "num_classes")
    # Beyond exp(~700) the keep probability is 1 to machine precision;
    # avoid math.exp overflow for huge finite epsilons.
    if math.isinf(epsilon) or epsilon > 1400.0:
        out = np.zeros(num_classes)
        out[0] = 1.0
        return out
    check_positive(epsilon, "epsilon")
    keep_weight = math.exp(epsilon / 2.0)
    total = keep_weight + (num_classes - 1)
    out = np.full(num_classes, 1.0 / total)
    out[0] = keep_weight / total
    return out


def perturb_label(
    label: int,
    num_classes: int,
    epsilon: float,
    rng: np.random.Generator,
) -> int:
    """Sample a noisy label via the exponential mechanism of Eq. (16).

    >>> import numpy as np
    >>> perturb_label(3, 10, math.inf, np.random.default_rng(0))
    3
    """
    dist = label_flip_distribution(epsilon, num_classes)
    keep_prob = dist[0]
    if rng.random() < keep_prob:
        return int(label)
    # Uniform over the other C-1 labels.
    offset = int(rng.integers(1, num_classes))
    return int((label + offset) % num_classes)


def perturb_labels(
    labels: np.ndarray,
    num_classes: int,
    epsilon: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Vectorized :func:`perturb_label` over an array of labels."""
    labels = np.asarray(labels, dtype=np.int64)
    if math.isinf(epsilon):
        return labels.copy()
    dist = label_flip_distribution(epsilon, num_classes)
    keep = rng.random(labels.shape) < dist[0]
    offsets = rng.integers(1, num_classes, size=labels.shape)
    flipped = (labels + offsets) % num_classes
    return np.where(keep, labels, flipped).astype(np.int64)
