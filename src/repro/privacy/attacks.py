"""Adversarial demonstrations: why local sanitization is necessary.

Section III-C motivates Crowd-ML's local mechanism with an adversary who
"can potentially access all communication between devices and the server".
This module implements that adversary's best simple move against the
protocol — **gradient inversion** — and quantifies how the Laplace
mechanism defeats it.

For multiclass logistic regression with a *single-sample* (b = 1) update,
the data gradient is the rank-one matrix

    g = x · M,   M_k = P(y = k | x) − I[y = k],

so an eavesdropper can read the raw feature vector straight off any row of
an unsanitized gradient: the row for class ``y`` is ``x·(P_y − 1)`` and all
other rows are positive multiples of ``x``.  The true label is identified
as the single row whose sign is flipped (the only ``M_k < 0``).

:func:`invert_logistic_gradient` implements this; the tests and the
``examples``/``benchmarks`` use it to show near-perfect reconstruction at
ε = ∞ and failure under the calibrated Laplace noise of Eq. (10) — an
empirical reading of the ε-DP guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.logistic import MulticlassLogisticRegression
from repro.utils.exceptions import ConfigurationError


@dataclass(frozen=True)
class InversionResult:
    """Adversary's reconstruction from one observed gradient."""

    recovered_features: np.ndarray
    recovered_label: int
    #: |cosine| similarity between the true and recovered feature vector
    #: (filled by :func:`evaluate_inversion`; NaN until compared).
    cosine_similarity: float = float("nan")


def invert_logistic_gradient(
    gradient: np.ndarray, num_features: int, num_classes: int
) -> InversionResult:
    """Reconstruct (x, y) from a (possibly noisy) b=1 logistic gradient.

    The attack:

    1. reshape the flat gradient into the (C, D) matrix ``g``;
    2. the true label's row is the one anti-correlated with the remaining
       rows' common direction — equivalently, with rank-one structure,
       the row whose coefficient ``M_k`` is negative.  We estimate the
       common direction from the dominant right singular vector (robust
       to noise) and pick the row with the most negative projection;
    3. the feature estimate is the dominant singular direction itself,
       sign-fixed so that non-label rows project positively.

    Scale cannot be recovered (only x's direction), which is all the
    adversary needs for, e.g., re-identifying a location or spectrum.
    """
    gradient = np.asarray(gradient, dtype=np.float64)
    if gradient.shape != (num_features * num_classes,):
        raise ConfigurationError(
            f"gradient must have shape ({num_features * num_classes},), "
            f"got {gradient.shape}"
        )
    matrix = gradient.reshape(num_classes, num_features)
    # Dominant right singular vector ≈ x's direction.
    _, _, vt = np.linalg.svd(matrix, full_matrices=False)
    direction = vt[0]
    projections = matrix @ direction
    # Rows with positive M_k project with one sign; the label row flips.
    # Fix the global sign so that the majority of rows project positively.
    if np.sum(projections > 0) < num_classes / 2:
        direction = -direction
        projections = -projections
    label = int(np.argmin(projections))
    return InversionResult(recovered_features=direction, recovered_label=label)


def evaluate_inversion(
    true_features: np.ndarray, true_label: int, result: InversionResult
) -> InversionResult:
    """Score a reconstruction against the ground truth.

    Returns a copy of ``result`` with :attr:`InversionResult.cosine_similarity`
    filled in (absolute cosine — sign is unidentifiable).
    """
    true_features = np.asarray(true_features, dtype=np.float64)
    recovered = result.recovered_features
    denom = np.linalg.norm(true_features) * np.linalg.norm(recovered)
    cosine = 0.0 if denom == 0 else float(
        abs(np.dot(true_features, recovered)) / denom
    )
    return InversionResult(
        recovered_features=recovered,
        recovered_label=result.recovered_label,
        cosine_similarity=cosine,
    )


def inversion_attack_success(
    model: MulticlassLogisticRegression,
    parameters: np.ndarray,
    features: np.ndarray,
    labels: np.ndarray,
    sanitizer=None,
    rng: np.random.Generator | None = None,
) -> tuple[float, float]:
    """Run the attack over a batch of single-sample releases.

    For each sample, computes the b=1 gradient the device would transmit,
    optionally sanitizes it with ``sanitizer`` (a mechanism with a
    ``release`` method, e.g. the Eq. 10 Laplace mechanism), inverts it,
    and scores the reconstruction.

    Returns
    -------
    (mean cosine similarity, label recovery rate)
    """
    features = np.asarray(features, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    cosines, label_hits = [], []
    for i in range(features.shape[0]):
        gradient = model.gradient(
            parameters, features[i : i + 1], labels[i : i + 1]
        )
        if sanitizer is not None:
            gradient = sanitizer.release(gradient)
        if model.l2_regularization:
            # w is public (the adversary saw the check-out), so the λw term
            # is trivially subtracted before inversion.
            gradient = gradient - model.l2_regularization * np.asarray(
                parameters, dtype=np.float64
            )
        raw = invert_logistic_gradient(
            gradient, model.num_features, model.num_classes
        )
        scored = evaluate_inversion(features[i], int(labels[i]), raw)
        cosines.append(scored.cosine_similarity)
        label_hits.append(scored.recovered_label == int(labels[i]))
    return float(np.mean(cosines)), float(np.mean(label_hits))
