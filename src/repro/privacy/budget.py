"""Privacy-budget specification and splitting.

The overall per-sample privacy level of a Crowd-ML device decomposes as

    ε = ε_g + ε_e + C · ε_yk                       (Appendix B, Remark 1)

where ε_g protects the averaged gradient, ε_e the misclassification count,
and ε_yk each of the C label counts.  Because the counts are only used for
monitoring, the paper sets ε_e and ε_yk much smaller than ε_g so that
ε ≈ ε_g.  :class:`PrivacyBudget` captures one such assignment;
:func:`split_budget` constructs the paper's default split.

The centralized baseline's budget instead splits as ε = ε_x + ε_y with
ε_x = ε_y = ε/2 (Appendix C).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.privacy.mechanism import validate_epsilon
from repro.utils.exceptions import ConfigurationError
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class PrivacyBudget:
    """Per-sample privacy levels for one Crowd-ML device.

    Attributes
    ----------
    epsilon_gradient:
        ε_g for the averaged-gradient Laplace mechanism (Eq. 10).
    epsilon_error:
        ε_e for the misclassified-count discrete Laplace mechanism (Eq. 11).
    epsilon_label:
        ε_yk for *each* of the C label-count mechanisms (Eq. 12).
    num_classes:
        C, the number of label counts released per check-in.
    """

    epsilon_gradient: float
    epsilon_error: float
    epsilon_label: float
    num_classes: int

    def __post_init__(self):
        validate_epsilon(self.epsilon_gradient, "epsilon_gradient")
        validate_epsilon(self.epsilon_error, "epsilon_error")
        validate_epsilon(self.epsilon_label, "epsilon_label")
        check_positive_int(self.num_classes, "num_classes")

    @property
    def total_epsilon(self) -> float:
        """ε = ε_g + ε_e + C·ε_yk (``inf`` if any component is ``inf``)."""
        if (
            math.isinf(self.epsilon_gradient)
            or math.isinf(self.epsilon_error)
            or math.isinf(self.epsilon_label)
        ):
            return math.inf
        return (
            self.epsilon_gradient
            + self.epsilon_error
            + self.num_classes * self.epsilon_label
        )

    @property
    def is_private(self) -> bool:
        """True when any noise at all is added."""
        return not math.isinf(self.total_epsilon)

    @classmethod
    def non_private(cls, num_classes: int) -> "PrivacyBudget":
        """Budget for the paper's ε⁻¹ = 0 arms: all mechanisms are identity."""
        return cls(math.inf, math.inf, math.inf, num_classes)


def split_budget(
    total_epsilon: float,
    num_classes: int,
    *,
    monitoring_fraction: float = 0.02,
) -> PrivacyBudget:
    """Split a total per-sample ε into (ε_g, ε_e, ε_yk).

    Following Appendix B Remark 1, almost all of the budget goes to the
    gradient; a small ``monitoring_fraction`` is divided between the error
    count and the C label counts so that ε ≈ ε_g.

    >>> budget = split_budget(1.0, 10)
    >>> abs(budget.total_epsilon - 1.0) < 1e-12
    True
    >>> budget.epsilon_gradient > 0.97
    True
    """
    if math.isinf(total_epsilon):
        return PrivacyBudget.non_private(num_classes)
    total_epsilon = validate_epsilon(total_epsilon, "total_epsilon")
    num_classes = check_positive_int(num_classes, "num_classes")
    if not (0.0 < monitoring_fraction < 1.0):
        raise ConfigurationError(
            f"monitoring_fraction must be in (0, 1), got {monitoring_fraction!r}"
        )
    monitoring = total_epsilon * monitoring_fraction
    epsilon_error = monitoring / 2.0
    epsilon_label = monitoring / (2.0 * num_classes)
    epsilon_gradient = total_epsilon - monitoring
    return PrivacyBudget(epsilon_gradient, epsilon_error, epsilon_label, num_classes)


@dataclass(frozen=True)
class CentralizedBudget:
    """Input-perturbation budget for the centralized baseline (Appendix C).

    ε = ε_x + ε_y with features perturbed at ε_x (Eq. 15) and labels at
    ε_y (Eq. 16).  The paper uses the even split ε_x = ε_y = ε/2.
    """

    epsilon_feature: float
    epsilon_label: float

    def __post_init__(self):
        validate_epsilon(self.epsilon_feature, "epsilon_feature")
        validate_epsilon(self.epsilon_label, "epsilon_label")

    @property
    def total_epsilon(self) -> float:
        if math.isinf(self.epsilon_feature) or math.isinf(self.epsilon_label):
            return math.inf
        return self.epsilon_feature + self.epsilon_label

    @classmethod
    def even_split(cls, total_epsilon: float) -> "CentralizedBudget":
        """The paper's ε_x = ε_y = ε/2 split (identity mechanisms for ε=∞)."""
        if math.isinf(total_epsilon):
            return cls(math.inf, math.inf)
        total_epsilon = validate_epsilon(total_epsilon, "total_epsilon")
        return cls(total_epsilon / 2.0, total_epsilon / 2.0)
