"""Global-sensitivity computations (Appendices A-C) and Eq. (13) noise power.

The key quantity is the L1 sensitivity of the averaged minibatch gradient
for multiclass logistic regression.  With ``‖x‖₁ ≤ 1``, swapping one sample
in a minibatch of size ``b`` changes the averaged gradient matrix by at most
``4/b`` in L1 norm (Appendix A): each sample contributes ``x·M`` where the
row vector ``M`` of posterior terms satisfies ``‖M‖₁ = 2(1 - P_y) ≤ 2``, so
the swap moves the average by at most ``(2 + 2)/b``.

This module also exposes the two terms of Eq. (13),

    E[‖ĝ‖²] = (1/b)·E[‖g‖²]  +  32·D / (b·ε_g)²,

used by the privacy/performance ablation (DESIGN.md A1).
"""

from __future__ import annotations

import math

from repro.utils.validation import check_non_negative, check_positive, check_positive_int


def logistic_gradient_sensitivity(batch_size: int, feature_l1_bound: float = 1.0) -> float:
    """L1 sensitivity of the averaged multiclass-logistic gradient.

    Appendix A proves ``4/b`` for ``‖x‖₁ ≤ 1``; for a general bound ``R`` on
    ``‖x‖₁`` the same argument gives ``4R/b``.

    >>> logistic_gradient_sensitivity(20)
    0.2
    """
    batch_size = check_positive_int(batch_size, "batch_size")
    feature_l1_bound = check_positive(feature_l1_bound, "feature_l1_bound")
    return 4.0 * feature_l1_bound / batch_size


def hinge_gradient_sensitivity(batch_size: int, feature_l1_bound: float = 1.0) -> float:
    """L1 sensitivity of the averaged multiclass-hinge (SVM) subgradient.

    For the Crammer-Singer multiclass hinge loss the per-sample subgradient
    is ``±x`` in at most two parameter columns, so swapping one sample moves
    the minibatch average by at most ``4R/b`` — the same bound as logistic
    regression, which lets the device reuse one calibration for both models.
    """
    return logistic_gradient_sensitivity(batch_size, feature_l1_bound)


def squared_loss_gradient_sensitivity(
    batch_size: int,
    feature_l1_bound: float = 1.0,
    residual_bound: float = 1.0,
) -> float:
    """L1 sensitivity of the averaged squared-loss gradient with clipping.

    The per-sample gradient is ``(w'x − y)·x``; with ``‖x‖₁ ≤ R`` and the
    residual clipped to ``|w'x − y| ≤ r`` the swap bound is ``2·r·R/b``.
    """
    batch_size = check_positive_int(batch_size, "batch_size")
    feature_l1_bound = check_positive(feature_l1_bound, "feature_l1_bound")
    residual_bound = check_positive(residual_bound, "residual_bound")
    return 2.0 * residual_bound * feature_l1_bound / batch_size


def count_sensitivity() -> float:
    """Sensitivity of the error / label-count score functions (Appendix B).

    Changing one sample changes ``n_e`` and each ``n_y^k`` by at most 1.
    """
    return 1.0


def feature_sensitivity(feature_l1_bound: float = 1.0) -> float:
    """Sensitivity of raw feature release in the centralized baseline.

    Feature transmission is the identity, so its sensitivity is the L1
    diameter of the feature domain: ``2R`` for ``‖x‖₁ ≤ R`` (Theorem 3 uses
    R = 1, giving the constant 2 behind Eq. (15)'s scale 2/ε).
    """
    return 2.0 * check_positive(feature_l1_bound, "feature_l1_bound")


def laplace_noise_power(dimension: int, sensitivity: float, epsilon: float) -> float:
    """``E[‖z‖²] = 2·D·(S/ε)²`` for vector Laplace noise.

    Returns 0 for ε = ∞.
    """
    dimension = check_positive_int(dimension, "dimension")
    if math.isinf(epsilon):
        return 0.0
    scale = check_positive(sensitivity, "sensitivity") / check_positive(epsilon, "epsilon")
    return 2.0 * dimension * scale**2


def gradient_noise_power(
    dimension: int,
    batch_size: int,
    epsilon: float,
    feature_l1_bound: float = 1.0,
) -> float:
    """Laplace term of Eq. (13): ``32·D / (b·ε_g)²`` (for R = 1).

    >>> gradient_noise_power(50, 20, 10.0) == 32 * 50 / (20 * 10.0) ** 2
    True
    """
    sensitivity = logistic_gradient_sensitivity(batch_size, feature_l1_bound)
    return laplace_noise_power(dimension, sensitivity, epsilon)


def sampling_noise_power(per_sample_power: float, batch_size: int) -> float:
    """Sampling term of Eq. (13): ``E[‖g̃‖²] = E[‖g‖²]/b``."""
    check_non_negative(per_sample_power, "per_sample_power")
    batch_size = check_positive_int(batch_size, "batch_size")
    return per_sample_power / batch_size


def total_gradient_noise_power(
    per_sample_power: float,
    dimension: int,
    batch_size: int,
    epsilon: float,
    feature_l1_bound: float = 1.0,
) -> float:
    """Full Eq. (13): sampling noise plus Laplace mechanism noise."""
    return sampling_noise_power(per_sample_power, batch_size) + gradient_noise_power(
        dimension, batch_size, epsilon, feature_l1_bound
    )
