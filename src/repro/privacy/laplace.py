"""Vector Laplace mechanism (Eqs. (9) and (10) of the paper).

A vector-valued function ``f`` with L1 global sensitivity ``S(f)`` is made
ε-differentially private by adding i.i.d. Laplace noise of scale
``S(f)/ε`` to each coordinate::

    P(z) ∝ exp(-ε ‖z‖₁ / S(f))            (Eq. 9)

For Crowd-ML's averaged logistic-regression gradient the sensitivity is
``4/b`` (Appendix A), so the per-coordinate scale is ``4/(b·ε_g)`` — this is
exactly Eq. (10): ``P(z) ∝ exp(-ε_g b |z| / 4)``.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.privacy.mechanism import Mechanism
from repro.utils.validation import check_positive


def laplace_scale(sensitivity: float, epsilon: float) -> float:
    """Per-coordinate Laplace scale ``S(f)/ε``.

    Returns 0 for ε = ∞ (no noise).

    >>> laplace_scale(4.0, 2.0)
    2.0
    """
    if math.isinf(epsilon):
        return 0.0
    return check_positive(sensitivity, "sensitivity") / check_positive(epsilon, "epsilon")


class LaplaceMechanism(Mechanism):
    """ε-DP release of real vectors via coordinate-wise Laplace noise.

    Parameters
    ----------
    epsilon:
        Privacy level ε (``math.inf`` for the non-private identity).
    sensitivity:
        L1 global sensitivity of the released function.
    rng:
        Noise source; defaults to a fresh non-deterministic generator.

    Examples
    --------
    >>> import numpy as np
    >>> mech = LaplaceMechanism(epsilon=1.0, sensitivity=4.0,
    ...                         rng=np.random.default_rng(0))
    >>> noisy = mech.release(np.zeros(3))
    >>> noisy.shape
    (3,)
    """

    def __init__(
        self,
        epsilon: float,
        sensitivity: float,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__(epsilon, rng)
        self._sensitivity = check_positive(sensitivity, "sensitivity")
        self._scale = laplace_scale(self._sensitivity, self._epsilon)

    @property
    def sensitivity(self) -> float:
        """L1 global sensitivity the noise is calibrated to."""
        return self._sensitivity

    @property
    def scale(self) -> float:
        """Per-coordinate Laplace scale ``S(f)/ε`` (0 when ε = ∞)."""
        return self._scale

    def noise_variance(self) -> float:
        """Per-coordinate noise variance ``2·(S/ε)²``."""
        return 2.0 * self._scale**2

    def expected_noise_power(self, dimension: int) -> float:
        """``E[‖z‖²]`` for a ``dimension``-long release.

        For the gradient mechanism (S = 4/b) this is ``32·D/(b·ε)²`` — the
        Laplace term in Eq. (13).
        """
        return float(dimension) * self.noise_variance()

    def release(self, value: np.ndarray) -> np.ndarray:
        """Return ``value + z`` with ``z ~ Laplace(0, S/ε)`` coordinate-wise."""
        value = np.asarray(value, dtype=np.float64)
        if self.is_identity:
            return value.copy()
        noise = self._rng.laplace(loc=0.0, scale=self._scale, size=value.shape)
        return value + noise
