"""Common interface for differential-privacy mechanisms.

A mechanism is a randomized map from a true value to a sanitized value.  All
mechanisms in this package share the :class:`Mechanism` interface so the
device runtime can treat gradient sanitization, count sanitization, and the
centralized baseline's input perturbation uniformly.

An ``epsilon`` of ``math.inf`` (equivalently, the paper's ε⁻¹ = 0 setting)
is accepted everywhere and means *no noise*: mechanisms become the identity,
which is how the non-private arms of the experiments are run through the
identical code path.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.utils.exceptions import ConfigurationError


@dataclass(frozen=True)
class ReleaseRecord:
    """Metadata describing one sanitized release.

    Attributes
    ----------
    epsilon:
        The ε consumed by this release (``math.inf`` when no noise was added).
    delta:
        The δ consumed (0 for pure-ε mechanisms).
    mechanism:
        Human-readable mechanism name, e.g. ``"laplace"``.
    sensitivity:
        The global sensitivity the noise was calibrated to.
    """

    epsilon: float
    delta: float = 0.0
    mechanism: str = ""
    sensitivity: float = 0.0


@dataclass(frozen=True)
class AggregatedRelease:
    """``count`` identical releases, run-length encoded.

    A check-in releases one gradient, one error count, and C label counts;
    the C label releases share a single :class:`ReleaseRecord`.  Passing
    ``AggregatedRelease(record, C)`` to
    :meth:`~repro.privacy.accountant.PrivacyAccountant.charge_checkin`
    charges all C at once — O(1) ledger growth per check-in instead of
    O(C) — while remaining exactly equivalent (including float summation
    order) to charging the expanded sequence.
    """

    record: ReleaseRecord
    count: int

    def __post_init__(self):
        if self.count < 1:
            raise ConfigurationError(
                f"AggregatedRelease count must be >= 1, got {self.count}"
            )


def validate_epsilon(epsilon: float, name: str = "epsilon") -> float:
    """Validate a privacy level: positive, possibly infinite.

    ``math.inf`` encodes the paper's "ε⁻¹ = 0" (non-private) arm.
    """
    epsilon = float(epsilon)
    if math.isnan(epsilon) or epsilon <= 0:
        raise ConfigurationError(f"{name} must be positive (inf = no privacy), got {epsilon!r}")
    return epsilon


class Mechanism(ABC):
    """A randomized sanitizer with a fixed per-release privacy level."""

    def __init__(self, epsilon: float, rng: Optional[np.random.Generator] = None):
        self._epsilon = validate_epsilon(epsilon)
        self._rng = rng if rng is not None else np.random.default_rng()
        # ε is immutable, so the identity check is decided once: release()
        # consults this flag on every message.
        self._is_identity = math.isinf(self._epsilon)

    @property
    def epsilon(self) -> float:
        """Per-release privacy level ε (``inf`` means the identity map)."""
        return self._epsilon

    @property
    def delta(self) -> float:
        """Per-release δ; zero for pure-ε mechanisms."""
        return 0.0

    @property
    def is_identity(self) -> bool:
        """True when this mechanism adds no noise (ε = ∞)."""
        return self._is_identity

    @property
    def rng(self) -> np.random.Generator:
        """The random generator used to draw noise."""
        return self._rng

    @abstractmethod
    def release(self, value):
        """Return a sanitized copy of ``value``."""

    def record(self, sensitivity: float = 0.0) -> ReleaseRecord:
        """Return the :class:`ReleaseRecord` describing one release."""
        return ReleaseRecord(
            epsilon=self._epsilon,
            delta=self.delta,
            mechanism=type(self).__name__,
            sensitivity=float(sensitivity),
        )
