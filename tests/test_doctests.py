"""Run every docstring example in the library as a test.

Doc examples are part of the public API contract; this harness keeps them
honest without requiring a separate ``--doctest-modules`` invocation.
"""

import doctest
import importlib
import pkgutil

import pytest

import repro


def _walk_module_names():
    yield "repro"
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield info.name


MODULE_NAMES = sorted(set(_walk_module_names()))


@pytest.mark.parametrize("module_name", MODULE_NAMES)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failure(s) in {module_name}"


def test_doctest_coverage_is_nontrivial():
    """The suite must actually exercise examples, not silently skip."""
    total_attempted = 0
    for module_name in MODULE_NAMES:
        module = importlib.import_module(module_name)
        results = doctest.testmod(module, verbose=False)
        total_attempted += results.attempted
    assert total_attempted > 30
