"""Tests of FigureResult serialization."""

import json

import numpy as np

from repro.evaluation.curves import ErrorCurve
from repro.experiments.results import FigureResult


def sample_result() -> FigureResult:
    rng = np.random.default_rng(3)
    return FigureResult(
        "fig4",
        curves={
            "crowd": ErrorCurve(np.arange(1, 9),
                                rng.uniform(0.0, 1.0, size=8)),
            "sgd": ErrorCurve(np.array([2, 4]), np.array([0.7, 0.3])),
        },
        reference_lines={"batch": 0.1 + 0.2},  # repr-hostile float
    )


class TestFigureResultRoundTrip:
    def test_dict_round_trip_bit_identical(self):
        result = sample_result()
        loaded = FigureResult.from_dict(result.to_dict())
        assert loaded.figure == result.figure
        assert set(loaded.curves) == set(result.curves)
        for label in result.curves:
            assert np.array_equal(loaded.curves[label].iterations,
                                  result.curves[label].iterations)
            assert (loaded.curves[label].errors.tobytes()
                    == result.curves[label].errors.tobytes())
        assert loaded.reference_lines == result.reference_lines

    def test_json_round_trip_bit_identical(self):
        result = sample_result()
        loaded = FigureResult.from_json(result.to_json())
        for label in result.curves:
            assert (loaded.curves[label].errors.tobytes()
                    == result.curves[label].errors.tobytes())
        assert loaded.reference_lines == result.reference_lines

    def test_json_is_plain_data(self):
        payload = json.loads(sample_result().to_json())
        assert set(payload) == {"figure", "curves", "reference_lines"}
        assert payload["curves"]["sgd"]["iterations"] == [2, 4]

    def test_empty_result_round_trips(self):
        loaded = FigureResult.from_dict(FigureResult("empty").to_dict())
        assert loaded.figure == "empty"
        assert loaded.curves == {} and loaded.reference_lines == {}

    def test_tables_match_after_round_trip(self):
        result = sample_result()
        assert (FigureResult.from_json(result.to_json()).format_table()
                == result.format_table())
