"""Regression: the run_figN wrappers and their spec/JSON forms agree."""

import numpy as np
import pytest

from repro.experiments import (
    ExperimentScale,
    ExperimentSession,
    ExperimentSpec,
    FIGURE_SPEC_BUILDERS,
    fig3_spec,
    fig4_spec,
    run_fig3_experiment,
    run_fig4_experiment,
)


def assert_results_equal(a, b):
    assert set(a.curves) == set(b.curves)
    for k in a.curves:
        assert np.array_equal(a.curves[k].iterations, b.curves[k].iterations), k
        assert np.array_equal(a.curves[k].errors, b.curves[k].errors), k
    assert a.reference_lines == b.reference_lines


class TestFig4Equivalence:
    @pytest.fixture(scope="class")
    def wrapper_result(self):
        return run_fig4_experiment(ExperimentScale.smoke(), seed=0)

    def test_wrapper_matches_spec_built(self, wrapper_result):
        spec = fig4_spec(ExperimentScale.smoke())
        spec_result = ExperimentSession().run(spec, seed=0)
        assert_results_equal(wrapper_result, spec_result)

    def test_wrapper_matches_json_round_tripped_spec(self, wrapper_result):
        text = fig4_spec(ExperimentScale.smoke()).to_json()
        revived = ExperimentSpec.from_json(text)
        json_result = ExperimentSession().run(revived, seed=0)
        assert_results_equal(wrapper_result, json_result)

    def test_arm_labels_match_seed_behavior(self, wrapper_result):
        assert set(wrapper_result.curves) == {"Crowd-ML (SGD)",
                                              "Decentral (SGD)"}
        assert set(wrapper_result.reference_lines) == {"Central (batch)"}


class TestFig3Equivalence:
    def test_wrapper_matches_spec_built(self):
        wrapper = run_fig3_experiment(num_devices=2, samples_per_device=6,
                                      learning_rates=(1.0,), seed=0)
        spec = fig3_spec(num_devices=2, samples_per_device=6,
                         learning_rates=(1.0,))
        spec_result = ExperimentSession().run(spec, seed=0)
        assert_results_equal(wrapper, spec_result)


class TestFigureSpecCatalogue:
    def test_builders_cover_figures_4_to_9(self):
        assert set(FIGURE_SPEC_BUILDERS) == {"4", "5", "6", "7", "8", "9"}

    @pytest.mark.parametrize("figure", sorted(FIGURE_SPEC_BUILDERS))
    def test_expected_arm_labels(self, figure):
        spec = FIGURE_SPEC_BUILDERS[figure](ExperimentScale.smoke())
        labels = {arm.label for arm in spec.arms}
        if figure in ("4", "7"):
            assert labels == {"Crowd-ML (SGD)", "Decentral (SGD)"}
        elif figure in ("5", "8"):
            assert labels == {f"{kind} (SGD,b={b})"
                              for kind in ("Crowd-ML", "Central")
                              for b in (1, 10, 20)}
        else:
            assert labels == {f"Crowd-ML (b={b},{d}D)"
                              for b in (1, 20)
                              for d in (1, 10, 100, 1000)}
        assert [arm.label for arm in spec.reference_arms] == ["Central (batch)"]
