"""Tests of the component registries."""

import pytest

from repro.registry import (
    DATASETS,
    MODELS,
    PARTITIONERS,
    PRIVACY_MECHANISMS,
    Registry,
    RegistryError,
    SCHEDULES,
)


class TestRegistry:
    def test_register_and_create(self):
        reg = Registry("widget")
        reg.register("square", lambda side=1: side * side)
        assert reg.create("square", side=3) == 9

    def test_decorator_form(self):
        reg = Registry("widget")

        @reg.register("double")
        def double(x):
            return 2 * x

        assert double(4) == 8  # decorator returns the function unchanged
        assert reg.create("double", x=4) == 8

    def test_duplicate_registration_raises(self):
        reg = Registry("widget")
        reg.register("a", lambda: 1)
        with pytest.raises(RegistryError, match="already registered"):
            reg.register("a", lambda: 2)

    def test_overwrite_flag(self):
        reg = Registry("widget")
        reg.register("a", lambda: 1)
        reg.register("a", lambda: 2, overwrite=True)
        assert reg.create("a") == 2

    def test_unknown_lookup_names_known_components(self):
        reg = Registry("widget")
        reg.register("alpha", lambda: 1)
        with pytest.raises(RegistryError, match="alpha"):
            reg.get("beta")

    def test_unregister(self):
        reg = Registry("widget")
        reg.register("a", lambda: 1)
        reg.unregister("a")
        assert "a" not in reg
        with pytest.raises(RegistryError):
            reg.unregister("a")

    def test_container_protocol(self):
        reg = Registry("widget")
        reg.register("b", lambda: 1)
        reg.register("a", lambda: 1)
        assert len(reg) == 2
        assert list(reg) == ["a", "b"]  # sorted
        assert "a" in reg and "c" not in reg

    def test_create_allows_name_kwarg(self):
        reg = Registry("widget")
        reg.register("tagged", lambda name: f"<{name}>")
        assert reg.create("tagged", name="x") == "<x>"


class TestBuiltinRegistries:
    def test_models(self):
        for name in ("logistic", "linear_svm", "ridge"):
            assert name in MODELS
        model = MODELS.create("logistic", num_features=4, num_classes=3)
        assert model.num_parameters == 12

    def test_datasets(self):
        for name in ("mnist_like", "cifar_like", "activity_stream", "thermostat"):
            assert name in DATASETS
        train, test = DATASETS.create("mnist_like", num_train=60, num_test=30, seed=0)
        assert len(train) == 60 and len(test) == 30

    def test_partitioners(self, rng, small_dataset):
        for name in ("iid", "dirichlet", "shard"):
            assert name in PARTITIONERS
        parts = PARTITIONERS.get("iid")(small_dataset, 3, rng)
        assert len(parts) == 3

    def test_schedules(self):
        schedule = SCHEDULES.create("inverse_sqrt", constant=2.0)
        assert schedule.rate(4) == pytest.approx(1.0)

    def test_privacy_mechanisms(self):
        for name in ("laplace", "discrete_laplace", "gaussian", "exponential"):
            assert name in PRIVACY_MECHANISMS
