"""Tests of ArmSpec / ExperimentSpec and their JSON serialization."""

import math

import pytest

from repro.experiments import (
    ArmSpec,
    ExperimentScale,
    ExperimentSpec,
    fig3_spec,
    fig4_spec,
    fig5_spec,
    fig6_spec,
    fig7_spec,
    fig8_spec,
    fig9_spec,
)
from repro.utils.exceptions import ConfigurationError


class TestArmSpec:
    def test_defaults(self):
        arm = ArmSpec(label="a")
        assert arm.kind == "crowd"
        assert arm.model == "logistic"
        assert math.isinf(arm.epsilon)
        assert arm.batch_size == 1

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="kind"):
            ArmSpec(label="a", kind="quantum")

    def test_invalid_batch_size_rejected(self):
        with pytest.raises(ConfigurationError):
            ArmSpec(label="a", batch_size=0)

    def test_kwargs_are_copied(self):
        kwargs = {"constant": 1.0}
        arm = ArmSpec(label="a", schedule_kwargs=kwargs)
        kwargs["constant"] = 99.0
        assert arm.schedule_kwargs["constant"] == 1.0

    def test_round_trip_defaults_are_compact(self):
        arm = ArmSpec(label="a")
        data = arm.to_dict()
        assert data == {"label": "a", "kind": "crowd"}
        assert ArmSpec.from_dict(data) == arm

    def test_round_trip_infinite_epsilon(self):
        arm = ArmSpec(label="a", epsilon=math.inf)
        assert ArmSpec.from_dict(arm.to_dict()) == arm

    def test_round_trip_finite_epsilon(self):
        arm = ArmSpec(label="a", epsilon=10.0, batch_size=20,
                      delay_multiples=100.0, seed_offset=7)
        assert ArmSpec.from_dict(arm.to_dict()) == arm

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError, match="epsilonn"):
            ArmSpec.from_dict({"label": "a", "epsilonn": 1.0})


class TestExperimentSpec:
    def _spec(self):
        return ExperimentSpec(
            name="demo",
            dataset="mnist_like",
            scale=ExperimentScale.smoke(),
            arms=(
                ArmSpec(label="crowd", schedule_kwargs={"constant": 30.0}),
                ArmSpec(label="private", epsilon=10.0, seed_offset=1,
                        schedule_kwargs={"constant": 30.0}),
            ),
            reference_arms=(ArmSpec(label="batch", kind="central_batch"),),
        )

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            ExperimentSpec(name="x", arms=(ArmSpec(label="a"),
                                           ArmSpec(label="a")))

    def test_central_batch_arm_must_be_a_reference(self):
        with pytest.raises(ConfigurationError, match="reference_arms"):
            ExperimentSpec(name="x",
                           arms=(ArmSpec(label="b", kind="central_batch"),))

    def test_reference_arms_must_be_central_batch(self):
        with pytest.raises(ConfigurationError, match="central_batch"):
            ExperimentSpec(name="x", arms=(),
                           reference_arms=(ArmSpec(label="c", kind="crowd"),))

    def test_json_round_trip(self):
        spec = self._spec()
        assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_json_is_plain_text(self):
        text = self._spec().to_json()
        assert "Infinity" not in text  # inf encodes portably as "inf"
        assert '"mnist_like"' in text

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError, match="armz"):
            ExperimentSpec.from_dict({"name": "x", "armz": []})

    def test_with_scale(self):
        spec = self._spec()
        rescaled = spec.with_scale(ExperimentScale.benchmark())
        assert rescaled.scale == ExperimentScale.benchmark()
        assert rescaled.arms == spec.arms

    @pytest.mark.parametrize("builder", [fig4_spec, fig5_spec, fig6_spec,
                                         fig7_spec, fig8_spec, fig9_spec])
    def test_figure_specs_round_trip(self, builder):
        spec = builder(ExperimentScale.smoke())
        assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_fig3_spec_round_trips(self):
        spec = fig3_spec(num_devices=3, samples_per_device=10,
                         learning_rates=(1.0, 100.0))
        assert ExperimentSpec.from_json(spec.to_json()) == spec
        assert [arm.label for arm in spec.arms] == ["c=1", "c=100"]


class TestExperimentScaleSerialization:
    def test_round_trip(self):
        scale = ExperimentScale.benchmark()
        assert ExperimentScale.from_dict(scale.to_dict()) == scale

    def test_named(self):
        assert ExperimentScale.named("smoke") == ExperimentScale.smoke()
        with pytest.raises(ValueError, match="unknown scale"):
            ExperimentScale.named("galactic")
