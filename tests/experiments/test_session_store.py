"""Tests of ExperimentSession + RunStore: caching, resume, refresh."""

import numpy as np
import pytest

from repro.experiments import (
    ArmSpec,
    ExperimentScale,
    ExperimentSession,
    ExperimentSpec,
    StoreStats,
)
import repro.experiments.session as session_mod
from repro.store import RunStore

TINY = ExperimentScale(num_train=300, num_test=100, num_devices=5,
                       num_trials=2, num_passes=1)


def tiny_spec(**overrides) -> ExperimentSpec:
    defaults = dict(
        name="tiny-store",
        dataset="mnist_like",
        scale=TINY,
        arms=(
            ArmSpec(label="crowd", schedule_kwargs={"constant": 30.0}),
            ArmSpec(label="sgd", kind="central_sgd", seed_offset=5,
                    schedule_kwargs={"constant": 30.0}),
        ),
        reference_arms=(ArmSpec(label="batch", kind="central_batch"),),
    )
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


def assert_identical(a, b):
    assert set(a.curves) == set(b.curves)
    for label in a.curves:
        assert np.array_equal(a.curves[label].iterations,
                              b.curves[label].iterations), label
        assert np.array_equal(a.curves[label].errors,
                              b.curves[label].errors), label
    assert a.reference_lines == b.reference_lines


@pytest.fixture
def store(tmp_path):
    return RunStore(str(tmp_path / "store"))


class TestStoreBackedRuns:
    def test_stored_results_match_storeless_run(self, store):
        spec = tiny_spec()
        reference = ExperimentSession().run(spec, seed=3)
        stored = ExperimentSession(store=store).run(spec, seed=3)
        assert_identical(reference, stored)

    def test_first_run_populates_the_store(self, store):
        session = ExperimentSession(store=store)
        session.run(tiny_spec(), seed=3)
        # 2 crowd trials + 1 sgd curve + 1 batch scalar + the figure.
        assert len(store) == 5
        assert session.store_stats == StoreStats(figure_hits=0,
                                                 task_hits=0,
                                                 task_misses=4)

    def test_second_run_executes_zero_tasks(self, store, monkeypatch):
        spec = tiny_spec()
        first = ExperimentSession(store=store).run(spec, seed=3)

        def explode(payload):
            raise AssertionError("a cached run must not execute tasks")

        monkeypatch.setattr(session_mod, "_execute_task", explode)
        session = ExperimentSession(store=store)
        second = session.run(spec, seed=3)
        assert session.store_stats.figure_hits == 1
        assert_identical(first, second)

    def test_task_level_resume_after_lost_figure(self, store):
        spec = tiny_spec()
        ExperimentSession(store=store).run(spec, seed=3)
        fig_manifest = store.query(result_type="figure_result")[0]
        store.backend.remove(fig_manifest["key"])

        session = ExperimentSession(store=store)
        resumed = session.run(spec, seed=3)
        assert session.store_stats.task_hits == 4
        assert session.store_stats.task_misses == 0
        assert_identical(ExperimentSession().run(spec, seed=3), resumed)
        # The figure entry was rebuilt from the cached tasks.
        assert len(store.query(result_type="figure_result")) == 1

    def test_task_level_resume_generates_no_datasets(self, store):
        spec = tiny_spec()
        ExperimentSession(store=store).run(spec, seed=3)
        store.backend.remove(store.query(result_type="figure_result")[0]["key"])

        session = ExperimentSession(store=store)
        session.run(spec, seed=3)
        # Every task came from the store, so the dataset request was
        # never materialized into arrays.
        assert session.dataset_cache.misses == 0
        assert session.dataset_cache.hits == 0

    def test_mixed_cache_and_fresh_is_bit_identical(self, store):
        spec = tiny_spec()
        ExperimentSession(store=store).run(spec, seed=3)
        # Drop the figure and one task: the next run mixes 3 cached
        # tasks with 1 freshly executed one.
        store.backend.remove(store.query(result_type="figure_result")[0]["key"])
        victim = store.query(result_type="error_curve")[0]
        store.backend.remove(victim["key"])

        session = ExperimentSession(store=store)
        mixed = session.run(spec, seed=3)
        assert session.store_stats.task_hits == 3
        assert session.store_stats.task_misses == 1
        assert_identical(ExperimentSession().run(spec, seed=3), mixed)

    def test_parallel_store_run_matches_serial(self, store, tmp_path):
        spec = tiny_spec()
        serial = ExperimentSession().run(spec, seed=2)
        parallel = ExperimentSession(max_workers=2, store=store).run(spec,
                                                                     seed=2)
        assert_identical(serial, parallel)
        # And a second parallel session resumes from the same store.
        again = ExperimentSession(max_workers=2, store=store)
        assert_identical(serial, again.run(spec, seed=2))
        assert again.store_stats.figure_hits == 1

    def test_different_seeds_do_not_collide(self, store):
        spec = tiny_spec()
        a = ExperimentSession(store=store).run(spec, seed=0)
        b = ExperimentSession(store=store).run(spec, seed=1)
        assert not np.array_equal(a.curves["crowd"].errors,
                                  b.curves["crowd"].errors)
        # Both figures are stored independently.
        assert len(store.query(result_type="figure_result")) == 2

    def test_label_rename_keeps_task_cache(self, store):
        spec = tiny_spec()
        ExperimentSession(store=store).run(spec, seed=3)
        renamed = tiny_spec(arms=(
            ArmSpec(label="crowd (renamed)",
                    schedule_kwargs={"constant": 30.0}),
            ArmSpec(label="sgd", kind="central_sgd", seed_offset=5,
                    schedule_kwargs={"constant": 30.0}),
        ))
        session = ExperimentSession(store=store)
        result = session.run(renamed, seed=3)
        # New figure key (labels are part of the spec), but every task
        # is content-identical and served from cache.
        assert session.store_stats.figure_hits == 0
        assert session.store_stats.task_hits == 4
        assert "crowd (renamed)" in result.curves


class TestRefresh:
    def test_refresh_recomputes_and_overwrites(self, store):
        spec = tiny_spec()
        first = ExperimentSession(store=store).run(spec, seed=3)
        stamps = {m["key"]: m["created_at"] for m in store.query()}

        session = ExperimentSession(store=store, refresh=True)
        second = session.run(spec, seed=3)
        assert session.store_stats.figure_hits == 0
        assert session.store_stats.task_hits == 0
        assert session.store_stats.task_misses == 4
        assert_identical(first, second)
        for manifest in store.query():
            assert manifest["created_at"] > stamps[manifest["key"]]


class TestManifestContext:
    def test_task_manifests_carry_experiment_context(self, store):
        ExperimentSession(store=store).run(tiny_spec(), seed=3)
        crowd = store.query(label="crowd")
        assert len(crowd) == 2
        assert {m["trial"] for m in crowd} == {0, 1}
        assert all(m["experiment"] == "tiny-store" for m in crowd)
        assert all(m["record"] == "task" for m in crowd)

    def test_figure_manifest_embeds_the_spec(self, store):
        spec = tiny_spec()
        ExperimentSession(store=store).run(spec, seed=3)
        manifest = store.query(result_type="figure_result")[0]
        assert manifest["record"] == "figure"
        assert manifest["seed"] == 3
        rebuilt = ExperimentSpec.from_dict(manifest["spec"])
        assert rebuilt == spec


class TestStorelessSessionsUnchanged:
    def test_no_store_attribute_traffic(self):
        session = ExperimentSession()
        assert session.store is None
        session.run(tiny_spec(), seed=0)
        assert session.store_stats == StoreStats()
