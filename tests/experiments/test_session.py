"""Tests of ExperimentSession: caching, parallelism, extensibility."""

import numpy as np
import pytest

from repro.experiments import (
    ArmSpec,
    DatasetCache,
    ExperimentScale,
    ExperimentSession,
    ExperimentSpec,
)
from repro.registry import DATASETS, MODELS
from repro.utils.exceptions import ConfigurationError

TINY = ExperimentScale(num_train=300, num_test=100, num_devices=5,
                       num_trials=2, num_passes=1)


def tiny_spec(**overrides) -> ExperimentSpec:
    defaults = dict(
        name="tiny",
        dataset="mnist_like",
        scale=TINY,
        arms=(
            ArmSpec(label="crowd", schedule_kwargs={"constant": 30.0}),
            ArmSpec(label="sgd", kind="central_sgd", seed_offset=5,
                    schedule_kwargs={"constant": 30.0}),
            ArmSpec(label="decentral", kind="decentralized", seed_offset=1,
                    schedule_kwargs={"constant": 30.0},
                    trainer_kwargs={"evaluation_devices": 3}),
        ),
        reference_arms=(ArmSpec(label="batch", kind="central_batch"),),
    )
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


class TestSerialExecution:
    def test_all_arm_kinds_produce_results(self):
        result = ExperimentSession().run(tiny_spec(), seed=0)
        assert set(result.curves) == {"crowd", "sgd", "decentral"}
        assert set(result.reference_lines) == {"batch"}
        for curve in result.curves.values():
            assert np.all((curve.errors >= 0.0) & (curve.errors <= 1.0))

    def test_reproducible(self):
        a = ExperimentSession().run(tiny_spec(), seed=4)
        b = ExperimentSession().run(tiny_spec(), seed=4)
        for k in a.curves:
            assert np.array_equal(a.curves[k].errors, b.curves[k].errors)
        assert a.reference_lines == b.reference_lines

    def test_seed_changes_results(self):
        a = ExperimentSession().run(tiny_spec(), seed=0)
        b = ExperimentSession().run(tiny_spec(), seed=1)
        assert not np.array_equal(a.curves["crowd"].errors,
                                  b.curves["crowd"].errors)

    def test_crowd_arm_requires_scale(self):
        spec = ExperimentSpec(name="x", dataset="mnist_like",
                              dataset_kwargs={"num_train": 100,
                                              "num_test": 50},
                              arms=(ArmSpec(label="crowd"),))
        with pytest.raises(ConfigurationError, match="scale"):
            ExperimentSession().run(spec, seed=0)

    def test_crowd_arm_rejects_non_sqrt_schedule(self):
        spec = tiny_spec(arms=(ArmSpec(label="crowd", schedule="constant"),))
        with pytest.raises(ConfigurationError, match="inverse_sqrt|schedule"):
            ExperimentSession().run(spec, seed=0)

    def test_missing_dataset_is_an_error(self):
        spec = ExperimentSpec(name="x", scale=TINY,
                              arms=(ArmSpec(label="crowd"),))
        with pytest.raises(ConfigurationError, match="dataset"):
            ExperimentSession().run(spec, seed=0)


class TestDatasetCache:
    def test_shared_across_arms(self):
        session = ExperimentSession()
        session.run(tiny_spec(), seed=0)
        # 4 arms → 5 tasks (2 crowd trials), one dataset: a single miss,
        # one hit per remaining task (materialization is per task, so
        # store-cached tasks never touch the dataset cache at all).
        assert session.dataset_cache.misses == 1
        assert session.dataset_cache.hits == 4

    def test_shared_across_runs(self):
        session = ExperimentSession()
        session.run(tiny_spec(), seed=0)
        misses = session.dataset_cache.misses
        session.run(tiny_spec(), seed=0)
        assert session.dataset_cache.misses == misses

    def test_distinct_seeds_miss(self):
        session = ExperimentSession()
        session.run(tiny_spec(), seed=0)
        session.run(tiny_spec(), seed=1)
        assert session.dataset_cache.misses == 2

    def test_injected_cache_is_used(self):
        cache = DatasetCache()
        ExperimentSession(dataset_cache=cache).run(tiny_spec(), seed=0)
        assert len(cache) == 1

    def test_list_valued_kwargs_are_cacheable(self):
        # JSON-authored specs can carry list/dict kwargs; the cache key
        # must stay hashable and hit on equal values.
        cache = DatasetCache()
        kwargs = {"weights": [0.5, 0.5], "num_train": 10}
        cache.split("mnist_like", {"num_train": 40, "num_test": 20,
                                   "seed": 0})
        DATASETS.register(
            "weighted", lambda weights, num_train: DATASETS.create(
                "mnist_like", num_train=num_train, num_test=20, seed=0))
        try:
            cache.split("weighted", kwargs)
            cache.split("weighted", {"num_train": 10,
                                     "weights": [0.5, 0.5]})
        finally:
            DATASETS.unregister("weighted")
        assert cache.misses == 2 and cache.hits == 1

    def test_returns_same_object(self):
        cache = DatasetCache()
        first = cache.split("mnist_like",
                            {"num_train": 60, "num_test": 30, "seed": 0})
        second = cache.split("mnist_like",
                             {"num_train": 60, "num_test": 30, "seed": 0})
        assert first[0] is second[0]


class TestParallelExecution:
    def test_parallel_matches_serial_bitwise(self):
        spec = tiny_spec()
        serial = ExperimentSession().run(spec, seed=2)
        parallel = ExperimentSession(max_workers=2).run(spec, seed=2)
        assert set(serial.curves) == set(parallel.curves)
        for k in serial.curves:
            assert np.array_equal(serial.curves[k].iterations,
                                  parallel.curves[k].iterations), k
            assert np.array_equal(serial.curves[k].errors,
                                  parallel.curves[k].errors), k
        assert serial.reference_lines == parallel.reference_lines

    def test_negative_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentSession(max_workers=-1)


class TestExtensibility:
    def test_custom_components_via_registry(self):
        DATASETS.register(
            "tiny_blobs",
            lambda num_train, num_test, seed: DATASETS.create(
                "mnist_like", num_train=num_train, num_test=num_test,
                seed=seed),
        )
        MODELS.register(
            "my_logistic",
            lambda num_features, num_classes, l2_regularization=0.0:
                MODELS.create("logistic", num_features=num_features,
                              num_classes=num_classes,
                              l2_regularization=l2_regularization),
        )
        try:
            spec = tiny_spec(
                dataset="tiny_blobs",
                arms=(ArmSpec(label="crowd", model="my_logistic",
                              schedule_kwargs={"constant": 30.0}),),
                reference_arms=(),
            )
            result = ExperimentSession().run(spec, seed=0)
            assert "crowd" in result.curves
        finally:
            DATASETS.unregister("tiny_blobs")
            MODELS.unregister("my_logistic")
