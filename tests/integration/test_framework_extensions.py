"""Integration tests of the framework's extension points: alternative
models (SVM, ridge), optimizers (AdaGrad — Remark 3), non-i.i.d. data,
and outage resilience."""

import numpy as np
import pytest

from repro.core import CrowdMLServer, Device, DeviceConfig, ServerConfig
from repro.core.protocol import CheckoutRequest
from repro.data import (
    Dataset,
    dirichlet_partition,
    iid_partition,
    make_mnist_like,
)
from repro.models import (
    MulticlassLinearSVM,
    MulticlassLogisticRegression,
    RidgeRegression,
)
from repro.network import BernoulliOutage
from repro.optim import AdaGrad, L2BallProjection
from repro.simulation import CrowdSimulator, SimulationConfig, run_crowd_trials


@pytest.fixture(scope="module")
def data():
    return make_mnist_like(num_train=2000, num_test=600, seed=0)


class TestAlternativeModels:
    def test_svm_crowd_learning(self, data):
        """The framework is model-agnostic: hinge loss plugs straight in."""
        train, test = data
        config = SimulationConfig(
            num_devices=20, num_passes=3, learning_rate_constant=30.0,
        )
        report = run_crowd_trials(
            lambda: MulticlassLinearSVM(50, 10, l2_regularization=1e-4),
            train, test, config, num_trials=1,
        )
        assert report.final_error < 0.35

    def test_ridge_device_server_roundtrip(self, rng):
        """Regression targets flow through the same protocol."""
        model = RidgeRegression(num_features=3, residual_bound=2.0)
        server = CrowdMLServer(model, config=ServerConfig(max_iterations=1000))
        token = server.register_device(0)
        config = DeviceConfig.default(batch_size=5, num_classes=1, epsilon=2.0)
        device = Device(0, model, config, token, rng)
        true_w = np.array([0.3, -0.2, 0.1])
        for step in range(200):
            x = rng.normal(size=3)
            x /= np.abs(x).sum()
            y = float(x @ true_w)
            if device.observe(x, y):
                device.mark_checkout_requested()
                response = server.handle_checkout(
                    CheckoutRequest(0, token, float(step))
                )
                result = device.complete_checkout(
                    response.parameters, response.server_iteration
                )
                server.handle_checkin(result.message)
        assert server.iteration > 10


class TestRemark3Optimizers:
    def test_adagrad_server(self, data):
        """Swapping the server update (Remark 3) needs no device change."""
        train, test = data
        model = MulticlassLogisticRegression(50, 10)
        parts = iid_partition(train, 20, np.random.default_rng(0))
        optimizer = AdaGrad(
            model.init_parameters(), constant=0.5,
            projection=L2BallProjection(100.0),
        )
        server = CrowdMLServer(model, optimizer,
                               ServerConfig(max_iterations=10**9))
        # Drive manually through the simulator's plumbing, replacing the
        # server: simplest is a fresh simulator with its own SGD, so here we
        # instead exercise AdaGrad directly against device gradients.
        token = server.register_device(0)
        config = DeviceConfig.default(batch_size=10, num_classes=10)
        device = Device(0, model, config, token, np.random.default_rng(1))
        consumed = 0
        for x, y in parts[0].samples():
            if device.observe(x, y):
                device.mark_checkout_requested()
                response = server.handle_checkout(CheckoutRequest(0, token, 0.0))
                result = device.complete_checkout(
                    response.parameters, response.server_iteration
                )
                server.handle_checkin(result.message)
                consumed += result.message.num_samples
        assert consumed > 0
        from repro.evaluation import test_error

        assert test_error(model, server.parameters, test) < 0.6


class TestNonIidData:
    def test_dirichlet_skew_still_learns(self, data):
        """Crowd-ML pools gradients, so label-skewed devices still produce
        a global model (unlike the decentralized approach)."""
        train, test = data
        config = SimulationConfig(
            num_devices=20, num_passes=3, learning_rate_constant=30.0,
        )
        report = run_crowd_trials(
            lambda: MulticlassLogisticRegression(50, 10),
            train, test, config, num_trials=2,
            partition=lambda ds, m, rng: dirichlet_partition(ds, m, rng, alpha=0.1),
        )
        assert report.tail_error() < 0.35


class TestOutageResilience:
    def test_heavy_outage_degrades_gracefully(self, data):
        train, test = data

        def run(drop):
            config = SimulationConfig(
                num_devices=20, num_passes=3, learning_rate_constant=30.0,
                outage=BernoulliOutage(drop),
            )
            return run_crowd_trials(
                lambda: MulticlassLogisticRegression(50, 10),
                train, test, config, num_trials=1,
            )

        clean = run(0.0)
        lossy = run(0.4)
        # Remark 1: failures are non-critical — learning completes, with at
        # most a modest accuracy penalty.
        assert lossy.final_error < clean.final_error + 0.15
