"""Integration test of the Fig. 3 activity-recognition pipeline:
7 devices, 3-class logistic regression, online time-averaged error."""

import numpy as np
import pytest

from repro.data import NUM_ACTIVITIES, make_activity_stream
from repro.models import MulticlassLogisticRegression
from repro.simulation import CrowdSimulator, SimulationConfig


@pytest.fixture(scope="module")
def device_streams():
    """Seven per-device streams of label-change-triggered samples."""
    return [
        make_activity_stream(45, np.random.default_rng(100 + d)) for d in range(7)
    ]


class TestFig3Pipeline:
    def test_seven_devices_learn_common_classifier(self, device_streams):
        test = make_activity_stream(200, np.random.default_rng(999))
        model = MulticlassLogisticRegression(64, NUM_ACTIVITIES)
        config = SimulationConfig(
            num_devices=7,
            batch_size=1,
            learning_rate_constant=1.0,
            l2_regularization=0.0,
        )
        simulator = CrowdSimulator(model, device_streams, test, config, seed=0)
        trace = simulator.run()
        assert trace.total_samples_consumed == 7 * 45

        averaged = trace.time_averaged_error()
        assert averaged.shape[0] == 7 * 45
        # Fig. 3: the curve converges fast and ends well below chance (2/3).
        assert averaged[-1] < 0.55

    def test_different_learning_rates_converge_similarly(self, device_streams):
        """Fig. 3's observation: curves for very different c are similar."""
        test = make_activity_stream(100, np.random.default_rng(998))
        finals = []
        for c in (1e-4, 1e-2, 1e0):
            model = MulticlassLogisticRegression(64, NUM_ACTIVITIES)
            config = SimulationConfig(
                num_devices=7, batch_size=1, learning_rate_constant=c,
            )
            trace = CrowdSimulator(model, device_streams, test, config, seed=0).run()
            finals.append(trace.time_averaged_error()[-1])
        # All rates land in a similar band (no divergence anywhere).
        assert max(finals) - min(finals) < 0.35
        assert all(f < 0.67 for f in finals)
