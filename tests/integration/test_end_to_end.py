"""End-to-end integration tests reproducing the figures' qualitative shape
at reduced scale (full-scale regeneration lives in benchmarks/)."""

import math

import numpy as np
import pytest

from repro.baselines import (
    CentralizedBatchTrainer,
    CentralizedSGDTrainer,
    DecentralizedTrainer,
)
from repro.data import iid_partition, make_mnist_like
from repro.models import MulticlassLogisticRegression
from repro.optim import InverseSqrtRate
from repro.privacy import CentralizedBudget
from repro.simulation import SimulationConfig, run_crowd_trials

LEARNING_RATE = 30.0
L2 = 1e-4


@pytest.fixture(scope="module")
def data():
    return make_mnist_like(num_train=4000, num_test=1000, seed=0)


def model_factory():
    from repro.data import MNIST_CLASSES, MNIST_DIM

    return MulticlassLogisticRegression(MNIST_DIM, MNIST_CLASSES, l2_regularization=L2)


@pytest.fixture(scope="module")
def batch_error(data):
    train, test = data
    return CentralizedBatchTrainer(model_factory()).evaluate(
        train, test, np.random.default_rng(0)
    )


class TestFig4Shape:
    """Crowd-ML ties centralized batch; decentralized plateaus far above."""

    def test_crowd_matches_central_batch(self, data, batch_error):
        train, test = data
        config = SimulationConfig(
            num_devices=50, num_passes=3, learning_rate_constant=LEARNING_RATE,
            l2_regularization=L2,
        )
        report = run_crowd_trials(model_factory, train, test, config, num_trials=2)
        assert report.tail_error() <= batch_error + 0.05

    def test_decentralized_much_worse(self, data, batch_error):
        train, test = data
        parts = iid_partition(train, 60, np.random.default_rng(0))  # ~66/device
        trainer = DecentralizedTrainer(
            model_factory(), InverseSqrtRate(LEARNING_RATE), evaluation_devices=10
        )
        result = trainer.fit(parts, test, np.random.default_rng(1), num_passes=3)
        assert result.curve.final_error > batch_error + 0.15

    def test_crowd_error_decreases_over_time(self, data):
        train, test = data
        config = SimulationConfig(
            num_devices=50, num_passes=2, learning_rate_constant=LEARNING_RATE,
        )
        report = run_crowd_trials(model_factory, train, test, config, num_trials=1)
        curve = report.mean_curve
        assert curve.errors[-1] < curve.errors[0]


class TestFig5Shape:
    """At ε⁻¹ = 0.1: Crowd-ML degrades gracefully and improves with b;
    input-perturbed central SGD is near-useless."""

    EPSILON = 10.0  # ε⁻¹ = 0.1

    def test_crowd_b20_beats_private_central_batch(self, data):
        train, test = data
        private_batch = CentralizedBatchTrainer(
            model_factory(), budget=CentralizedBudget.even_split(self.EPSILON)
        ).evaluate(train, test, np.random.default_rng(0))
        config = SimulationConfig(
            num_devices=50, batch_size=20, epsilon=self.EPSILON, num_passes=4,
            learning_rate_constant=LEARNING_RATE, l2_regularization=L2,
        )
        report = run_crowd_trials(model_factory, train, test, config, num_trials=2)
        assert report.tail_error() < private_batch - 0.2

    def test_crowd_improves_with_batch_size(self, data):
        train, test = data

        def tail(b):
            config = SimulationConfig(
                num_devices=50, batch_size=b, epsilon=self.EPSILON, num_passes=4,
                learning_rate_constant=LEARNING_RATE, l2_regularization=L2,
            )
            return run_crowd_trials(
                model_factory, train, test, config, num_trials=2
            ).tail_error()

        assert tail(20) < tail(1) - 0.1

    def test_central_sgd_with_perturbed_inputs_useless(self, data):
        train, test = data
        trainer = CentralizedSGDTrainer(
            model_factory(),
            InverseSqrtRate(LEARNING_RATE),
            batch_size=10,
            budget=CentralizedBudget.even_split(self.EPSILON),
        )
        result = trainer.fit(train, test, np.random.default_rng(0), num_passes=2)
        assert result.curve.tail_error() > 0.6  # paper shows ~0.9


class TestFig6Shape:
    """Delays hurt b=1 but barely touch b=20."""

    EPSILON = 10.0

    def _tail(self, data, batch_size, delay_multiples, num_trials=2):
        from repro.network import LinkDelays

        train, test = data
        config = SimulationConfig(
            num_devices=50,
            batch_size=batch_size,
            epsilon=self.EPSILON,
            num_passes=4,
            learning_rate_constant=LEARNING_RATE,
            l2_regularization=L2,
        )
        tau = config.delay_in_sample_units(delay_multiples)
        config = SimulationConfig(
            num_devices=50,
            batch_size=batch_size,
            epsilon=self.EPSILON,
            num_passes=4,
            learning_rate_constant=LEARNING_RATE,
            l2_regularization=L2,
            link_delays=LinkDelays.uniform(tau),
        )
        return run_crowd_trials(
            model_factory, train, test, config, num_trials=num_trials
        ).tail_error()

    def test_large_delay_tolerable_with_b20(self, data):
        quiet = self._tail(data, batch_size=20, delay_multiples=1)
        loud = self._tail(data, batch_size=20, delay_multiples=1000)
        assert loud <= quiet + 0.12

    def test_b20_with_huge_delay_still_learns(self, data):
        assert self._tail(data, batch_size=20, delay_multiples=1000) < 0.5
