"""Smoke tests of the figure-experiment definitions (full runs live in
benchmarks/)."""

import numpy as np
import pytest

from repro.experiments import (
    ExperimentScale,
    FigureResult,
    run_fig3_experiment,
    run_fig4_experiment,
)


class TestScales:
    def test_paper_scale_matches_section_vc(self):
        scale = ExperimentScale.paper()
        assert scale.num_train == 60_000
        assert scale.num_test == 10_000
        assert scale.num_devices == 1000
        assert scale.num_trials == 10
        assert scale.num_passes == 5

    def test_benchmark_preserves_samples_per_device(self):
        paper = ExperimentScale.paper()
        bench = ExperimentScale.benchmark()
        assert bench.num_train / bench.num_devices == pytest.approx(
            paper.num_train / paper.num_devices
        )


class TestFig3Smoke:
    def test_returns_curves_per_learning_rate(self):
        result = run_fig3_experiment(
            num_devices=3, samples_per_device=10, learning_rates=(1.0, 100.0)
        )
        assert isinstance(result, FigureResult)
        assert set(result.curves) == {"c=1", "c=100"}
        for curve in result.curves.values():
            assert len(curve) == 30  # one point per online sample

    def test_format_table_renders(self):
        result = run_fig3_experiment(num_devices=2, samples_per_device=5,
                                     learning_rates=(1.0,))
        table = result.format_table()
        assert "Fig. 3" in table
        assert "c=1" in table


class TestFig4Smoke:
    def test_all_arms_present(self):
        result = run_fig4_experiment(ExperimentScale.smoke())
        assert "Crowd-ML (SGD)" in result.curves
        assert "Decentral (SGD)" in result.curves
        assert "Central (batch)" in result.reference_lines

    def test_tail_errors_accessor(self):
        result = run_fig4_experiment(ExperimentScale.smoke())
        tails = result.tail_errors()
        assert set(tails) == set(result.curves)
        assert all(0.0 <= v <= 1.0 for v in tails.values())
