"""Property test: snapshot → restore is the identity on live cores.

Hypothesis drives a random traffic history — device mix, message count,
sequence tagging, replays, an optional accountant — then checks that the
restored core is observably identical to the live one **and stays
identical** under continued shared traffic (the stronger claim: the two
state machines are the same point in state space, not merely equal on
the compared fields).
"""

from __future__ import annotations

import json

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.persist import core_states_equal, describe_mismatch, restore_core, snapshot_core
from repro.privacy.accountant import PrivacyAccountant
from repro.privacy.mechanism import ReleaseRecord

from tests.persist.conftest import make_core, make_message, make_model

RELEASES = (
    ReleaseRecord(epsilon=0.25, mechanism="laplace", sensitivity=2.0),
    ReleaseRecord(epsilon=0.125, mechanism="dlap"),
)


def apply_traffic(core, tokens, rng, steps, tag, replay_every, next_seq):
    """Apply ``steps`` check-ins, replaying every ``replay_every``-th one."""
    last_applied = {}
    for i in range(steps):
        device_id = i % len(tokens)
        if (tag and replay_every and (i + 1) % replay_every == 0
                and device_id in last_applied):
            core.handle_checkin(last_applied[device_id])  # a replay
            continue
        seq = -1
        if tag:
            seq = next_seq[device_id]
            next_seq[device_id] += 1
        message = make_message(
            core, device_id, tokens[device_id], rng, seq=seq,
            releases=RELEASES if core.accountant is not None else (),
        )
        core.handle_checkin(message)
        last_applied[device_id] = message


@given(
    seed=st.integers(0, 2**32 - 1),
    num_devices=st.integers(1, 3),
    steps=st.integers(0, 12),
    tag=st.booleans(),
    replay_every=st.sampled_from([0, 3]),
    with_accountant=st.booleans(),
    revoke=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_restore_is_identity_on_random_histories(
    seed, num_devices, steps, tag, replay_every, with_accountant, revoke
):
    rng = np.random.default_rng(seed)
    core = make_core(
        accountant=PrivacyAccountant() if with_accountant else None
    )
    tokens = {i: core.register_device(i) for i in range(num_devices)}
    next_seq = dict.fromkeys(tokens, 0)
    apply_traffic(core, tokens, rng, steps, tag, replay_every, next_seq)
    if revoke and num_devices > 1:
        core.registry.revoke(num_devices - 1)

    # Through the JSON wire form — exactly what a checkpoint file holds.
    restored = restore_core(
        json.loads(json.dumps(snapshot_core(core))), make_model()
    )
    assert describe_mismatch(core, restored) is None
    assert core_states_equal(core, restored)

    # Continued shared traffic: both cores answer identically, step for
    # step, and end in the same state.
    follow = np.random.default_rng(seed ^ 0xA5A5A5)
    live = tokens[0]
    for i in range(4):
        seq = next_seq[0] + i if tag else -1
        message = make_message(core, 0, live, follow, seq=seq)
        assert core.handle_checkin(message) == restored.handle_checkin(message)
    assert core_states_equal(core, restored)
