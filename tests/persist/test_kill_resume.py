"""Crash-resume against a real ``repro-serve`` subprocess.

The durability headline, in deterministic form: a server is SIGKILLed
between check-ins (no handlers, no flush), restarted from its state
dir, and the run's final parameters are **bit-identical** to an
in-process :class:`ServerCore` fed the same messages.  The racing
variant (SIGKILL mid-traffic from a watchdog thread) lives in
``examples/durable_round.py``, which CI runs.
"""

from __future__ import annotations

import os
import socket

import numpy as np
import pytest

from repro.persist import ServeProcess, SnapshotStore, restore_core
from repro.serve.client import ServiceClient

from tests.persist.conftest import DIM, CLASSES, make_core, make_message, make_model


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def serve_env() -> dict:
    env = dict(os.environ)
    repo_src = os.path.join(
        os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
        "src",
    )
    env["PYTHONPATH"] = repo_src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def durable_server(state_dir: str, port: int) -> ServeProcess:
    return ServeProcess([
        "--port", str(port),
        "--num-features", str(DIM),
        "--num-classes", str(CLASSES),
        "--learning-rate-constant", "0.5",
        "--projection-radius", "10.0",
        "--state-dir", state_dir,
        "--checkpoint-every", "1",
    ], env=serve_env())


@pytest.fixture
def server(tmp_path):
    process = durable_server(str(tmp_path / "state"), free_port())
    process.start()
    yield process
    process.stop()


def make_client(url: str) -> ServiceClient:
    return ServiceClient(url, timeout=15.0, retries=8,
                         backoff=0.02, backoff_max=0.2)


def test_sigkill_resume_is_bit_identical(server, traffic_rng):
    client = make_client(server.url)
    reference = make_core()  # same construction as the CLI's
    tokens = {}
    for device_id in range(2):
        token, last_seq = client.join_info(device_id)
        assert last_seq == -1
        assert token == reference.register_device(device_id)
        tokens[device_id] = token

    seqs = dict.fromkeys(tokens, 0)

    def send_round():
        device_id = (seqs[0] + seqs[1]) % 2
        message = make_message(reference, device_id, tokens[device_id],
                               traffic_rng, seq=seqs[device_id])
        seqs[device_id] += 1
        ack = client.checkins([message]).acks[0]
        assert ack is not None and not ack.duplicate
        reference.handle_checkin(message)

    for _ in range(8):
        send_round()
    server.sigkill()  # no handlers, no flush — the crash under test
    server.start()
    for _ in range(8):
        send_round()

    status = client.status(include_parameters=True)
    assert status.iteration == 16 == reference.iteration
    assert np.array_equal(status.parameters, reference.parameters)
    assert status.duplicates_suppressed == 0
    assert server.kills == 1
    assert server.terminate() == 0


def test_rejoin_after_resume_seeds_sequence_numbers(server, traffic_rng):
    client = make_client(server.url)
    reference = make_core()
    token, _ = client.join_info(0)
    reference.register_device(0)
    for seq in range(3):
        message = make_message(reference, 0, token, traffic_rng, seq=seq)
        client.checkins([message])
        reference.handle_checkin(message)
    server.sigkill()
    server.start()
    # A fresh client enrolls anew: the join response tells it where the
    # resumed server's ledger stands, so its numbering cannot collide.
    rejoin = make_client(server.url)
    token2, last_seq = rejoin.join_info(0)
    assert token2 == token
    assert last_seq == 2
    message = make_message(reference, 0, token, traffic_rng, seq=last_seq + 1)
    ack = rejoin.checkins([message]).acks[0]
    assert ack is not None and not ack.duplicate
    reference.handle_checkin(message)
    status = rejoin.status(include_parameters=True)
    assert status.iteration == 4
    assert np.array_equal(status.parameters, reference.parameters)


def test_graceful_sigterm_flushes_final_snapshot(tmp_path, traffic_rng):
    state_dir = str(tmp_path / "state")
    server = durable_server(state_dir, free_port())
    server.start()
    try:
        client = make_client(server.url)
        reference = make_core()
        token, _ = client.join_info(0)
        reference.register_device(0)
        for seq in range(3):
            message = make_message(reference, 0, token, traffic_rng, seq=seq)
            client.checkins([message])
            reference.handle_checkin(message)
        assert server.terminate() == 0  # clean: drained + flushed
    finally:
        server.stop()
    loaded, _ = SnapshotStore(state_dir).load_latest()
    restored = restore_core(loaded, make_model())
    assert restored.iteration == 3
    assert np.array_equal(restored.parameters, reference.parameters)
    assert restored.applied_checkin_seq(0) == 2


def test_torn_snapshot_falls_back_and_retry_heals(tmp_path, traffic_rng):
    state_dir = str(tmp_path / "state")
    server = durable_server(state_dir, free_port())
    server.start()
    try:
        client = make_client(server.url)
        reference = make_core()
        token, _ = client.join_info(0)
        reference.register_device(0)
        messages = [
            make_message(reference, 0, token, traffic_rng, seq=seq)
            for seq in range(5)
        ]
        for message in messages:
            client.checkins([message])
        server.sigkill()

        # Tear the newest snapshot: the resume must fall back to the
        # previous one (iteration 4), not start over or crash.
        store = SnapshotStore(state_dir)
        newest = store.snapshot_paths()[0]
        assert newest.endswith("snapshot-000000000005.json")
        with open(newest) as handle:
            content = handle.read()
        with open(newest, "w") as handle:
            handle.write(content[: len(content) // 2])
        del store  # release the fcntl lock before the server takes it

        server.start()
        client = make_client(server.url)
        assert client.status().iteration == 4

        # The client never saw seq 4's ack as durable — its retry of the
        # exact same message is applied once, landing the run back on
        # the reference trajectory bit for bit.
        ack = client.checkins([messages[4]]).acks[0]
        assert ack is not None and not ack.duplicate
        for message in messages:
            reference.handle_checkin(message)
        status = client.status(include_parameters=True)
        assert status.iteration == 5
        assert np.array_equal(status.parameters, reference.parameters)
    finally:
        server.stop()


def test_fresh_state_dir_is_primed_before_traffic(tmp_path):
    state_dir = str(tmp_path / "state")
    server = durable_server(state_dir, free_port())
    server.start()
    try:
        # Crash before any check-in: the priming checkpoint (written at
        # build time) still resumes the exact initial task state.
        server.sigkill()
        assert SnapshotStore(state_dir).load_latest() is not None
        server.start()
        client = make_client(server.url)
        assert client.status().iteration == 0
        token, last_seq = client.join_info(0)
        assert last_seq == -1 and token
    finally:
        server.stop()


def test_unusable_state_dir_refuses_to_start(tmp_path, capsys):
    from repro.serve.cli import main

    state_dir = tmp_path / "state"
    (state_dir / "snapshots").mkdir(parents=True)
    with open(state_dir / "snapshots" / "snapshot-000000000001.json", "w") as f:
        f.write("{ garbage")
    code = main([
        "--port", "0", "--num-features", str(DIM), "--num-classes", str(CLASSES),
        "--state-dir", str(state_dir),
    ])
    assert code == 2
    assert "repro-serve:" in capsys.readouterr().err
