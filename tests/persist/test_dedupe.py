"""Sequence-number dedupe on :class:`ServerCore` (Remark 1, exactly-once).

A retry-capable client stamps each check-in with a per-device monotone
``checkin_seq``; the server's ledger answers replays of already-applied
messages with the original ack instead of a second update.  These tests
pin that contract on every endpoint that applies check-ins.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.protocol import CheckoutRequest

from tests.persist.conftest import make_core, make_message


@pytest.fixture
def core_and_token():
    core = make_core()
    return core, core.register_device(0)


def test_replay_returns_original_ack_without_reapplying(
    core_and_token, traffic_rng
):
    core, token = core_and_token
    message = make_message(core, 0, token, traffic_rng, seq=0)
    first = core.handle_checkin(message)
    assert first.checkin_seq == 0 and not first.duplicate
    state_before = core.parameters.tobytes()

    replay = core.handle_checkin(message)
    assert replay.duplicate
    assert replay.server_iteration == first.server_iteration
    assert replay.checkin_seq == 0
    assert core.iteration == 1
    assert core.parameters.tobytes() == state_before
    assert core.duplicates_suppressed == 1
    assert core.monitor.num_checkins == 1  # stats not double-counted either


def test_stale_lower_seq_also_suppressed(core_and_token, traffic_rng):
    core, token = core_and_token
    for seq in range(3):
        core.handle_checkin(make_message(core, 0, token, traffic_rng, seq=seq))
    stale = make_message(core, 0, token, traffic_rng, seq=0)
    ack = core.handle_checkin(stale)
    assert ack.duplicate
    # The echoed iteration is the *newest* applied check-in's — exact
    # for an immediate retry of the last message, a safe answer for
    # anything older (the device already moved on).
    assert ack.server_iteration == 3
    assert core.iteration == 3


def test_untagged_messages_never_tracked(core_and_token, traffic_rng):
    core, token = core_and_token
    message = make_message(core, 0, token, traffic_rng)  # seq = -1
    core.handle_checkin(message)
    core.handle_checkin(message)  # the historical path: applies again
    assert core.iteration == 2
    assert core.duplicates_suppressed == 0
    assert core.applied_checkin_seq(0) == -1


def test_ledger_is_per_device(traffic_rng):
    core = make_core()
    tokens = {i: core.register_device(i) for i in range(2)}
    core.handle_checkin(make_message(core, 0, tokens[0], traffic_rng, seq=0))
    # Device 1 using seq 0 is fresh traffic, not a replay of device 0's.
    ack = core.handle_checkin(make_message(core, 1, tokens[1], traffic_rng, seq=0))
    assert not ack.duplicate
    assert core.iteration == 2
    assert core.applied_checkin_seq(0) == 0
    assert core.applied_checkin_seq(1) == 0
    assert core.applied_checkin_seq(2) == -1


def test_batch_replay_consumes_no_iteration_budget(traffic_rng):
    # One iteration of budget left; the batch is [replay, fresh]: the
    # replay must not eat the slot the fresh message needs.
    core = make_core(max_iterations=2)
    token = core.register_device(0)
    applied = make_message(core, 0, token, traffic_rng, seq=0)
    core.handle_checkin(applied)
    fresh = make_message(core, 0, token, traffic_rng, seq=1)
    acks = core.handle_checkins([applied, fresh])
    assert acks[0] is not None and acks[0].duplicate
    assert acks[1] is not None and not acks[1].duplicate
    assert core.iteration == 2
    assert core.duplicates_suppressed == 1


def test_serve_round_replay_path(traffic_rng):
    core = make_core()
    token = core.register_device(0)
    applied = make_message(core, 0, token, traffic_rng, seq=0)
    core.handle_checkin(applied)
    request = CheckoutRequest(device_id=0, token=token, request_time=0.0)
    outcome = core.serve_round([request], lambda response: applied)
    assert outcome.acks[0].duplicate
    assert core.iteration == 1
    assert core.duplicates_suppressed == 1


def test_rejections_not_confused_with_replays(core_and_token, traffic_rng):
    core, token = core_and_token
    message = make_message(core, 0, token, traffic_rng, seq=0)
    core.handle_checkin(message)
    bad = make_message(core, 0, "wrong-token", traffic_rng, seq=0)
    with pytest.raises(Exception):
        core.handle_checkin(bad)
    assert core.rejected_messages == 1
    assert core.duplicates_suppressed == 0  # auth precedes the ledger


def test_counters_state_roundtrip(traffic_rng):
    core = make_core()
    tokens = {i: core.register_device(i) for i in range(2)}
    for seq in range(3):
        for device_id in tokens:
            message = make_message(core, device_id, tokens[device_id],
                                   traffic_rng, seq=seq)
            core.handle_checkin(message)
            if seq == 1:
                core.handle_checkin(message)  # one replay each

    state = core.counters_state()
    assert state["duplicates_suppressed"] == 2
    twin = make_core()
    for device_id in tokens:
        twin.register_device(device_id)
    twin.restore_counters(state)
    assert twin.counters_state() == state
    assert twin.applied_checkin_seq(0) == core.applied_checkin_seq(0)
    # JSON-shaped keys (strings) restore too — the snapshot wire form.
    import json

    twin.restore_counters(json.loads(json.dumps(state)))
    assert twin.counters_state() == state


def test_replayed_ack_iteration_survives_restore(traffic_rng):
    core = make_core()
    token = core.register_device(0)
    message = make_message(core, 0, token, traffic_rng, seq=0)
    original = core.handle_checkin(message)
    core.handle_checkin(make_message(core, 0, token, traffic_rng, seq=1))

    twin = make_core()
    twin.register_device(0)
    twin.restore_counters(core.counters_state())
    # The twin never saw the traffic, but its restored ledger answers
    # the replay of seq 0 with an ack (duplicate, iteration as recorded
    # for the device's newest applied message).
    ack = twin._replay_ack(message)
    assert ack is not None and ack.duplicate
    assert ack.server_iteration == 2
    assert original.server_iteration == 1
