"""SnapshotStore retention pruning under concurrent writers.

The store's fcntl lock is per-open-descriptor, so two store handles in
one process contend exactly like two processes.  The invariants under
concurrent write+prune:

* a reader's ``load_latest`` never fails and never goes backwards,
* pruning converges to the newest ``retain`` files,
* no torn file is ever visible under a real snapshot name.
"""

import copy
import threading

import pytest

from repro.persist import SnapshotStore, snapshot_core

from tests.persist.conftest import make_core

RETAIN = 3
WRITES_PER_WRITER = 25


@pytest.fixture
def base_snapshot():
    return snapshot_core(make_core())


def at_iteration(base: dict, iteration: int) -> dict:
    snapshot = copy.deepcopy(base)
    snapshot["optimizer"]["iteration"] = iteration
    return snapshot


def test_reader_is_monotonic_under_concurrent_writers(tmp_path, base_snapshot):
    # Two writer handles on the same dir (per-fd locks → real contention),
    # interleaved iteration numbers so both keep producing "newest" files.
    writers = [SnapshotStore(str(tmp_path), retain=RETAIN) for _ in range(2)]
    reader = SnapshotStore(str(tmp_path), retain=RETAIN)
    errors = []

    def write_stream(store: SnapshotStore, offset: int):
        try:
            for step in range(WRITES_PER_WRITER):
                store.write(at_iteration(base_snapshot, offset + 2 * step))
        except Exception as error:  # noqa: BLE001 - collected for the assert
            errors.append(error)

    threads = [
        threading.Thread(target=write_stream, args=(store, offset))
        for store, offset in zip(writers, (0, 1))
    ]
    for thread in threads:
        thread.start()

    seen = -1
    while any(thread.is_alive() for thread in threads):
        loaded = reader.load_latest()
        if loaded is None:
            continue  # nothing durable yet
        snapshot, _ = loaded
        iteration = snapshot["optimizer"]["iteration"]
        assert iteration >= seen, "load_latest went backwards"
        seen = iteration
    for thread in threads:
        thread.join()

    assert not errors, errors
    # Convergence: newest file is the globally newest write, retention
    # kept exactly the newest RETAIN files, and every survivor is valid.
    final, path = reader.load_latest()
    top = 2 * (WRITES_PER_WRITER - 1) + 1
    assert final["optimizer"]["iteration"] == top
    survivors = reader.snapshot_paths()
    assert len(survivors) == RETAIN
    for survivor in survivors:
        assert reader._load_one(survivor) is not None


def test_prune_never_removes_the_write_it_rides_on(tmp_path, base_snapshot):
    # retain=1 is the harshest pruning; the just-written snapshot must
    # always survive its own prune even when it is not the newest name.
    store = SnapshotStore(str(tmp_path), retain=1)
    store.write(at_iteration(base_snapshot, 10))
    path = store.write(at_iteration(base_snapshot, 5))  # older than 10
    assert path in store.snapshot_paths()
    snapshot, newest = store.load_latest()
    assert snapshot["optimizer"]["iteration"] == 10
