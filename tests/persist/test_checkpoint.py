"""Checkpoint policy, atomic snapshot store, and torn-file fallback."""

from __future__ import annotations

import json
import os

import pytest

from repro.persist import (
    STATE_FORMAT,
    Checkpointer,
    CheckpointPolicy,
    SnapshotError,
    SnapshotStore,
    core_states_equal,
    restore_core,
    snapshot_core,
)

from tests.persist.conftest import make_core, make_message, make_model


def advance(core, tokens, rng, updates=1):
    for _ in range(updates):
        device_id = core.iteration % len(tokens)
        core.handle_checkin(make_message(core, device_id, tokens[device_id], rng))


@pytest.fixture
def core_and_tokens(traffic_rng):
    core = make_core()
    tokens = {i: core.register_device(i) for i in range(2)}
    return core, tokens


# --------------------------------------------------------------------- #
# policy                                                                #
# --------------------------------------------------------------------- #


def test_policy_never_fires_without_new_updates():
    policy = CheckpointPolicy(every_n_updates=1, every_seconds=0.001)
    assert not policy.due(iteration=5, last_iteration=5, now=100.0, last_time=0.0)


def test_policy_count_trigger():
    policy = CheckpointPolicy(every_n_updates=3, every_seconds=None)
    assert not policy.due(5, 3, now=0.0, last_time=0.0)
    assert policy.due(6, 3, now=0.0, last_time=0.0)


def test_policy_time_trigger():
    policy = CheckpointPolicy(every_n_updates=None, every_seconds=10.0)
    assert not policy.due(6, 5, now=9.0, last_time=0.0)
    assert policy.due(6, 5, now=10.0, last_time=0.0)


def test_policy_fully_disabled_only_forced():
    policy = CheckpointPolicy(every_n_updates=None, every_seconds=None)
    assert not policy.due(100, 0, now=1e9, last_time=0.0)


@pytest.mark.parametrize("kwargs", [
    {"every_n_updates": 0},
    {"every_n_updates": -2},
    {"every_seconds": 0.0},
    {"every_seconds": -1.0},
])
def test_policy_validation(kwargs):
    with pytest.raises(ValueError):
        CheckpointPolicy(**kwargs)


# --------------------------------------------------------------------- #
# store                                                                 #
# --------------------------------------------------------------------- #


def test_store_roundtrip(tmp_path, core_and_tokens, traffic_rng):
    core, tokens = core_and_tokens
    advance(core, tokens, traffic_rng, updates=3)
    store = SnapshotStore(str(tmp_path / "state"))
    path = store.write(snapshot_core(core))
    assert os.path.basename(path) == "snapshot-000000000003.json"
    loaded, loaded_path = store.load_latest()
    assert loaded_path == path
    assert core_states_equal(core, restore_core(loaded, make_model()))


def test_store_marker_written_and_checked(tmp_path):
    state_dir = tmp_path / "state"
    SnapshotStore(str(state_dir))
    with open(state_dir / "state.json") as handle:
        assert json.load(handle) == {"format": STATE_FORMAT}
    # A future-format dir is refused, not reinterpreted.
    with open(state_dir / "state.json", "w") as handle:
        json.dump({"format": STATE_FORMAT + 1}, handle)
    with pytest.raises(SnapshotError, match="format"):
        SnapshotStore(str(state_dir))


def test_store_empty_returns_none(tmp_path):
    assert SnapshotStore(str(tmp_path / "state")).load_latest() is None


def test_store_retention_prunes_oldest(tmp_path, core_and_tokens, traffic_rng):
    core, tokens = core_and_tokens
    store = SnapshotStore(str(tmp_path / "state"), retain=2)
    for _ in range(5):
        advance(core, tokens, traffic_rng)
        store.write(snapshot_core(core))
    names = [os.path.basename(p) for p in store.snapshot_paths()]
    assert names == ["snapshot-000000000005.json", "snapshot-000000000004.json"]


def test_store_same_iteration_overwrites(tmp_path, core_and_tokens, traffic_rng):
    core, tokens = core_and_tokens
    store = SnapshotStore(str(tmp_path / "state"))
    store.write(snapshot_core(core))
    core.register_device(7)  # state change that does not advance t
    store.write(snapshot_core(core))
    assert len(store.snapshot_paths()) == 1
    loaded, _ = store.load_latest()
    assert core_states_equal(core, restore_core(loaded, make_model()))


def test_torn_newest_falls_back_to_previous(tmp_path, core_and_tokens, traffic_rng):
    core, tokens = core_and_tokens
    store = SnapshotStore(str(tmp_path / "state"))
    advance(core, tokens, traffic_rng)
    store.write(snapshot_core(core))
    previous_iteration = core.iteration
    advance(core, tokens, traffic_rng)
    newest = store.write(snapshot_core(core))
    # Tear the newest file mid-write (truncated JSON).
    with open(newest) as handle:
        content = handle.read()
    with open(newest, "w") as handle:
        handle.write(content[: len(content) // 2])
    loaded, path = store.load_latest()
    assert path != newest
    assert restore_core(loaded, make_model()).iteration == previous_iteration


def test_checksum_mismatch_falls_back(tmp_path, core_and_tokens, traffic_rng):
    core, tokens = core_and_tokens
    store = SnapshotStore(str(tmp_path / "state"))
    advance(core, tokens, traffic_rng)
    store.write(snapshot_core(core))
    advance(core, tokens, traffic_rng)
    newest = store.write(snapshot_core(core))
    # Valid JSON whose bits don't add up: flip the iteration in place.
    with open(newest) as handle:
        payload = json.load(handle)
    payload["snapshot"]["optimizer"]["iteration"] += 1
    with open(newest, "w") as handle:
        json.dump(payload, handle)
    loaded, path = store.load_latest()
    assert path != newest
    assert restore_core(loaded, make_model()).iteration == 1


def test_all_garbage_raises_instead_of_fresh_start(tmp_path):
    store = SnapshotStore(str(tmp_path / "state"))
    garbage = os.path.join(store.snapshots_dir, "snapshot-000000000001.json")
    with open(garbage, "w") as handle:
        handle.write("{ not json")
    with pytest.raises(SnapshotError, match="no valid snapshot"):
        store.load_latest()


def test_newer_version_snapshot_refuses_fallback(tmp_path, core_and_tokens):
    core, _ = core_and_tokens
    store = SnapshotStore(str(tmp_path / "state"))
    store.write(snapshot_core(core))
    from repro.persist import SNAPSHOT_VERSION, snapshot_checksum

    future = snapshot_core(core)
    future["snapshot_version"] = SNAPSHOT_VERSION + 1
    future["optimizer"]["iteration"] = 9
    path = os.path.join(store.snapshots_dir, "snapshot-000000000009.json")
    with open(path, "w") as handle:
        json.dump({"checksum": snapshot_checksum(future), "snapshot": future},
                  handle)
    # Falling back past a future-format snapshot would resurrect stale
    # state, so the load refuses outright.
    with pytest.raises(SnapshotError, match="version"):
        store.load_latest()


def test_store_retain_validation(tmp_path):
    with pytest.raises(ValueError):
        SnapshotStore(str(tmp_path / "state"), retain=0)


# --------------------------------------------------------------------- #
# checkpointer                                                          #
# --------------------------------------------------------------------- #


def test_checkpointer_forced_write(tmp_path, core_and_tokens):
    core, _ = core_and_tokens
    checkpointer = Checkpointer(SnapshotStore(str(tmp_path / "state")))
    path = checkpointer.checkpoint(core)
    assert os.path.isfile(path)
    assert checkpointer.snapshots_written == 1


def test_checkpointer_honors_count_policy(tmp_path, core_and_tokens, traffic_rng):
    core, tokens = core_and_tokens
    checkpointer = Checkpointer(
        SnapshotStore(str(tmp_path / "state")),
        CheckpointPolicy(every_n_updates=2, every_seconds=None),
    )
    checkpointer.checkpoint(core)  # startup priming at t=0
    advance(core, tokens, traffic_rng)
    assert checkpointer.after_update(core) is None  # 1 update since: not due
    advance(core, tokens, traffic_rng)
    assert checkpointer.after_update(core) is not None  # 2 updates: due
    assert checkpointer.snapshots_written == 2


def test_checkpointer_note_restored_resets_baseline(
    tmp_path, core_and_tokens, traffic_rng
):
    core, tokens = core_and_tokens
    advance(core, tokens, traffic_rng, updates=5)
    checkpointer = Checkpointer(
        SnapshotStore(str(tmp_path / "state")),
        CheckpointPolicy(every_n_updates=2, every_seconds=None),
    )
    checkpointer.note_restored(core)
    # The 5 pre-restore updates don't count toward the next trigger.
    assert checkpointer.after_update(core) is None
    advance(core, tokens, traffic_rng, updates=2)
    assert checkpointer.after_update(core) is not None


def test_write_ahead_every_update_is_recoverable(
    tmp_path, core_and_tokens, traffic_rng
):
    """The crash-window contract: after every acked update there is a
    durable snapshot capturing it, so no acked state can be lost."""
    core, tokens = core_and_tokens
    checkpointer = Checkpointer(SnapshotStore(str(tmp_path / "state")))
    checkpointer.checkpoint(core)
    for _ in range(4):
        advance(core, tokens, traffic_rng)
        checkpointer.after_update(core)
        loaded, _ = checkpointer.store.load_latest()
        assert core_states_equal(core, restore_core(loaded, make_model()))
