"""Snapshot codec: ``restore_core(snapshot_core(core))`` is the core.

Every optimizer/schedule/projection combination the codec claims to
cover round-trips bit-exactly, including through an actual JSON
serialization (the form checkpoints live in on disk); mismatched
versions, models, and mangled payloads raise :class:`SnapshotError`
instead of restoring the wrong run.
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.core.config import ServerConfig
from repro.models import MulticlassLogisticRegression
from repro.optim import paper_sgd
from repro.optim.projection import BoxProjection, IdentityProjection, L2BallProjection
from repro.optim.schedules import (
    ConstantRate,
    InverseSqrtRate,
    InverseTimeRate,
    StepDecayRate,
)
from repro.optim.sgd import SGD, AdaGrad, AveragedSGD
from repro.persist import (
    SNAPSHOT_VERSION,
    SnapshotError,
    canonical_json,
    core_states_equal,
    describe_mismatch,
    restore_core,
    snapshot_checksum,
    snapshot_core,
)
from repro.privacy.accountant import PrivacyAccountant
from repro.privacy.mechanism import ReleaseRecord

from tests.persist.conftest import make_core, make_message, make_model


def drive(core, rng, num_messages=7, num_devices=2, seq_base=None, releases=()):
    """Register devices and apply a deterministic burst of check-ins."""
    tokens = {i: core.register_device(i) for i in range(num_devices)}
    next_seq = dict.fromkeys(tokens, 0 if seq_base is not None else -1)
    for i in range(num_messages):
        device_id = i % num_devices
        seq = -1
        if seq_base is not None:
            seq = next_seq[device_id]
            next_seq[device_id] += 1
        core.handle_checkin(
            make_message(core, device_id, tokens[device_id], rng,
                         seq=seq, releases=releases)
        )
    return tokens


def roundtrip(core):
    """Snapshot → JSON wire → restore, as the checkpoint store does it."""
    snapshot = json.loads(json.dumps(snapshot_core(core)))
    return restore_core(snapshot, make_model())


def assert_restores_exactly(core):
    restored = roundtrip(core)
    assert describe_mismatch(core, restored) is None
    assert core_states_equal(core, restored)


# --------------------------------------------------------------------- #
# round trips                                                           #
# --------------------------------------------------------------------- #


def test_paper_sgd_roundtrip(traffic_rng):
    core = make_core()
    drive(core, traffic_rng)
    assert core.iteration == 7
    assert_restores_exactly(core)


def test_fresh_core_roundtrip():
    assert_restores_exactly(make_core())


SCHEDULES = [
    ConstantRate(0.25),
    InverseSqrtRate(1.5),
    InverseTimeRate(2.0, 0.1),
    StepDecayRate(1.0, 0.5, 3),
]

PROJECTIONS = [IdentityProjection(), L2BallProjection(3.0), BoxProjection(2.0)]


@pytest.mark.parametrize("schedule", SCHEDULES, ids=lambda s: type(s).__name__)
@pytest.mark.parametrize("projection", PROJECTIONS, ids=lambda p: type(p).__name__)
def test_sgd_variants_roundtrip(schedule, projection, traffic_rng):
    model = make_model()
    core = make_core(
        optimizer=SGD(model.init_parameters(), schedule=schedule,
                      projection=projection)
    )
    drive(core, traffic_rng, num_messages=5)
    assert_restores_exactly(core)


def test_averaged_sgd_roundtrip(traffic_rng):
    model = make_model()
    core = make_core(
        optimizer=AveragedSGD(
            model.init_parameters(), schedule=InverseSqrtRate(0.7),
            projection=L2BallProjection(5.0), burn_in=3,
        )
    )
    drive(core, traffic_rng, num_messages=8)
    restored = roundtrip(core)
    assert describe_mismatch(core, restored) is None
    # The Polyak average is part of the observable state: both cores must
    # report identical averaged parameters, not just identical iterates.
    assert (core.optimizer.averaged_parameters.tobytes()
            == restored.optimizer.averaged_parameters.tobytes())
    assert restored.optimizer.averaged_steps == core.optimizer.averaged_steps


def test_adagrad_roundtrip(traffic_rng):
    model = make_model()
    core = make_core(
        optimizer=AdaGrad(model.init_parameters(), constant=0.3,
                          damping=1e-7, projection=BoxProjection(4.0))
    )
    drive(core, traffic_rng, num_messages=6)
    restored = roundtrip(core)
    assert describe_mismatch(core, restored) is None
    assert (core.optimizer.accumulator.tobytes()
            == restored.optimizer.accumulator.tobytes())


def test_accountant_roundtrip(traffic_rng):
    releases = (
        ReleaseRecord(epsilon=0.125, mechanism="laplace", sensitivity=2.0),
        ReleaseRecord(epsilon=0.0625, delta=1e-6, mechanism="dlap"),
        ReleaseRecord(epsilon=0.0625, delta=1e-6, mechanism="dlap"),
    )
    core = make_core(accountant=PrivacyAccountant(per_sample_cap=100.0))
    drive(core, traffic_rng, releases=releases)
    restored = roundtrip(core)
    assert describe_mismatch(core, restored) is None
    assert restored.accountant.spend() == core.accountant.spend()
    assert restored.accountant.record_runs == core.accountant.record_runs


def test_accountant_infinite_epsilon_roundtrip(traffic_rng):
    # The no-noise arms release with eps = inf (zero spend, but the
    # ledger records them); JSON's Infinity literal must carry the inf
    # through the snapshot file intact.
    releases = (ReleaseRecord(epsilon=math.inf, mechanism="identity"),)
    core = make_core(accountant=PrivacyAccountant())
    drive(core, traffic_rng, num_messages=3, releases=releases)
    assert math.isinf(core.accountant.record_runs[0][0].epsilon)
    restored = roundtrip(core)
    assert core_states_equal(core, restored)
    assert restored.accountant.record_runs == core.accountant.record_runs
    assert math.isinf(restored.accountant.record_runs[0][0].epsilon)


def test_revoked_registry_roundtrip(traffic_rng):
    core = make_core()
    drive(core, traffic_rng, num_devices=3)
    core.registry.revoke(1)
    restored = roundtrip(core)
    assert core_states_equal(core, restored)
    assert not restored.registry.is_registered(1)
    assert restored.registry.is_registered(0)


def test_dedupe_ledger_roundtrip(traffic_rng):
    core = make_core()
    tokens = drive(core, traffic_rng, seq_base=0)
    restored = roundtrip(core)
    assert core_states_equal(core, restored)
    for device_id in tokens:
        assert (restored.applied_checkin_seq(device_id)
                == core.applied_checkin_seq(device_id))
    # A replay against the *restored* core is recognized from the ledger.
    replay = make_message(restored, 0, tokens[0], traffic_rng, seq=0)
    ack = restored.handle_checkin(replay)
    assert ack.duplicate
    assert restored.iteration == core.iteration


def test_stop_decision_recomputed_not_stored(traffic_rng):
    core = make_core(max_iterations=4)
    drive(core, traffic_rng, num_messages=4)
    assert core.stopped
    snapshot = snapshot_core(core)
    assert "stop" not in snapshot and "stopped" not in snapshot
    restored = restore_core(json.loads(json.dumps(snapshot)), make_model())
    assert restored.stopped
    assert restored.stopping_decision() == core.stopping_decision()


def test_restored_core_continues_identically(traffic_rng):
    core = make_core()
    tokens = drive(core, traffic_rng, seq_base=0)
    restored = roundtrip(core)
    # Same further traffic → same acks, same states, forever after.
    follow_rng = np.random.default_rng(99)
    seqs = {i: core.applied_checkin_seq(i) + 1 for i in tokens}
    for i in range(6):
        device_id = i % len(tokens)
        message = make_message(core, device_id, tokens[device_id],
                               follow_rng, seq=seqs[device_id])
        seqs[device_id] += 1
        assert core.handle_checkin(message) == restored.handle_checkin(message)
    assert core_states_equal(core, restored)


# --------------------------------------------------------------------- #
# canonical form + checksum                                             #
# --------------------------------------------------------------------- #


def test_snapshot_is_deterministic(traffic_rng):
    core = make_core()
    drive(core, traffic_rng)
    first, second = snapshot_core(core), snapshot_core(core)
    assert first == second
    assert snapshot_checksum(first) == snapshot_checksum(second)


def test_checksum_survives_json_roundtrip(traffic_rng):
    core = make_core()
    drive(core, traffic_rng)
    snapshot = snapshot_core(core)
    rehydrated = json.loads(json.dumps(snapshot))
    assert canonical_json(rehydrated) == canonical_json(snapshot)
    assert snapshot_checksum(rehydrated) == snapshot_checksum(snapshot)


def test_checksum_detects_any_state_change(traffic_rng):
    core = make_core()
    drive(core, traffic_rng)
    before = snapshot_checksum(snapshot_core(core))
    tokens = {0: core.registry.register(0)}
    core.handle_checkin(make_message(core, 0, tokens[0], traffic_rng))
    assert snapshot_checksum(snapshot_core(core)) != before


# --------------------------------------------------------------------- #
# refusal paths                                                         #
# --------------------------------------------------------------------- #


def test_version_mismatch_raises():
    snapshot = snapshot_core(make_core())
    snapshot["snapshot_version"] = SNAPSHOT_VERSION + 1
    with pytest.raises(SnapshotError, match="version"):
        restore_core(snapshot, make_model())


def test_model_fingerprint_mismatch_raises():
    snapshot = snapshot_core(make_core())
    other = MulticlassLogisticRegression(num_features=5, num_classes=3)
    with pytest.raises(SnapshotError, match="cannot restore"):
        restore_core(snapshot, other)


def test_non_dict_snapshot_raises():
    with pytest.raises(SnapshotError, match="dict"):
        restore_core("not a snapshot", make_model())


@pytest.mark.parametrize("missing", ["model", "config", "optimizer", "counters",
                                     "registry", "monitor", "accountant"])
def test_missing_section_raises(missing):
    snapshot = snapshot_core(make_core())
    del snapshot[missing]
    with pytest.raises(SnapshotError):
        restore_core(snapshot, make_model())


def test_unknown_optimizer_type_raises():
    snapshot = snapshot_core(make_core())
    snapshot["optimizer"]["type"] = "momentum"
    with pytest.raises(SnapshotError, match="optimizer"):
        restore_core(snapshot, make_model())


def test_unknown_schedule_type_raises():
    snapshot = snapshot_core(make_core())
    snapshot["optimizer"]["schedule"] = {"type": "cosine"}
    with pytest.raises(SnapshotError, match="schedule"):
        restore_core(snapshot, make_model())


def test_unknown_projection_type_raises():
    snapshot = snapshot_core(make_core())
    snapshot["optimizer"]["projection"] = {"type": "simplex"}
    with pytest.raises(SnapshotError, match="projection"):
        restore_core(snapshot, make_model())
