"""Fault campaign: a retrying client through a lossy proxy loses nothing.

An in-process :class:`CrowdService` (with write-ahead checkpointing)
sits behind a seeded :class:`FaultyProxy` that refuses connections,
drops requests, swallows responses after the server applied them, and
delays.  A retrying :class:`ServiceClient` pushes sequenced check-ins
through the chaos; the invariants at the end:

* zero unhandled server-side exceptions (no ``internal`` 500s),
* the server iteration equals the number of **distinct** check-ins —
  nothing lost, nothing double-applied,
* the dedupe ledger actually fired (``duplicates_suppressed > 0``),
  i.e. the campaign exercised the lost-ack trap rather than passing
  vacuously (the proxy counters prove faults were injected).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.persist import Checkpointer, FaultyProxy, SnapshotStore
from repro.serve import wire
from repro.serve.client import RemoteServiceError, ServiceClient
from repro.serve.service import CrowdService

from tests.persist.conftest import make_core, make_message

NUM_DEVICES = 3
CHECKINS_PER_DEVICE = 12


@pytest.fixture
def service(tmp_path):
    core = make_core()
    checkpointer = Checkpointer(SnapshotStore(str(tmp_path / "state")))
    with CrowdService(core, checkpointer=checkpointer) as svc:
        yield svc


def test_chaos_campaign_exactly_once(service, traffic_rng):
    proxy = FaultyProxy(
        service.url, seed=11,
        refuse=0.08, drop_request=0.08, drop_response=0.18, delay=0.05,
        delay_seconds=0.005,
    )
    with proxy:
        client = ServiceClient(
            proxy.url, timeout=10.0, retries=12,
            backoff=0.005, backoff_max=0.05,
        )
        tokens = {}
        for device_id in range(NUM_DEVICES):
            token, last_seq = client.join_info(device_id)
            tokens[device_id] = token
            assert last_seq == -1  # fresh enrollment
        core = service.core
        for seq in range(CHECKINS_PER_DEVICE):
            for device_id in range(NUM_DEVICES):
                message = make_message(core, device_id, tokens[device_id],
                                       traffic_rng, seq=seq)
                result = client.checkins([message])
                ack = result.acks[0]
                assert ack is not None
                assert ack.checkin_seq == seq
        status = client.status()

    total = NUM_DEVICES * CHECKINS_PER_DEVICE
    # Exactly-once: every distinct check-in applied, none twice.
    assert status.iteration == total
    assert core.iteration == total
    for device_id in range(NUM_DEVICES):
        assert core.applied_checkin_seq(device_id) == CHECKINS_PER_DEVICE - 1

    # The campaign was not vacuous: faults landed, retries happened, and
    # the lost-ack trap (response dropped after apply) was sprung and
    # answered from the dedupe ledger.
    injected = (proxy.counts["refused"] + proxy.counts["requests_dropped"]
                + proxy.counts["responses_dropped"])
    assert injected > 0, proxy.counts
    assert proxy.counts["responses_dropped"] > 0, proxy.counts
    assert client.retries_used > 0
    assert core.duplicates_suppressed > 0

    # Zero unhandled server exceptions: nothing 500'd.
    assert service.errors_returned.get(wire.ErrorCode.INTERNAL, 0) == 0, (
        service.errors_returned
    )


def test_chaos_campaign_state_remains_restorable(service, traffic_rng):
    """After the dust settles, the newest checkpoint equals the live core."""
    from repro.persist import core_states_equal, restore_core
    from tests.persist.conftest import make_model

    proxy = FaultyProxy(service.url, seed=3, drop_response=0.3)
    with proxy:
        client = ServiceClient(proxy.url, timeout=10.0, retries=10,
                               backoff=0.005, backoff_max=0.05)
        token, _ = client.join_info(0)
        for seq in range(8):
            message = make_message(service.core, 0, token, traffic_rng, seq=seq)
            assert client.checkins([message]).acks[0] is not None
    loaded, _ = service._checkpointer.store.load_latest()
    restored = restore_core(loaded, make_model())
    assert core_states_equal(service.core, restored)


def test_refusing_proxy_without_retries_fails_fast(service):
    proxy = FaultyProxy(service.url, seed=0, refuse=1.0)
    with proxy:
        client = ServiceClient(proxy.url, timeout=2.0, retries=0)
        with pytest.raises(RemoteServiceError) as excinfo:
            client.status()
        assert excinfo.value.code == wire.ErrorCode.UNREACHABLE
    assert proxy.counts["refused"] >= 1


def test_proxy_passthrough_is_transparent(service):
    proxy = FaultyProxy(service.url, seed=0)  # all probabilities zero
    with proxy:
        client = ServiceClient(proxy.url, timeout=5.0)
        status = client.status()
        assert status.iteration == 0
        assert proxy.counts["passed"] >= 1
        assert proxy.counts["refused"] == 0


def test_proxy_probability_validation(service):
    with pytest.raises(ValueError):
        FaultyProxy(service.url, refuse=0.7, drop_response=0.5)
    with pytest.raises(ValueError):
        FaultyProxy(service.url, refuse=-0.1)


def test_proxy_retarget_after_restart(tmp_path, traffic_rng):
    """set_upstream points the same proxy at a bounced server."""
    core1 = make_core()
    service1 = CrowdService(core1).start()
    proxy = FaultyProxy(service1.url, seed=0)
    with proxy:
        client = ServiceClient(proxy.url, timeout=5.0, retries=3,
                               backoff=0.005)
        assert client.status().iteration == 0
        service1.stop()
        core2 = make_core()
        service2 = CrowdService(core2).start()
        try:
            proxy.set_upstream(service2.port)
            assert client.status().iteration == 0
        finally:
            service2.stop()
