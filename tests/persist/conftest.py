"""Shared builders for the durable-serving (``repro.persist``) tests.

A tiny fixed task (d=4, C=3) keeps every snapshot/restore/fault test
fast; traffic is generated from seeded NumPy RNGs so each test is fully
deterministic.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import ServerConfig
from repro.core.protocol import CheckinMessage
from repro.core.server_core import ServerCore
from repro.models import MulticlassLogisticRegression
from repro.optim import paper_sgd

DIM = 4
CLASSES = 3


def make_model() -> MulticlassLogisticRegression:
    return MulticlassLogisticRegression(num_features=DIM, num_classes=CLASSES)


def make_core(max_iterations: int = 10_000, optimizer=None, **kwargs) -> ServerCore:
    """A core built exactly the way the CLI builds one (paper SGD)."""
    model = make_model()
    if optimizer is None:
        optimizer = paper_sgd(
            model.init_parameters(),
            learning_rate_constant=0.5,
            projection_radius=10.0,
        )
    config = kwargs.pop("config", None) or ServerConfig(max_iterations=max_iterations)
    return ServerCore(model, optimizer, config=config, **kwargs)


def make_message(
    core,
    device_id: int,
    token: str,
    rng: np.random.Generator,
    seq: int = -1,
    releases=(),
) -> CheckinMessage:
    """One plausible sanitized check-in against ``core``'s model."""
    model = core.model
    return CheckinMessage(
        device_id=device_id,
        token=token,
        gradient=rng.normal(size=model.num_parameters),
        num_samples=int(rng.integers(1, 6)),
        noisy_error_count=int(rng.integers(0, 4)),
        noisy_label_counts=rng.integers(0, 5, size=model.num_classes),
        checkout_iteration=core.iteration,
        releases=releases,
        checkin_seq=seq,
    )


@pytest.fixture
def traffic_rng() -> np.random.Generator:
    return np.random.default_rng(20260808)
