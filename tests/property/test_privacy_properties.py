"""Property-based tests for the privacy mechanisms."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.privacy import (
    DiscreteLaplaceMechanism,
    LaplaceMechanism,
    discrete_laplace_variance,
    label_flip_distribution,
    laplace_scale,
    logistic_gradient_sensitivity,
    split_budget,
)

epsilons = st.floats(min_value=0.01, max_value=100.0, allow_nan=False)
batch_sizes = st.integers(min_value=1, max_value=10_000)


class TestScaleProperties:
    @given(eps=epsilons, b=batch_sizes)
    def test_laplace_scale_positive_and_finite(self, eps, b):
        scale = laplace_scale(logistic_gradient_sensitivity(b), eps)
        assert scale > 0
        assert math.isfinite(scale)

    @given(eps=epsilons, b=batch_sizes)
    def test_scale_inversely_proportional_to_batch(self, eps, b):
        one = laplace_scale(logistic_gradient_sensitivity(1), eps)
        many = laplace_scale(logistic_gradient_sensitivity(b), eps)
        assert many == pytest.approx(one / b)

    @given(eps=epsilons)
    def test_stronger_privacy_more_noise(self, eps):
        weaker = laplace_scale(4.0, eps * 2)
        stronger = laplace_scale(4.0, eps)
        assert stronger > weaker

    @given(eps=epsilons)
    def test_discrete_variance_positive(self, eps):
        assert discrete_laplace_variance(eps) > 0


class TestMechanismProperties:
    @given(
        eps=epsilons,
        seed=st.integers(min_value=0, max_value=2**31),
        dim=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=50)
    def test_laplace_release_shape_and_finiteness(self, eps, seed, dim):
        mech = LaplaceMechanism(eps, 1.0, np.random.default_rng(seed))
        out = mech.release(np.zeros(dim))
        assert out.shape == (dim,)
        assert np.all(np.isfinite(out))

    @given(
        eps=epsilons,
        seed=st.integers(min_value=0, max_value=2**31),
        value=st.integers(min_value=-1000, max_value=1000),
    )
    @settings(max_examples=50)
    def test_discrete_release_integer(self, eps, seed, value):
        mech = DiscreteLaplaceMechanism(eps, np.random.default_rng(seed))
        out = mech.release(value)
        assert isinstance(out, int)

    @given(seed=st.integers(min_value=0, max_value=2**31),
           dim=st.integers(min_value=1, max_value=32))
    @settings(max_examples=30)
    def test_identity_mechanisms_exact(self, seed, dim):
        rng = np.random.default_rng(seed)
        value = rng.normal(size=dim)
        out = LaplaceMechanism(math.inf, 1.0, rng).release(value)
        assert np.array_equal(out, value)


class TestBudgetProperties:
    @given(
        eps=epsilons,
        classes=st.integers(min_value=1, max_value=1000),
        fraction=st.floats(min_value=0.001, max_value=0.999),
    )
    def test_split_budget_exactly_preserves_total(self, eps, classes, fraction):
        budget = split_budget(eps, classes, monitoring_fraction=fraction)
        assert budget.total_epsilon == pytest.approx(eps, rel=1e-9)

    @given(eps=epsilons, classes=st.integers(min_value=1, max_value=1000))
    def test_split_components_all_positive(self, eps, classes):
        budget = split_budget(eps, classes)
        assert budget.epsilon_gradient > 0
        assert budget.epsilon_error > 0
        assert budget.epsilon_label > 0


class TestLabelFlipProperties:
    @given(eps=st.floats(min_value=0.001, max_value=1000.0),
           classes=st.integers(min_value=2, max_value=100))
    def test_distribution_valid(self, eps, classes):
        dist = label_flip_distribution(eps, classes)
        assert dist.shape == (classes,)
        assert np.all(dist >= 0)
        assert dist.sum() == pytest.approx(1.0)

    @given(eps=st.floats(min_value=0.001, max_value=600.0),
           classes=st.integers(min_value=2, max_value=100))
    def test_true_label_always_most_likely(self, eps, classes):
        dist = label_flip_distribution(eps, classes)
        assert dist[0] >= dist[1:].max()

    @given(classes=st.integers(min_value=2, max_value=50))
    def test_keep_probability_increases_with_epsilon(self, classes):
        keeps = [label_flip_distribution(e, classes)[0] for e in (0.1, 1.0, 10.0)]
        assert keeps[0] < keeps[1] < keeps[2]
