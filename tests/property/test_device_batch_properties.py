"""Property tests: ``Device.observe_batch`` ≡ repeated ``Device.observe``.

The batch-arrival simulator relies on ``observe_batch`` being a drop-in
replacement for a run of scalar ``observe`` calls — same buffer contents,
same drop accounting, same *bit-identical* holdout RNG consumption (a
single ``rng.random(k)`` block equals k sequential scalar draws under
PCG64), and therefore the same sanitized check-in afterwards.  Sequences
mix holdout draws, capacity overflow, and interleaved check-outs.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import DeviceConfig
from repro.core.device import Device
from repro.models import MulticlassLogisticRegression
from repro.privacy.budget import split_budget

NUM_FEATURES = 4
NUM_CLASSES = 3


def _make_device(batch_size, capacity, holdout_fraction, epsilon, seed):
    model = MulticlassLogisticRegression(NUM_FEATURES, NUM_CLASSES)
    config = DeviceConfig(
        batch_size=batch_size,
        buffer_capacity=capacity,
        budget=split_budget(epsilon, NUM_CLASSES),
        holdout_fraction=holdout_fraction,
    )
    return Device(0, model, config, token="t", rng=np.random.default_rng(seed))


def _make_samples(total, seed):
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(total, NUM_FEATURES)) / (4 * NUM_FEATURES)
    labels = rng.integers(0, NUM_CLASSES, size=total)
    return features, labels


batch_plan = st.lists(st.integers(min_value=1, max_value=7),
                      min_size=1, max_size=6)


class TestObserveBatchEquivalence:
    @given(
        plan=batch_plan,
        batch_size=st.integers(1, 4),
        extra_capacity=st.integers(0, 6),
        holdout_fraction=st.sampled_from([0.0, 0.2, 0.8]),
        seed=st.integers(0, 10**6),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_sequential_observe(
        self, plan, batch_size, extra_capacity, holdout_fraction, seed
    ):
        capacity = batch_size + extra_capacity
        total = sum(plan)
        features, labels = _make_samples(total, seed)

        scalar = _make_device(batch_size, capacity, holdout_fraction,
                              np.inf, seed)
        batched = _make_device(batch_size, capacity, holdout_fraction,
                               np.inf, seed)

        start = 0
        for chunk in plan:
            chunk_features = features[start:start + chunk]
            chunk_labels = labels[start:start + chunk]
            wants_scalar = [
                scalar.observe(chunk_features[i], int(chunk_labels[i]))
                for i in range(chunk)
            ][-1]
            wants_batched = batched.observe_batch(chunk_features, chunk_labels)
            assert wants_batched == wants_scalar
            assert batched.buffer_size == scalar.buffer_size
            assert batched.samples_observed == scalar.samples_observed
            assert batched.samples_dropped == scalar.samples_dropped
            start += chunk

        # Both devices' RNG streams must be at the same position: the next
        # draw from each is identical.
        assert scalar._rng.random() == batched._rng.random()

    @given(
        plan=batch_plan,
        holdout_fraction=st.sampled_from([0.0, 0.3]),
        epsilon=st.sampled_from([np.inf, 1.0]),
        seed=st.integers(0, 10**6),
    )
    @settings(max_examples=40, deadline=None)
    def test_checkin_after_batching_is_bit_identical(
        self, plan, holdout_fraction, epsilon, seed
    ):
        """Interleaved observe/check-out cycles produce identical messages."""
        batch_size, capacity = 3, 6
        total = sum(plan)
        features, labels = _make_samples(total, seed)
        parameters = np.random.default_rng(seed + 1).normal(
            size=NUM_FEATURES * NUM_CLASSES)

        scalar = _make_device(batch_size, capacity, holdout_fraction,
                              epsilon, seed)
        batched = _make_device(batch_size, capacity, holdout_fraction,
                               epsilon, seed)

        start = 0
        iteration = 0
        for chunk in plan:
            chunk_features = features[start:start + chunk]
            chunk_labels = labels[start:start + chunk]
            for i in range(chunk):
                scalar.observe(chunk_features[i], int(chunk_labels[i]))
            wants = batched.observe_batch(chunk_features, chunk_labels)
            start += chunk
            if not wants:
                continue
            result_scalar = scalar.complete_checkout(parameters, iteration)
            result_batched = batched.complete_checkout(parameters, iteration)
            iteration += 1
            a, b = result_scalar.message, result_batched.message
            assert np.array_equal(a.gradient, b.gradient)
            assert a.num_samples == b.num_samples
            assert a.noisy_error_count == b.noisy_error_count
            assert np.array_equal(a.noisy_label_counts, b.noisy_label_counts)
            assert np.array_equal(result_scalar.per_sample_errors,
                                  result_batched.per_sample_errors)
            assert np.array_equal(result_scalar.consumed_labels,
                                  result_batched.consumed_labels)

    @given(
        plan=batch_plan,
        batch_size=st.integers(1, 4),
        extra_capacity=st.integers(0, 6),
        holdout_fraction=st.sampled_from([0.0, 0.4]),
        seed=st.integers(0, 10**6),
    )
    @settings(max_examples=40, deadline=None)
    def test_observe_rows_matches_observe_batch(
        self, plan, batch_size, extra_capacity, holdout_fraction, seed
    ):
        """The gather-into-buffer path equals the two-copy batch path."""
        capacity = batch_size + extra_capacity
        total = sum(plan)
        features, labels = _make_samples(total, seed)
        order = np.random.default_rng(seed + 2).permutation(total)

        batched = _make_device(batch_size, capacity, holdout_fraction,
                               np.inf, seed)
        gathered = _make_device(batch_size, capacity, holdout_fraction,
                                np.inf, seed)

        start = 0
        for chunk in plan:
            rows = order[start:start + chunk]
            wants_batched = batched.observe_batch(features[rows], labels[rows])
            wants_gathered = gathered.observe_rows(features, labels, rows)
            assert wants_gathered == wants_batched
            assert gathered.buffer_size == batched.buffer_size
            assert gathered.samples_dropped == batched.samples_dropped
            start += chunk
        if batched.buffer_size:
            parameters = np.zeros(NUM_FEATURES * NUM_CLASSES)
            a = batched.complete_checkout(parameters, 0)
            b = gathered.complete_checkout(parameters, 0)
            assert np.array_equal(a.message.gradient, b.message.gradient)
            assert np.array_equal(a.per_sample_errors, b.per_sample_errors)
            assert np.array_equal(a.consumed_labels, b.consumed_labels)

    def test_overflow_draws_no_holdout_randomness(self):
        """Dropped samples must not consume RNG (they don't in observe)."""
        device = _make_device(batch_size=2, capacity=2, holdout_fraction=0.5,
                              epsilon=np.inf, seed=0)
        features, labels = _make_samples(6, seed=1)
        device.observe_batch(features, labels)  # 2 buffered, 4 dropped
        assert device.samples_dropped == 4
        # Only two holdout draws were consumed.
        reference = np.random.default_rng(0)
        reference.random(2)
        assert device._rng.random() == reference.random()

    def test_scalar_random_block_equals_sequential_draws(self):
        """The PCG64 fact the batching rests on, stated as a test."""
        block = np.random.default_rng(42).random(257)
        sequential_rng = np.random.default_rng(42)
        sequential = np.array([sequential_rng.random() for _ in range(257)])
        assert np.array_equal(block, sequential)
