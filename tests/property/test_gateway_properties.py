"""Property tests: the gateway tier is invisible when it should be.

The subsystem's core promise, hypothesis-driven: under zero delay a
**pass-through** gateway tier delivers bit-identical traces to plain
per-device delivery — for any gateway count, any device→gateway
assignment (named policy or an arbitrary explicit map), stopping rules
that trip mid-flush, and partial Bernoulli outages on the edge hop
(which must consume the device RNG streams in exactly the flat
topology's order).  A second property pins the batching invariants that
hold even when the tier *is* visible: conservation (every check-in is
applied, lost, or still pending nowhere) and bounded batch sizes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import iid_partition, make_mnist_like
from repro.evaluation import assert_traces_identical
from repro.gateway import GatewayProfile, TwoTierTopology
from repro.models import MulticlassLogisticRegression
from repro.network.outage import BernoulliOutage, NoOutage
from repro.simulation import CrowdSimulator, SimulationConfig

NUM_DEVICES = 5
DIM, CLASSES = 50, 10


@pytest.fixture(scope="module")
def data():
    train, test = make_mnist_like(num_train=100, num_test=20, seed=2)
    parts = iid_partition(train, NUM_DEVICES, np.random.default_rng(2))
    return parts, test


def _simulate(parts, test, *, gateways=None, outage=None, max_iterations=None,
              seed=11):
    config = SimulationConfig(
        num_devices=NUM_DEVICES,
        batch_size=2,
        num_snapshots=4,
        max_iterations=max_iterations,
        transport="simulated" if gateways is None else "auto",
        gateways=gateways,
        outage=outage if outage is not None else NoOutage(),
    )
    simulator = CrowdSimulator(
        MulticlassLogisticRegression(DIM, CLASSES), parts, test, config,
        seed=seed,
    )
    return simulator, simulator.run()


assignments = st.one_of(
    st.sampled_from(["round_robin", "block", "hash"]),
    # An arbitrary explicit device→gateway map (resized to G below).
    st.lists(
        st.integers(min_value=0, max_value=7),
        min_size=NUM_DEVICES, max_size=NUM_DEVICES,
    ),
)


@settings(max_examples=12, deadline=None)
@given(
    num_gateways=st.integers(min_value=1, max_value=6),
    assignment=assignments,
    drop_probability=st.sampled_from([0.0, 0.15, 0.35]),
    max_iterations=st.sampled_from([None, 7, 23]),
)
def test_pass_through_tier_is_bit_identical_to_per_device_delivery(
    data, num_gateways, assignment, drop_probability, max_iterations
):
    """Zero delay ⇒ the tier is invisible: shuffled assignments, stops
    that land mid-flush, and partial edge outages all reproduce the
    per-device run exactly."""
    parts, test = data
    if not isinstance(assignment, str):
        assignment = tuple(g % num_gateways for g in assignment)
    outage = (
        BernoulliOutage(drop_probability) if drop_probability else NoOutage()
    )
    topo = TwoTierTopology(
        num_gateways=num_gateways,
        assignment=assignment,
        profile=GatewayProfile(
            flush_size=1,
            device_outage=(
                BernoulliOutage(drop_probability)
                if drop_probability
                else NoOutage()
            ),
        ),
    )
    _, plain = _simulate(
        parts, test, outage=outage, max_iterations=max_iterations
    )
    _, tiered = _simulate(
        parts, test, gateways=topo, max_iterations=max_iterations
    )
    assert_traces_identical(plain, tiered, context="pass-through tier")


@settings(max_examples=12, deadline=None)
@given(
    num_gateways=st.integers(min_value=1, max_value=4),
    flush_size=st.integers(min_value=2, max_value=16),
    deadline=st.sampled_from([None, 0.5, 2.0]),
    max_iterations=st.sampled_from([None, 9]),
)
def test_batched_tier_conserves_every_checkin(
    data, num_gateways, flush_size, deadline, max_iterations
):
    """Visible batching still loses nothing: every check-in the devices
    sent was flushed upstream, except check-ins pooled when a stopping
    rule ended the task mid-flush (the server would refuse them anyway);
    no upstream batch exceeded the configured size bound."""
    parts, test = data
    topo = TwoTierTopology(
        num_gateways=num_gateways,
        profile=GatewayProfile(flush_size=flush_size, flush_deadline=deadline),
    )
    simulator, trace = _simulate(
        parts, test, gateways=topo, max_iterations=max_iterations
    )
    assert simulator.gateway.checkins_lost == 0
    nodes = simulator.gateway.nodes
    sent = sum(node.aggregator.stats.checkins_added for node in nodes)
    flushed = sum(node.aggregator.stats.messages_flushed for node in nodes)
    pending = simulator.gateway.pending_checkins
    assert flushed + pending == sent  # conservation, message by message
    assert all(
        node.aggregator.stats.largest_flush <= flush_size for node in nodes
    )
    if max_iterations is None:
        # Without a stop the end-of-run drain strands nothing.
        assert pending == 0
        total = sum(len(p) for p in parts)
        assert trace.total_samples_consumed == total
    else:
        # A mid-flush stop may leave pooled check-ins behind — but never
        # a full batch (that would have flushed before the stop landed).
        assert pending < flush_size * len(nodes)
        assert trace.stop_reason == "max_iterations"
        assert trace.server_iterations == max_iterations
