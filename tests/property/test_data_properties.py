"""Property-based tests for data plumbing invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import Dataset, iid_partition
from repro.data.synthetic import ClassClusterGenerator, ClusterSpec
from repro.evaluation import ErrorCurve, average_curves
from repro.utils.numerics import l1_normalize


class TestL1NormalizationInvariant:
    @given(
        seed=st.integers(0, 2**31),
        n=st.integers(1, 50),
        d=st.integers(1, 30),
    )
    @settings(max_examples=60)
    def test_l1_bound_always_holds(self, seed, n, d):
        raw = np.random.default_rng(seed).normal(size=(n, d)) * 100
        out = l1_normalize(raw)
        assert np.all(np.sum(np.abs(out), axis=1) <= 1.0 + 1e-9)


class TestGeneratorInvariants:
    @given(
        classes=st.integers(2, 8),
        dim=st.integers(2, 30),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=30)
    def test_samples_satisfy_sensitivity_precondition(self, classes, dim, seed):
        """Every generated dataset must satisfy ‖x‖₁ ≤ 1 — the assumption
        behind every sensitivity bound in the paper."""
        spec = ClusterSpec(num_classes=classes, num_features=dim)
        gen = ClassClusterGenerator(spec, structure_seed=0)
        ds = gen.sample(50, np.random.default_rng(seed))
        assert ds.max_l1_norm <= 1.0 + 1e-9
        assert set(np.unique(ds.labels)) <= set(range(classes))


class TestPartitionInvariants:
    @given(
        n=st.integers(10, 200),
        devices=st.integers(1, 20),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=60)
    def test_iid_partition_conserves_samples(self, n, devices, seed):
        ds = Dataset(np.zeros((n, 2)), np.zeros(n, dtype=int), 2)
        parts = iid_partition(ds, devices, np.random.default_rng(seed))
        assert sum(len(p) for p in parts) == n
        sizes = [len(p) for p in parts]
        assert max(sizes) - min(sizes) <= 1  # balanced


class TestCurveAveragingInvariants:
    @given(
        errors=st.lists(
            st.lists(st.floats(0.0, 1.0, allow_nan=False), min_size=3, max_size=3),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=60)
    def test_average_bounded_by_extremes(self, errors):
        curves = [
            ErrorCurve(np.array([1, 2, 3]), np.asarray(e)) for e in errors
        ]
        avg = average_curves(curves)
        stacked = np.asarray(errors)
        assert np.all(avg.errors <= stacked.max(axis=0) + 1e-12)
        assert np.all(avg.errors >= stacked.min(axis=0) - 1e-12)
