"""Property-based round-trip tests for the wire codec."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CheckinMessage,
    CheckoutRequest,
    CheckoutResponse,
    decode_from_json,
    decode_message,
    encode_message,
    encode_to_json,
)

finite_floats = st.floats(allow_nan=False, allow_infinity=False,
                          min_value=-1e12, max_value=1e12)


class TestCodecRoundTrips:
    @given(
        device_id=st.integers(0, 10**6),
        token=st.text(min_size=1, max_size=64),
        time=finite_floats.filter(lambda t: t >= 0),
    )
    @settings(max_examples=60)
    def test_checkout_request_roundtrip(self, device_id, token, time):
        message = CheckoutRequest(device_id, token, time)
        decoded = decode_from_json(encode_to_json(message))
        assert decoded == message

    @given(
        device_id=st.integers(0, 10**6),
        params=st.lists(finite_floats, min_size=1, max_size=40),
        iteration=st.integers(0, 10**9),
    )
    @settings(max_examples=60)
    def test_checkout_response_roundtrip(self, device_id, params, iteration):
        message = CheckoutResponse(
            device_id, np.asarray(params), iteration, issued_time=0.0
        )
        decoded = decode_message(encode_message(message))
        assert np.array_equal(decoded.parameters, message.parameters)
        assert decoded.server_iteration == iteration

    @given(
        gradient=st.lists(finite_floats, min_size=1, max_size=40),
        num_samples=st.integers(1, 10**4),
        error_count=st.integers(-100, 100),
        label_counts=st.lists(st.integers(-50, 200), min_size=1, max_size=12),
        checkout_iteration=st.integers(0, 10**9),
    )
    @settings(max_examples=60)
    def test_checkin_roundtrip(self, gradient, num_samples, error_count,
                               label_counts, checkout_iteration):
        message = CheckinMessage(
            device_id=1,
            token="t",
            gradient=np.asarray(gradient),
            num_samples=num_samples,
            noisy_error_count=error_count,
            noisy_label_counts=np.asarray(label_counts, dtype=np.int64),
            checkout_iteration=checkout_iteration,
        )
        decoded = decode_from_json(encode_to_json(message))
        assert np.array_equal(decoded.gradient, message.gradient)
        assert np.array_equal(decoded.noisy_label_counts, message.noisy_label_counts)
        assert decoded.noisy_error_count == error_count
        assert decoded.num_samples == num_samples
        assert decoded.payload_floats == message.payload_floats
