"""Property-based tests for the discrete-event queue and projections."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.events import EventQueue
from repro.optim import L2BallProjection


class TestEventOrdering:
    @given(times=st.lists(st.floats(0.0, 1e6, allow_nan=False), min_size=1,
                          max_size=50))
    @settings(max_examples=60)
    def test_events_fire_in_nondecreasing_time_order(self, times):
        queue = EventQueue()
        fired = []
        for t in times:
            queue.schedule(t, lambda t=t: fired.append(t))
        queue.run()
        assert fired == sorted(fired)
        assert len(fired) == len(times)

    @given(times=st.lists(st.floats(0.0, 100.0, allow_nan=False), min_size=1,
                          max_size=30),
           horizon=st.floats(0.0, 100.0, allow_nan=False))
    @settings(max_examples=60)
    def test_run_until_fires_exactly_events_within_horizon(self, times, horizon):
        queue = EventQueue()
        fired = []
        for t in times:
            queue.schedule(t, lambda t=t: fired.append(t))
        queue.run(until=horizon)
        assert len(fired) == sum(1 for t in times if t <= horizon)

    @given(times=st.lists(st.floats(0.0, 100.0, allow_nan=False), min_size=2,
                          max_size=30))
    @settings(max_examples=60)
    def test_clock_never_goes_backwards(self, times):
        queue = EventQueue()
        observed = []
        for t in times:
            queue.schedule(t, lambda: observed.append(queue.now))
        queue.run()
        assert observed == sorted(observed)


class TestProjectionProperties:
    @given(
        vec=st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=1,
                     max_size=20),
        radius=st.floats(0.01, 1e3, allow_nan=False),
    )
    @settings(max_examples=100)
    def test_projection_lands_inside_ball(self, vec, radius):
        proj = L2BallProjection(radius)
        out = proj(np.asarray(vec))
        assert np.linalg.norm(out) <= radius * (1 + 1e-9)

    @given(
        vec=st.lists(st.floats(-1e3, 1e3, allow_nan=False), min_size=1,
                     max_size=20),
        radius=st.floats(0.01, 1e3, allow_nan=False),
    )
    @settings(max_examples=100)
    def test_projection_is_idempotent(self, vec, radius):
        proj = L2BallProjection(radius)
        once = proj(np.asarray(vec))
        twice = proj(once)
        assert np.allclose(once, twice)

    @given(
        vec=st.lists(st.floats(-1e3, 1e3, allow_nan=False), min_size=1,
                     max_size=20),
        radius=st.floats(0.01, 1e3, allow_nan=False),
    )
    @settings(max_examples=100)
    def test_projection_never_increases_norm(self, vec, radius):
        proj = L2BallProjection(radius)
        arr = np.asarray(vec)
        assert np.linalg.norm(proj(arr)) <= np.linalg.norm(arr) + 1e-9
