"""Property-based tests for model oracles and their sensitivity bounds."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.models import MulticlassLinearSVM, MulticlassLogisticRegression
from repro.utils.numerics import l1_normalize


def batch_strategy(dim, classes, max_n=12):
    return st.tuples(
        hnp.arrays(
            np.float64,
            st.tuples(st.integers(2, max_n), st.just(dim)),
            elements=st.floats(-5, 5, allow_nan=False),
        ),
        st.integers(min_value=0, max_value=2**31),
    )


class TestLogisticProperties:
    @given(data=batch_strategy(4, 3), param_seed=st.integers(0, 2**31))
    @settings(max_examples=40)
    def test_appendix_a_swap_bound(self, data, param_seed):
        """∀ minibatches, swapping one sample moves ḡ by ≤ 4/b in L1."""
        raw, label_seed = data
        features = l1_normalize(raw)
        n = features.shape[0]
        rng = np.random.default_rng(label_seed)
        labels = rng.integers(0, 3, n)
        model = MulticlassLogisticRegression(4, 3)
        w = np.random.default_rng(param_seed).normal(size=12)

        swapped_features = features.copy()
        swapped_labels = labels.copy()
        alt = np.random.default_rng(param_seed + 1).normal(size=4)
        alt_sum = np.abs(alt).sum()
        swapped_features[0] = alt / alt_sum if alt_sum > 0 else alt
        swapped_labels[0] = (labels[0] + 1) % 3

        g1 = model.gradient(w, features, labels)
        g2 = model.gradient(w, swapped_features, swapped_labels)
        assert np.abs(g1 - g2).sum() <= 4.0 / n + 1e-9

    @given(data=batch_strategy(3, 4), param_seed=st.integers(0, 2**31))
    @settings(max_examples=40)
    def test_loss_nonnegative_and_finite(self, data, param_seed):
        raw, label_seed = data
        features = l1_normalize(raw)
        labels = np.random.default_rng(label_seed).integers(0, 4, features.shape[0])
        model = MulticlassLogisticRegression(3, 4)
        w = np.random.default_rng(param_seed).normal(size=12) * 2
        loss = model.loss(w, features, labels)
        assert loss >= 0.0
        assert np.isfinite(loss)

    @given(data=batch_strategy(3, 3), param_seed=st.integers(0, 2**31))
    @settings(max_examples=40)
    def test_gradient_descent_direction(self, data, param_seed):
        """A small step against the gradient never increases the loss."""
        raw, label_seed = data
        features = l1_normalize(raw)
        labels = np.random.default_rng(label_seed).integers(0, 3, features.shape[0])
        model = MulticlassLogisticRegression(3, 3, l2_regularization=0.01)
        w = np.random.default_rng(param_seed).normal(size=9)
        g = model.gradient(w, features, labels)
        before = model.loss(w, features, labels)
        after = model.loss(w - 1e-5 * g, features, labels)
        assert after <= before + 1e-10

    @given(data=batch_strategy(4, 3), param_seed=st.integers(0, 2**31))
    @settings(max_examples=40)
    def test_posterior_valid_distribution(self, data, param_seed):
        raw, _ = data
        features = l1_normalize(raw)
        model = MulticlassLogisticRegression(4, 3)
        w = np.random.default_rng(param_seed).normal(size=12) * 3
        probs = model.posterior(w, features)
        assert np.all(probs >= 0)
        assert np.allclose(probs.sum(axis=1), 1.0)


class TestSVMProperties:
    @given(data=batch_strategy(4, 3), param_seed=st.integers(0, 2**31))
    @settings(max_examples=40)
    def test_hinge_swap_bound(self, data, param_seed):
        raw, label_seed = data
        features = l1_normalize(raw)
        n = features.shape[0]
        labels = np.random.default_rng(label_seed).integers(0, 3, n)
        model = MulticlassLinearSVM(4, 3)
        w = np.random.default_rng(param_seed).normal(size=12)

        swapped_features = features.copy()
        swapped_labels = labels.copy()
        alt = np.random.default_rng(param_seed + 7).normal(size=4)
        alt_sum = np.abs(alt).sum()
        swapped_features[0] = alt / alt_sum if alt_sum > 0 else alt
        swapped_labels[0] = (labels[0] + 2) % 3

        g1 = model.gradient(w, features, labels)
        g2 = model.gradient(w, swapped_features, swapped_labels)
        assert np.abs(g1 - g2).sum() <= 4.0 / n + 1e-9

    @given(data=batch_strategy(3, 3), param_seed=st.integers(0, 2**31))
    @settings(max_examples=40)
    def test_hinge_nonnegative(self, data, param_seed):
        raw, label_seed = data
        features = l1_normalize(raw)
        labels = np.random.default_rng(label_seed).integers(0, 3, features.shape[0])
        model = MulticlassLinearSVM(3, 3)
        w = np.random.default_rng(param_seed).normal(size=9)
        assert model.loss(w, features, labels) >= 0.0
