"""Property tests: ``ServerCore.handle_checkins`` ≡ sequential check-ins.

The batch endpoint promises *bit-identical* server state — model
parameters, monitor accumulators, rejection counters, attached accountant
ledger — and the same acks as feeding the messages one at a time through
``handle_checkin`` (catching the rejections), for any device
interleaving, any mix of rejected/stale messages, and stopping rules that
trip mid-batch.  Hypothesis drives the message mix; the comparison is
exact equality, no tolerances.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CheckinMessage, ServerConfig, ServerCore
from repro.models import MulticlassLogisticRegression
from repro.optim import SGD, InverseSqrtRate
from repro.privacy import PrivacyAccountant, ReleaseRecord

NUM_FEATURES = 4
NUM_CLASSES = 3
NUM_PARAMS = NUM_FEATURES * NUM_CLASSES
NUM_DEVICES = 4


def _make_core(max_iterations, target_error):
    model = MulticlassLogisticRegression(NUM_FEATURES, NUM_CLASSES)
    core = ServerCore(
        model,
        optimizer=SGD(model.init_parameters(), schedule=InverseSqrtRate(0.5)),
        config=ServerConfig(
            max_iterations=max_iterations,
            target_error=target_error,
            min_samples_for_error_stop=10,
        ),
        accountant=PrivacyAccountant(),
    )
    tokens = {d: core.register_device(d) for d in range(NUM_DEVICES)}
    return core, tokens


def _build_messages(plan, tokens, seed):
    """Messages from a hypothesis plan: (device, kind) pairs.

    ``kind`` 0 = valid, 1 = bad token, 2 = wrong gradient length —
    "stale" check-out iterations (older than the server state) are the
    norm here since every message claims iteration 0..2.
    """
    rng = np.random.default_rng(seed)
    messages = []
    for device_id, kind in plan:
        num_params = NUM_PARAMS if kind != 2 else NUM_PARAMS + 1
        token = tokens[device_id] if kind != 1 else "forged"
        messages.append(CheckinMessage(
            device_id=device_id,
            token=token,
            gradient=rng.normal(scale=0.1, size=num_params),
            num_samples=int(rng.integers(1, 6)),
            noisy_error_count=int(rng.integers(-1, 4)),
            noisy_label_counts=rng.integers(0, 4, size=NUM_CLASSES),
            checkout_iteration=int(rng.integers(0, 3)),
            releases=(
                ReleaseRecord(epsilon=0.3, mechanism="laplace"),
                ReleaseRecord(epsilon=0.05, mechanism="discrete"),
                ReleaseRecord(epsilon=0.05, mechanism="discrete"),
            ),
        ))
    return messages


def _state(core):
    monitor = core.monitor
    spend = core.accountant.spend()
    return {
        "parameters": core.parameters,
        "iteration": core.iteration,
        "rejected": core.rejected_messages,
        "total_samples": monitor.total_samples,
        "num_checkins": monitor.num_checkins,
        "error_estimate": monitor.raw_error_estimate(),
        "prior": monitor.prior_estimate(),
        "per_sample_epsilon": spend.per_sample_epsilon,
        "total_epsilon": spend.total_epsilon,
        "num_releases": spend.num_releases,
        "ledger": tuple(core.accountant.records),
        "stopped": core.stopped,
        "stop_reason": core.stopping_decision().reason,
    }


def _assert_states_equal(batch, sequential):
    for key in batch:
        b, s = batch[key], sequential[key]
        if isinstance(b, np.ndarray):
            assert np.array_equal(b, s), key  # exact, not approx
        else:
            assert b == s, key


plans = st.lists(
    st.tuples(st.integers(0, NUM_DEVICES - 1),
              st.integers(0, 2)),
    min_size=0, max_size=25,
)


@settings(max_examples=40, deadline=None)
@given(plan=plans, seed=st.integers(0, 2**16),
       max_iterations=st.integers(1, 12),
       use_target=st.booleans())
def test_batch_equals_sequential(plan, seed, max_iterations, use_target):
    target_error = 0.6 if use_target else None
    core_batch, tokens = _make_core(max_iterations, target_error)
    core_seq, _ = _make_core(max_iterations, target_error)
    messages = _build_messages(plan, tokens, seed)

    batch_acks = core_batch.handle_checkins(messages)

    sequential_acks = []
    for message in messages:
        try:
            sequential_acks.append(core_seq.handle_checkin(message))
        except Exception:
            sequential_acks.append(None)

    assert batch_acks == sequential_acks
    _assert_states_equal(_state(core_batch), _state(core_seq))


@settings(max_examples=20, deadline=None)
@given(plan=plans, seed=st.integers(0, 2**16))
def test_batch_equals_per_message_batches(plan, seed):
    """Splitting one batch into singleton batches changes nothing."""
    core_whole, tokens = _make_core(8, None)
    core_split, _ = _make_core(8, None)
    messages = _build_messages(plan, tokens, seed)

    whole_acks = core_whole.handle_checkins(messages)
    split_acks = []
    for message in messages:
        split_acks.extend(core_split.handle_checkins([message]))

    assert whole_acks == split_acks
    _assert_states_equal(_state(core_whole), _state(core_split))


def test_shuffled_device_order_is_order_sensitive_but_consistent():
    """Shuffling the batch permutes the applied updates identically in
    both paths (sanity check that the property above is not vacuous)."""
    plan = [(d, 0) for d in (0, 1, 2, 3, 2, 1, 0)]
    core_a, tokens = _make_core(100, None)
    core_b, _ = _make_core(100, None)
    messages = _build_messages(plan, tokens, seed=9)
    shuffled = [messages[i] for i in (3, 0, 6, 2, 5, 1, 4)]

    core_a.handle_checkins(messages)
    core_b.handle_checkins(shuffled)
    # Same multiset of updates but different order: projected SGD with a
    # decaying rate is order-sensitive, so states may differ...
    assert core_a.iteration == core_b.iteration == 7
    # ...while each path remains deterministic given its order.
    core_c, _ = _make_core(100, None)
    core_c.handle_checkins([m for m in shuffled])
    assert np.array_equal(core_b.parameters, core_c.parameters)


def test_interleaved_rejections_count_once_per_message():
    core, tokens = _make_core(100, None)
    plan = [(0, 1), (1, 0), (2, 2), (3, 0), (0, 1)]
    messages = _build_messages(plan, tokens, seed=1)
    acks = core.handle_checkins(messages)
    assert [a is not None for a in acks] == [False, True, False, True, False]
    assert core.rejected_messages == 3
    assert core.monitor.num_checkins == 2
