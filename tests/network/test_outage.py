"""Tests for network-outage models (Remark 1)."""

import numpy as np
import pytest

from repro.network import BernoulliOutage, BurstyOutage, NoOutage, WindowedOutage
from repro.utils.exceptions import ConfigurationError


class TestNoOutage:
    def test_never_fails(self, rng):
        model = NoOutage()
        assert not any(model.attempt_fails(rng, float(t)) for t in range(100))


class TestBernoulli:
    def test_zero_probability_never_fails(self, rng):
        model = BernoulliOutage(0.0)
        assert not any(model.attempt_fails(rng, 0.0) for _ in range(100))

    def test_one_probability_always_fails(self, rng):
        model = BernoulliOutage(1.0)
        assert all(model.attempt_fails(rng, 0.0) for _ in range(100))

    def test_empirical_rate(self, rng):
        model = BernoulliOutage(0.3)
        fails = sum(model.attempt_fails(rng, 0.0) for _ in range(50_000))
        assert fails / 50_000 == pytest.approx(0.3, rel=0.05)

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            BernoulliOutage(1.5)


class TestWindowed:
    def test_fails_inside_window_only(self, rng):
        model = WindowedOutage([(1.0, 2.0), (5.0, 6.0)])
        assert not model.attempt_fails(rng, 0.5)
        assert model.attempt_fails(rng, 1.5)
        assert not model.attempt_fails(rng, 3.0)
        assert model.attempt_fails(rng, 5.0)  # inclusive start
        assert not model.attempt_fails(rng, 6.0)  # exclusive end

    def test_rejects_inverted_window(self):
        with pytest.raises(ValueError):
            WindowedOutage([(2.0, 1.0)])

    def test_windows_property_sorted(self):
        model = WindowedOutage([(5.0, 6.0), (1.0, 2.0)])
        assert model.windows == [(1.0, 2.0), (5.0, 6.0)]


class TestBursty:
    def test_alternates_states(self, rng):
        model = BurstyOutage(good_mean=10.0, bad_duration=5.0, seed=0, horizon=1000.0)
        outcomes = [model.attempt_fails(rng, float(t)) for t in range(1000)]
        assert any(outcomes)
        assert not all(outcomes)

    def test_deterministic_given_time(self, rng):
        model = BurstyOutage(good_mean=10.0, bad_duration=5.0, seed=0)
        a = [model.attempt_fails(rng, float(t)) for t in range(200)]
        b = [model.attempt_fails(rng, float(t)) for t in range(200)]
        assert a == b

    def test_bad_fraction_roughly_matches(self, rng):
        good, bad = 10.0, 10.0
        model = BurstyOutage(good_mean=good, bad_duration=bad, seed=1, horizon=100_000.0)
        times = np.linspace(0, 99_999, 50_000)
        frac = np.mean([model.attempt_fails(rng, float(t)) for t in times])
        assert frac == pytest.approx(bad / (good + bad), abs=0.1)
