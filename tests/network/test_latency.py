"""Tests for communication-delay models (Section IV-B3, footnote 7)."""

import numpy as np
import pytest

from repro.network import (
    ConstantDelay,
    ExponentialDelay,
    LinkDelays,
    LogNormalDelay,
    UniformDelay,
    ZeroDelay,
)


class TestZeroAndConstant:
    def test_zero(self, rng):
        model = ZeroDelay()
        assert model.sample(rng) == 0.0
        assert model.mean == 0.0

    def test_constant(self, rng):
        model = ConstantDelay(1.5)
        assert model.sample(rng) == 1.5
        assert model.mean == 1.5


class TestUniform:
    def test_range(self, rng):
        model = UniformDelay(2.0)
        draws = np.array([model.sample(rng) for _ in range(2000)])
        assert draws.min() >= 0.0
        assert draws.max() <= 2.0

    def test_mean(self, rng):
        model = UniformDelay(2.0)
        draws = np.array([model.sample(rng) for _ in range(20_000)])
        assert draws.mean() == pytest.approx(1.0, rel=0.05)
        assert model.mean == 1.0

    def test_zero_maximum_degenerates(self, rng):
        model = UniformDelay(0.0)
        assert model.sample(rng) == 0.0

    def test_uniformity(self, rng):
        """Paper: 'delays are sampled randomly and uniformly from [0, τ]'."""
        model = UniformDelay(1.0)
        draws = np.array([model.sample(rng) for _ in range(50_000)])
        hist, _ = np.histogram(draws, bins=10, range=(0, 1))
        assert hist.std() / hist.mean() < 0.05


class TestExponentialAndLogNormal:
    def test_exponential_mean(self, rng):
        model = ExponentialDelay(0.5)
        draws = np.array([model.sample(rng) for _ in range(50_000)])
        assert draws.mean() == pytest.approx(0.5, rel=0.05)

    def test_lognormal_positive_with_offset(self, rng):
        model = LogNormalDelay(median=1.0, sigma=0.5, offset=0.2)
        draws = np.array([model.sample(rng) for _ in range(1000)])
        assert draws.min() >= 0.2

    def test_lognormal_mean_formula(self, rng):
        model = LogNormalDelay(median=1.0, sigma=0.5)
        draws = np.array([model.sample(rng) for _ in range(200_000)])
        assert draws.mean() == pytest.approx(model.mean, rel=0.05)

    def test_lognormal_heavy_tail(self, rng):
        """The lognormal's P95 exceeds the exponential's for equal means."""
        logn = LogNormalDelay(median=1.0, sigma=1.5)
        expo = ExponentialDelay(logn.mean)
        ldraws = np.array([logn.sample(rng) for _ in range(20_000)])
        edraws = np.array([expo.sample(rng) for _ in range(20_000)])
        assert np.quantile(ldraws, 0.99) > np.quantile(edraws, 0.99)


class TestLinkDelays:
    def test_uniform_constructor(self):
        delays = LinkDelays.uniform(3.0)
        assert isinstance(delays.request, UniformDelay)
        assert delays.request.maximum == 3.0
        assert delays.mean_round_trip == pytest.approx(3 * 1.5)

    def test_zero_constructor(self):
        delays = LinkDelays.zero()
        assert delays.mean_round_trip == 0.0

    def test_heterogeneous_legs(self):
        delays = LinkDelays(ZeroDelay(), ConstantDelay(1.0), ConstantDelay(2.0))
        assert delays.mean_round_trip == 3.0
