"""Tests for the transport layer (simulated channels vs direct fused)."""

import numpy as np
import pytest

from repro.data import iid_partition, make_mnist_like
from repro.models import MulticlassLogisticRegression
from repro.network import (
    BernoulliOutage,
    DirectTransport,
    EventQueue,
    LinkDelays,
    NoOutage,
    SimulatedTransport,
)
from repro.network.events import EventQueue as EventQueueClass
from repro.simulation import CrowdSimulator, SimulationConfig
from repro.utils.exceptions import ConfigurationError


class TestSimulatedTransport:
    def test_connect_builds_three_channels(self):
        queue = EventQueue()
        transport = SimulatedTransport(queue, LinkDelays.uniform(1.0))
        link = transport.connect(3, np.random.default_rng(0))
        assert link.request.name == "request-3"
        assert link.checkout.name == "checkout-3"
        assert link.checkin.name == "checkin-3"
        assert not transport.synchronous

    def test_send_travels_through_queue(self):
        queue = EventQueue()
        transport = SimulatedTransport(queue)
        link = transport.connect(0, np.random.default_rng(0))
        received = []
        link.request.send(received.append, args=(42,))
        assert received == []  # not yet delivered
        queue.run()
        assert received == [42]

    def test_dropped_messages_counted_across_legs(self):
        queue = EventQueue()
        transport = SimulatedTransport(queue, outage=BernoulliOutage(1.0))
        link = transport.connect(0, np.random.default_rng(0))
        link.request.send(lambda: None)
        link.checkin.send(lambda: None)
        assert link.messages_dropped == 2


class TestDirectTransport:
    def test_rejects_nonzero_delays(self):
        with pytest.raises(ConfigurationError):
            DirectTransport(LinkDelays.uniform(0.5))

    def test_rejects_lossy_outage(self):
        with pytest.raises(ConfigurationError):
            DirectTransport(LinkDelays.zero(), BernoulliOutage(0.1))

    def test_accepts_zero_delay_reliable(self):
        transport = DirectTransport(LinkDelays.zero(), NoOutage())
        assert transport.synchronous
        link = transport.connect(0)
        assert link.messages_dropped == 0

    def test_counters_track_legs(self):
        link = DirectTransport().connect(0)
        link.note_request(0)
        link.note_checkout(500)
        link.note_checkin(512)
        assert link.request_stats.messages_sent == 1
        assert link.checkout_stats.payload_floats == 500
        assert link.checkin_stats.payload_floats == 512


class TestConfigResolution:
    def test_auto_resolves_by_delay_and_outage(self):
        zero = SimulationConfig(num_devices=2)
        assert zero.resolved_transport() == "direct"
        delayed = SimulationConfig(num_devices=2,
                                   link_delays=LinkDelays.uniform(0.3))
        assert delayed.resolved_transport() == "simulated"
        lossy = SimulationConfig(num_devices=2, outage=BernoulliOutage(0.1))
        assert lossy.resolved_transport() == "simulated"

    def test_uniform_zero_counts_as_zero_delay(self):
        config = SimulationConfig(num_devices=2,
                                  link_delays=LinkDelays.uniform(0.0))
        assert config.direct_transport_eligible

    def test_forced_direct_on_delayed_config_raises(self):
        train, test = make_mnist_like(num_train=40, num_test=20, seed=0)
        parts = iid_partition(train, 2, np.random.default_rng(0))
        config = SimulationConfig(num_devices=2, transport="direct",
                                  link_delays=LinkDelays.uniform(0.5))
        with pytest.raises(ConfigurationError):
            CrowdSimulator(MulticlassLogisticRegression(50, 10),
                           parts, test, config, seed=0)

    def test_invalid_transport_name_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(num_devices=2, transport="carrier-pigeon")


class TestZeroClosures:
    """Hot paths must schedule (bound method, args), never fresh closures."""

    def _run_patched(self, monkeypatch, config):
        callbacks = []
        original = EventQueueClass.schedule

        def recording_schedule(self, time, callback, tag="", args=()):
            callbacks.append(callback)
            return original(self, time, callback, tag, args)

        monkeypatch.setattr(EventQueueClass, "schedule", recording_schedule)
        train, test = make_mnist_like(num_train=60, num_test=20, seed=0)
        parts = iid_partition(train, 3, np.random.default_rng(0))
        CrowdSimulator(MulticlassLogisticRegression(50, 10),
                       parts, test, config, seed=1).run()
        assert callbacks, "simulation scheduled no events"
        return callbacks

    @pytest.mark.parametrize("config_kwargs", [
        dict(batch_size=2, link_delays=LinkDelays.uniform(0.4)),
        dict(batch_size=2, link_delays=LinkDelays.uniform(0.4),
             outage=BernoulliOutage(0.3)),  # outage-retry path
        dict(batch_size=1),                 # direct transport (triggers only)
    ], ids=["delayed", "outage_retry", "direct"])
    def test_no_lambda_per_message(self, monkeypatch, config_kwargs):
        config = SimulationConfig(num_devices=3, num_snapshots=3,
                                  **config_kwargs)
        callbacks = self._run_patched(monkeypatch, config)
        lambdas = [c for c in callbacks
                   if getattr(c, "__name__", "") == "<lambda>"]
        assert lambdas == []
        # Every scheduled callback is a *reused* bound method of the
        # simulator — the distinct callback objects are O(handlers), not
        # O(messages).
        distinct = {id(c) for c in callbacks}
        assert len(distinct) <= 4

    def test_channel_send_passes_callback_through_unwrapped(self):
        from repro.network import Channel

        queue = EventQueue()
        channel = Channel(queue, rng=np.random.default_rng(0))
        scheduled = []
        original_schedule = queue.schedule_after
        queue.schedule_after = (
            lambda delay, callback, tag="", args=(): (
                scheduled.append((callback, args)),
                original_schedule(delay, callback, tag, args),
            )[-1]
        )

        def receiver(value):
            pass

        for value in range(50):
            channel.send(receiver, args=(value,))
        assert all(callback is receiver for callback, _ in scheduled)
        assert [args for _, args in scheduled] == [(v,) for v in range(50)]
