"""Tests for the delayed, lossy message channel."""

import numpy as np
import pytest

from repro.network import (
    BernoulliOutage,
    Channel,
    ConstantDelay,
    EventQueue,
    UniformDelay,
)


@pytest.fixture
def queue():
    return EventQueue()


class TestDelivery:
    def test_zero_delay_delivery(self, queue, rng):
        channel = Channel(queue, rng=rng)
        received = []
        channel.send(lambda: received.append(queue.now))
        queue.run()
        assert received == [0.0]

    def test_constant_delay(self, queue, rng):
        channel = Channel(queue, ConstantDelay(2.5), rng=rng)
        received = []
        channel.send(lambda: received.append(queue.now))
        queue.run()
        assert received == [2.5]

    def test_uniform_delay_within_bounds(self, queue, rng):
        channel = Channel(queue, UniformDelay(1.0), rng=rng)
        received = []
        for _ in range(100):
            channel.send(lambda: received.append(queue.now))
        queue.run()
        assert all(0.0 <= t <= 1.0 for t in received)

    def test_messages_can_reorder(self, rng):
        """Independent per-message delays allow overtaking — the source of
        gradient staleness in the asynchronous protocol."""
        queue = EventQueue()
        channel = Channel(queue, UniformDelay(10.0), rng=np.random.default_rng(3))
        order = []
        for tag in range(20):
            channel.send(lambda tag=tag: order.append(tag))
        queue.run()
        assert order != sorted(order)


class TestDrops:
    def test_dropped_message_never_delivers(self, queue, rng):
        channel = Channel(queue, outage_model=BernoulliOutage(1.0), rng=rng)
        received, dropped = [], []
        sent = channel.send(lambda: received.append(1), on_drop=lambda: dropped.append(1))
        queue.run()
        assert sent is False
        assert received == []
        assert dropped == [1]

    def test_send_returns_true_on_success(self, queue, rng):
        channel = Channel(queue, rng=rng)
        assert channel.send(lambda: None) is True


class TestStats:
    def test_counters(self, queue, rng):
        channel = Channel(queue, outage_model=BernoulliOutage(0.5),
                          rng=np.random.default_rng(0))
        for _ in range(200):
            channel.send(lambda: None, payload_floats=10)
        queue.run()
        stats = channel.stats
        assert stats.messages_sent == 200
        assert stats.payload_floats == 2000
        assert 0 < stats.messages_dropped < 200
        assert stats.messages_delivered == 200 - stats.messages_dropped

    def test_mean_delay(self, queue):
        channel = Channel(queue, ConstantDelay(2.0), rng=np.random.default_rng(0))
        for _ in range(5):
            channel.send(lambda: None)
        queue.run()
        assert channel.stats.mean_delay == pytest.approx(2.0)

    def test_mean_delay_zero_when_nothing_delivered(self, queue, rng):
        channel = Channel(queue, outage_model=BernoulliOutage(1.0), rng=rng)
        channel.send(lambda: None)
        assert channel.stats.mean_delay == 0.0


class TestArgsSlots:
    """send() carries (callback, args) end to end — no wrapper closures."""

    def test_args_forwarded_to_delivery(self, queue, rng):
        channel = Channel(queue, rng=rng)
        received = []
        channel.send(lambda a, b: received.append((a, b)), args=(1, "x"))
        queue.run()
        assert received == [(1, "x")]

    def test_drop_args_forwarded_on_outage(self, queue, rng):
        channel = Channel(queue, outage_model=BernoulliOutage(1.0), rng=rng)
        dropped = []
        sent = channel.send(
            lambda: None, on_drop=dropped.append, drop_args=("lost",),
        )
        assert sent is False
        assert dropped == ["lost"]

    def test_same_callback_many_messages(self, queue, rng):
        channel = Channel(queue, rng=rng)
        received = []
        for index in range(10):
            channel.send(received.append, args=(index,))
        queue.run()
        assert received == list(range(10))
