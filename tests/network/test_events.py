"""Tests for the discrete-event queue."""

import pytest

from repro.network.events import EventQueue
from repro.utils.exceptions import ConfigurationError


class TestScheduling:
    def test_fires_in_time_order(self):
        queue = EventQueue()
        fired = []
        queue.schedule(2.0, lambda: fired.append("late"))
        queue.schedule(1.0, lambda: fired.append("early"))
        queue.run()
        assert fired == ["early", "late"]

    def test_ties_break_by_insertion_order(self):
        queue = EventQueue()
        fired = []
        for name in "abc":
            queue.schedule(1.0, lambda n=name: fired.append(n))
        queue.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        queue = EventQueue()
        seen = []
        queue.schedule(3.5, lambda: seen.append(queue.now))
        queue.run()
        assert seen == [3.5]
        assert queue.now == 3.5

    def test_schedule_after_is_relative(self):
        queue = EventQueue()
        times = []
        queue.schedule(1.0, lambda: queue.schedule_after(0.5, lambda: times.append(queue.now)))
        queue.run()
        assert times == [1.5]

    def test_rejects_past_events(self):
        queue = EventQueue()
        queue.schedule(1.0, lambda: None)
        queue.run()
        with pytest.raises(ConfigurationError):
            queue.schedule(0.5, lambda: None)

    def test_rejects_negative_delay(self):
        with pytest.raises(ConfigurationError):
            EventQueue().schedule_after(-0.1, lambda: None)

    def test_events_scheduled_during_run_fire(self):
        queue = EventQueue()
        fired = []
        queue.schedule(1.0, lambda: queue.schedule_after(1.0, lambda: fired.append("child")))
        queue.run()
        assert fired == ["child"]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        queue = EventQueue()
        fired = []
        handle = queue.schedule(1.0, lambda: fired.append("x"))
        handle.cancel()
        queue.run()
        assert fired == []
        assert handle.cancelled

    def test_cancel_after_fire_is_noop(self):
        queue = EventQueue()
        handle = queue.schedule(1.0, lambda: None)
        queue.run()
        handle.cancel()  # must not raise

    def test_pending_excludes_cancelled(self):
        queue = EventQueue()
        queue.schedule(1.0, lambda: None)
        handle = queue.schedule(2.0, lambda: None)
        handle.cancel()
        assert queue.pending == 1


class TestRunControls:
    def test_run_until_horizon(self):
        queue = EventQueue()
        fired = []
        queue.schedule(1.0, lambda: fired.append(1))
        queue.schedule(5.0, lambda: fired.append(5))
        count = queue.run(until=2.0)
        assert count == 1
        assert fired == [1]
        assert queue.now == 2.0  # clock advances to horizon
        queue.run()
        assert fired == [1, 5]

    def test_event_exactly_at_horizon_fires(self):
        queue = EventQueue()
        fired = []
        queue.schedule(2.0, lambda: fired.append("edge"))
        queue.run(until=2.0)
        assert fired == ["edge"]

    def test_max_events_budget(self):
        queue = EventQueue()
        fired = []
        for i in range(10):
            queue.schedule(float(i), lambda i=i: fired.append(i))
        queue.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_step_returns_false_when_empty(self):
        assert EventQueue().step() is False

    def test_fired_counter(self):
        queue = EventQueue()
        for i in range(4):
            queue.schedule(float(i), lambda: None)
        queue.run()
        assert queue.fired == 4

    def test_run_returns_fired_count(self):
        queue = EventQueue()
        for i in range(7):
            queue.schedule(float(i), lambda: None)
        assert queue.run() == 7


class TestPendingCounter:
    """``pending`` is a live O(1) counter, not a heap scan."""

    def test_counts_scheduled_events(self):
        queue = EventQueue()
        for i in range(5):
            queue.schedule(float(i), lambda: None)
        assert queue.pending == 5

    def test_decrements_on_fire(self):
        queue = EventQueue()
        for i in range(3):
            queue.schedule(float(i), lambda: None)
        queue.step()
        assert queue.pending == 2
        queue.run()
        assert queue.pending == 0

    def test_decrements_on_cancel(self):
        queue = EventQueue()
        handle = queue.schedule(1.0, lambda: None)
        queue.schedule(2.0, lambda: None)
        assert queue.pending == 2
        handle.cancel()
        assert queue.pending == 1

    def test_double_cancel_decrements_once(self):
        queue = EventQueue()
        handle = queue.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert queue.pending == 0

    def test_cancel_after_fire_does_not_decrement(self):
        queue = EventQueue()
        handle = queue.schedule(1.0, lambda: None)
        queue.schedule(2.0, lambda: None)
        queue.step()
        handle.cancel()
        assert queue.pending == 1

    def test_events_scheduled_during_callbacks_are_counted(self):
        queue = EventQueue()
        queue.schedule(1.0, lambda: queue.schedule(2.0, lambda: None))
        queue.step()
        assert queue.pending == 1


class TestArgsSlots:
    """Hot paths pass a bound callback plus args instead of a closure."""

    def test_args_are_passed_through(self):
        queue = EventQueue()
        fired = []
        queue.schedule(1.0, lambda a, b: fired.append((a, b)), args=("x", 3))
        queue.schedule_after(2.0, fired.append, args=("tail",))
        queue.run()
        assert fired == [("x", 3), "tail"]


class TestTakeMatching:
    """Draining contiguous same-timestamp events from inside a handler."""

    def test_takes_contiguous_same_time_same_callback(self):
        queue = EventQueue()
        fired = []

        def deliver(tag):
            fired.append(tag)
            # Drain everything contiguous at this timestamp.
            taken = queue.take_matching(deliver)
            while taken is not None:
                fired.append(("drained", *taken))
                taken = queue.take_matching(deliver)

        queue.schedule(1.0, deliver, args=("a",))
        queue.schedule(1.0, deliver, args=("b",))
        queue.schedule(1.0, deliver, args=("c",))
        count = queue.run()
        # One dispatch; the other two were consumed by take_matching.
        assert fired == ["a", ("drained", "b"), ("drained", "c")]
        assert count == 1
        assert queue.fired == 3  # drained events still count as fired
        assert queue.pending == 0

    def test_stops_at_different_callback(self):
        queue = EventQueue()
        order = []

        def deliver(tag):
            order.append(tag)
            taken = queue.take_matching(deliver)
            while taken is not None:
                order.append(("drained", *taken))
                taken = queue.take_matching(deliver)

        def other(tag):
            order.append(("other", tag))

        queue.schedule(1.0, deliver, args=("a",))
        queue.schedule(1.0, other, args=("x",))
        queue.schedule(1.0, deliver, args=("b",))
        queue.run()
        # "b" is NOT drained: "other" sits between them, so firing order
        # is preserved exactly.
        assert order == ["a", ("other", "x"), "b"]

    def test_stops_at_later_timestamp(self):
        queue = EventQueue()
        seen = []

        def deliver(tag):
            seen.append((queue.now, tag))
            taken = queue.take_matching(deliver)
            while taken is not None:
                seen.append((queue.now, "drained", *taken))
                taken = queue.take_matching(deliver)

        queue.schedule(1.0, deliver, args=("a",))
        queue.schedule(2.0, deliver, args=("b",))
        queue.run()
        assert seen == [(1.0, "a"), (2.0, "b")]

    def test_skips_cancelled_events(self):
        queue = EventQueue()
        taken_args = []

        def deliver(tag):
            taken = queue.take_matching(deliver)
            while taken is not None:
                taken_args.append(taken)
                taken = queue.take_matching(deliver)

        queue.schedule(1.0, deliver, args=("head",))
        cancelled = queue.schedule(1.0, deliver, args=("gone",))
        queue.schedule(1.0, deliver, args=("kept",))
        cancelled.cancel()
        queue.run()
        assert taken_args == [("kept",)]
        assert queue.pending == 0

    def test_empty_queue_returns_none(self):
        queue = EventQueue()
        assert queue.take_matching(lambda: None) is None
