"""Tests for ridge regression (the framework's regression instantiation)."""

import numpy as np
import pytest

from repro.models import RidgeRegression
from repro.utils.exceptions import ConfigurationError


@pytest.fixture
def model():
    return RidgeRegression(num_features=3, l2_regularization=0.01)


class TestBasics:
    def test_num_parameters(self, model):
        assert model.num_parameters == 3

    def test_predict_linear(self, model):
        w = np.array([1.0, 2.0, -1.0])
        x = np.array([[1.0, 1.0, 1.0]])
        assert model.predict(w, x)[0] == pytest.approx(2.0)

    def test_real_valued_labels_accepted(self, model):
        loss = model.loss(np.zeros(3), np.array([[0.1, 0.2, 0.3]]), np.array([0.75]))
        assert loss == pytest.approx(0.5 * 0.75**2 + 0.0)

    def test_rejects_wrong_parameter_shape(self, model):
        with pytest.raises(ValueError):
            model.predict(np.zeros(5), np.zeros((1, 3)))


class TestGradient:
    def test_matches_finite_differences_inside_clip(self, rng):
        model = RidgeRegression(3, l2_regularization=0.1, residual_bound=100.0)
        w = rng.normal(size=3) * 0.1
        features = rng.normal(size=(8, 3)) * 0.1
        labels = rng.normal(size=8) * 0.1
        analytic = model.gradient(w, features, labels)
        step = 1e-6
        numeric = np.zeros(3)
        for i in range(3):
            plus, minus = w.copy(), w.copy()
            plus[i] += step
            minus[i] -= step
            numeric[i] = (
                model.loss(plus, features, labels) - model.loss(minus, features, labels)
            ) / (2 * step)
        assert np.allclose(analytic, numeric, atol=1e-5)

    def test_residual_clipping_bounds_gradient(self):
        model = RidgeRegression(2, residual_bound=1.0)
        features = np.array([[1.0, 0.0]])
        labels = np.array([1000.0])  # huge residual, must be clipped
        g = model.gradient(np.zeros(2), features, labels)
        assert np.abs(g).sum() <= 1.0 + 1e-12

    def test_sensitivity_formula(self):
        model = RidgeRegression(2, residual_bound=2.0)
        assert model.gradient_sensitivity(10) == pytest.approx(2 * 2.0 / 10)

    def test_empirical_swap_bound(self, rng):
        model = RidgeRegression(4, residual_bound=1.0)
        b = 5
        worst = 0.0
        for _ in range(50):
            w = rng.normal(size=4)
            features = rng.normal(size=(b, 4))
            features /= np.abs(features).sum(axis=1, keepdims=True)
            labels = rng.normal(size=b)
            features2, labels2 = features.copy(), labels.copy()
            alt = rng.normal(size=4)
            features2[0] = alt / np.abs(alt).sum()
            labels2[0] = -labels[0]
            g1 = model.gradient(w, features, labels)
            g2 = model.gradient(w, features2, labels2)
            worst = max(worst, np.abs(g1 - g2).sum())
        assert worst <= model.gradient_sensitivity(b) + 1e-9


class TestLearning:
    def test_recovers_linear_relation(self, rng):
        true_w = np.array([0.5, -0.3, 0.2])
        features = rng.normal(size=(200, 3)) * 0.3
        labels = features @ true_w
        model = RidgeRegression(3, residual_bound=10.0)
        w = model.init_parameters()
        for _ in range(3000):
            w = w - 0.5 * model.gradient(w, features, labels)
        assert np.allclose(w, true_w, atol=0.01)

    def test_error_rate_uses_tolerance(self):
        model = RidgeRegression(1, error_tolerance=0.5)
        w = np.array([1.0])
        features = np.array([[1.0], [1.0]])
        labels = np.array([1.2, 3.0])  # errors: 0.2 (ok), 2.0 (miss)
        assert model.error_rate(w, features, labels) == 0.5
        assert model.misclassified_count(w, features, labels) == 1

    def test_rejects_bad_residual_bound(self):
        with pytest.raises(ConfigurationError):
            RidgeRegression(3, residual_bound=0.0)
