"""Tests for multiclass logistic regression (Table I) — E8 of DESIGN.md."""

import numpy as np
import pytest

from repro.models import MulticlassLogisticRegression
from repro.utils.exceptions import ConfigurationError
from repro.utils.numerics import softmax


def finite_difference_gradient(model, parameters, features, labels, step=1e-6):
    """Central-difference gradient of the model's loss."""
    grad = np.zeros_like(parameters)
    for i in range(parameters.shape[0]):
        plus = parameters.copy()
        plus[i] += step
        minus = parameters.copy()
        minus[i] -= step
        grad[i] = (
            model.loss(plus, features, labels) - model.loss(minus, features, labels)
        ) / (2 * step)
    return grad


@pytest.fixture
def model():
    return MulticlassLogisticRegression(num_features=4, num_classes=3,
                                        l2_regularization=0.1)


@pytest.fixture
def batch(rng):
    features = rng.normal(size=(12, 4))
    features /= np.abs(features).sum(axis=1, keepdims=True)
    labels = rng.integers(0, 3, 12)
    return features, labels


class TestShapes:
    def test_num_parameters(self, model):
        assert model.num_parameters == 12

    def test_init_zeros(self, model):
        assert np.array_equal(model.init_parameters(), np.zeros(12))

    def test_init_randomized(self, model, rng):
        w = model.init_parameters(rng, scale=0.1)
        assert w.shape == (12,)
        assert not np.allclose(w, 0.0)

    def test_predict_shape(self, model, batch):
        features, _ = batch
        assert model.predict(np.zeros(12), features).shape == (12,)

    def test_posterior_rows_sum_to_one(self, model, batch, rng):
        features, _ = batch
        w = rng.normal(size=12)
        probs = model.posterior(w, features)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_rejects_wrong_parameter_shape(self, model, batch):
        features, labels = batch
        with pytest.raises(ValueError):
            model.predict(np.zeros(5), features)

    def test_rejects_wrong_feature_dim(self, model):
        with pytest.raises(ConfigurationError):
            model.predict(np.zeros(12), np.zeros((2, 7)))


class TestTableIFormulas:
    def test_prediction_is_argmax_of_scores(self, model, batch, rng):
        features, _ = batch
        w = rng.normal(size=12)
        scores = features @ w.reshape(3, 4).T
        assert np.array_equal(model.predict(w, features), scores.argmax(axis=1))

    def test_loss_at_zero_is_log_c(self, model, batch):
        """With w = 0 all classes are equally likely: loss = log C."""
        features, labels = batch
        plain = MulticlassLogisticRegression(4, 3)  # no regularization
        assert plain.loss(np.zeros(12), features, labels) == pytest.approx(np.log(3.0))

    def test_gradient_matches_finite_differences(self, model, batch, rng):
        features, labels = batch
        w = rng.normal(size=12)
        analytic = model.gradient(w, features, labels)
        numeric = finite_difference_gradient(model, w, features, labels)
        assert np.allclose(analytic, numeric, atol=1e-5)

    def test_gradient_matches_table_i_closed_form(self, model, batch, rng):
        """∇_{w_k} = (1/N) Σ_i x_i [P(y=k|x_i) − I[y_i=k]] + λ w_k."""
        features, labels = batch
        w = rng.normal(size=12)
        probs = softmax(features @ w.reshape(3, 4).T, axis=1)
        expected = np.zeros((3, 4))
        for i in range(features.shape[0]):
            for k in range(3):
                coeff = probs[i, k] - (1.0 if labels[i] == k else 0.0)
                expected[k] += coeff * features[i]
        expected = expected / features.shape[0] + 0.1 * w.reshape(3, 4)
        assert np.allclose(model.gradient(w, features, labels), expected.reshape(-1))

    def test_regularization_term_in_loss(self, batch, rng):
        features, labels = batch
        w = rng.normal(size=12)
        plain = MulticlassLogisticRegression(4, 3)
        reg = MulticlassLogisticRegression(4, 3, l2_regularization=0.5)
        diff = reg.loss(w, features, labels) - plain.loss(w, features, labels)
        assert diff == pytest.approx(0.25 * np.dot(w, w))

    def test_gradient_zero_at_optimum_of_separable_problem(self):
        """On a tiny separable problem, SGD drives the gradient toward 0."""
        model = MulticlassLogisticRegression(2, 2, l2_regularization=0.1)
        features = np.array([[0.9, 0.1], [0.1, 0.9]] * 5)
        labels = np.array([0, 1] * 5)
        w = np.zeros(4)
        for _ in range(2000):
            w = w - 0.5 * model.gradient(w, features, labels)
        assert np.linalg.norm(model.gradient(w, features, labels)) < 1e-6


class TestPerSampleGradients:
    def test_mean_matches_batch_gradient(self, batch, rng):
        features, labels = batch
        plain = MulticlassLogisticRegression(4, 3)  # data term only
        w = rng.normal(size=12)
        per_sample = plain.per_sample_gradients(w, features, labels)
        assert per_sample.shape == (12, 12)
        assert np.allclose(per_sample.mean(axis=0), plain.gradient(w, features, labels))

    def test_per_sample_l1_bound(self, batch, rng):
        """Each sample's gradient has ‖g_i‖₁ = ‖x‖₁·2(1−P_y) ≤ 2."""
        features, labels = batch
        plain = MulticlassLogisticRegression(4, 3)
        w = rng.normal(size=12)
        per_sample = plain.per_sample_gradients(w, features, labels)
        assert np.all(np.abs(per_sample).sum(axis=1) <= 2.0 + 1e-12)


class TestLearning:
    def test_learns_linearly_separable_data(self, small_dataset):
        model = MulticlassLogisticRegression(4, 3)
        w = model.init_parameters()
        for _ in range(300):
            w = w - 1.0 * model.gradient(
                w, small_dataset.features, small_dataset.labels
            )
        assert model.error_rate(w, small_dataset.features, small_dataset.labels) == 0.0

    def test_error_rate_and_count_consistent(self, small_dataset, rng):
        model = MulticlassLogisticRegression(4, 3)
        w = rng.normal(size=12)
        rate = model.error_rate(w, small_dataset.features, small_dataset.labels)
        count = model.misclassified_count(
            w, small_dataset.features, small_dataset.labels
        )
        assert rate == pytest.approx(count / len(small_dataset))


class TestErrorsAndGradientFusion:
    """The fused oracle must be bit-identical to the separate oracles.

    The device hot path (and therefore every stored figure result) relies
    on this contract (see Model.errors_and_gradient); the cross-path
    equivalence suite cannot catch a violation because both arrival modes
    run the fused code.
    """

    def _batches(self):
        rng = np.random.default_rng(11)
        for n, l2 in ((1, 0.0), (7, 0.0), (64, 1e-4), (200, 0.3)):
            model = MulticlassLogisticRegression(12, 5, l2_regularization=l2)
            w = rng.normal(size=model.num_parameters)
            X = rng.normal(size=(n, 12)) / 24
            y = rng.integers(0, 5, size=n)
            yield model, w, X, y

    def test_bit_identical_to_separate_oracles(self):
        for model, w, X, y in self._batches():
            errors, gradient = model.errors_and_gradient(w, X, y)
            assert np.array_equal(errors, model.prediction_errors(w, X, y))
            assert np.array_equal(gradient, model.gradient(w, X, y))

    def test_bit_identical_to_base_default(self):
        from repro.models.base import Model

        for model, w, X, y in self._batches():
            fused = model.errors_and_gradient(w, X, y)
            default = Model.errors_and_gradient(model, w, X, y)
            assert np.array_equal(fused[0], default[0])
            assert np.array_equal(fused[1], default[1])
