"""Tests for the multiclass linear SVM (Crammer-Singer hinge)."""

import numpy as np
import pytest

from repro.models import MulticlassLinearSVM


@pytest.fixture
def model():
    return MulticlassLinearSVM(num_features=4, num_classes=3, l2_regularization=0.05)


@pytest.fixture
def batch(rng):
    features = rng.normal(size=(10, 4))
    features /= np.abs(features).sum(axis=1, keepdims=True)
    labels = rng.integers(0, 3, 10)
    return features, labels


class TestHingeLoss:
    def test_loss_at_zero_is_one(self, batch):
        """With w = 0 every margin is violated by exactly 1."""
        features, labels = batch
        plain = MulticlassLinearSVM(4, 3)
        assert plain.loss(np.zeros(12), features, labels) == pytest.approx(1.0)

    def test_zero_loss_when_margin_satisfied(self):
        plain = MulticlassLinearSVM(2, 2)
        w = np.array([10.0, 0.0, 0.0, 10.0])  # class scores: 10*x_k
        features = np.array([[1.0, 0.0], [0.0, 1.0]])
        labels = np.array([0, 1])
        assert plain.loss(w, features, labels) == 0.0

    def test_loss_is_max_violation_form(self):
        plain = MulticlassLinearSVM(2, 3)
        w = np.array([1.0, 0.0, 0.0, 1.0, 0.5, 0.5])
        x = np.array([[1.0, 0.0]])
        y = np.array([0])
        # scores: [1.0, 0.0, 0.5]; rival max = 0.5 -> hinge = 1 + 0.5 - 1.0.
        assert plain.loss(w, x, y) == pytest.approx(0.5)

    def test_subgradient_is_valid_descent_direction(self, model, batch, rng):
        """Moving against the subgradient decreases the loss locally."""
        features, labels = batch
        w = rng.normal(size=12)
        g = model.gradient(w, features, labels)
        before = model.loss(w, features, labels)
        after = model.loss(w - 1e-4 * g, features, labels)
        assert after <= before + 1e-12

    def test_subgradient_zero_in_flat_region(self):
        plain = MulticlassLinearSVM(2, 2)
        w = np.array([10.0, 0.0, -10.0, 0.0])
        features = np.array([[1.0, 0.0]])
        labels = np.array([0])
        # Margin comfortably satisfied: subgradient (no reg) is zero.
        assert np.allclose(plain.gradient(w, features, labels), 0.0)

    def test_gradient_includes_regularization(self, batch, rng):
        features, labels = batch
        plain = MulticlassLinearSVM(4, 3)
        reg = MulticlassLinearSVM(4, 3, l2_regularization=0.5)
        w = rng.normal(size=12)
        diff = reg.gradient(w, features, labels) - plain.gradient(w, features, labels)
        assert np.allclose(diff, 0.5 * w)


class TestSensitivity:
    def test_same_bound_as_logistic(self, model):
        assert model.gradient_sensitivity(8) == pytest.approx(0.5)

    def test_empirical_swap_bound(self, rng):
        """One-sample swap moves the averaged subgradient by ≤ 4/b."""
        model = MulticlassLinearSVM(5, 4)
        b = 6
        worst = 0.0
        for _ in range(50):
            w = rng.normal(size=20)
            features = rng.normal(size=(b, 5))
            features /= np.abs(features).sum(axis=1, keepdims=True)
            labels = rng.integers(0, 4, b)
            features2, labels2 = features.copy(), labels.copy()
            alt = rng.normal(size=5)
            features2[0] = alt / np.abs(alt).sum()
            labels2[0] = (labels[0] + 2) % 4
            g1 = model.gradient(w, features, labels)
            g2 = model.gradient(w, features2, labels2)
            worst = max(worst, np.abs(g1 - g2).sum())
        assert worst <= 4.0 / b + 1e-9


class TestLearning:
    def test_learns_separable_data(self, small_dataset):
        model = MulticlassLinearSVM(4, 3)
        w = model.init_parameters()
        for _ in range(500):
            w = w - 0.5 * model.gradient(
                w, small_dataset.features, small_dataset.labels
            )
        assert (
            model.error_rate(w, small_dataset.features, small_dataset.labels) <= 0.05
        )

    def test_predict_is_argmax(self, model, batch, rng):
        features, _ = batch
        w = rng.normal(size=12)
        scores = features @ w.reshape(3, 4).T
        assert np.array_equal(model.predict(w, features), scores.argmax(axis=1))
