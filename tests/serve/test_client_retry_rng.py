"""Seedable retry jitter: deterministic backoff schedules for campaigns."""

import random

import pytest

from repro.serve import wire
from repro.serve.client import RemoteServiceError, ServiceClient


def failing_client(monkeypatch, recorded, retry_rng, retries=4):
    client = ServiceClient("http://127.0.0.1:9", retries=retries,
                           backoff=0.05, backoff_max=0.4,
                           retry_rng=retry_rng)

    def always_down(method, path, body):
        raise RemoteServiceError(
            wire.ErrorCode.UNREACHABLE, "injected: endpoint down"
        )

    monkeypatch.setattr(client, "_call_once", always_down)
    monkeypatch.setattr("repro.serve.client.time.sleep", recorded.append)
    return client


def drive(monkeypatch, retry_rng):
    sleeps = []
    client = failing_client(monkeypatch, sleeps, retry_rng)
    with pytest.raises(RemoteServiceError):
        client.status()
    return sleeps


class TestRetryRngSeeding:
    def test_same_seed_same_backoff_schedule(self, monkeypatch):
        assert drive(monkeypatch, 42) == drive(monkeypatch, 42)

    def test_different_seeds_differ(self, monkeypatch):
        assert drive(monkeypatch, 1) != drive(monkeypatch, 2)

    def test_schedule_shape(self, monkeypatch):
        sleeps = drive(monkeypatch, 7)
        assert len(sleeps) == 4  # one sleep per retry
        # Exponential base with up to +25% jitter, capped at backoff_max.
        for base, actual in zip((0.05, 0.1, 0.2, 0.4), sleeps):
            assert base <= actual <= base * 1.25 + 1e-12

    def test_random_instance_used_directly(self, monkeypatch):
        rng = random.Random(99)
        expected = [
            min(0.05 * 2**i, 0.4) * (1.0 + 0.25 * random.Random(99).random())
            for i in range(1)
        ]
        sleeps = drive(monkeypatch, rng)
        assert sleeps[0] == pytest.approx(expected[0])

    def test_unseeded_default_still_works(self, monkeypatch):
        sleeps = drive(monkeypatch, None)
        assert len(sleeps) == 4
