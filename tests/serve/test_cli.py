"""Tests for the ``repro-serve`` console entry point."""

import os
import re
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.core.protocol import CheckoutRequest
from repro.serve import ServiceClient, wire
from repro.serve.cli import build_parser, build_service

REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "src",
)


class TestBuildService:
    def test_defaults_and_ephemeral_port(self):
        args = build_parser().parse_args(
            ["--num-features", "5", "--num-classes", "3", "--port", "0"]
        )
        service = build_service(args)
        try:
            assert service.port > 0
            assert service.core.model.num_parameters == 15
            assert service.core.config.max_iterations == 10**9
        finally:
            # stop() before start() must release the port, not deadlock.
            service.stop()

    def test_pre_registration_and_closed_join(self):
        args = build_parser().parse_args(
            ["--num-features", "4", "--num-classes", "2", "--port", "0",
             "--register", "3", "--no-join", "--max-iterations", "50",
             "--target-error", "0.25"]
        )
        service = build_service(args)
        with service:
            assert service.core.registry.num_registered == 3
            assert service.core.config.target_error == 0.25
            client = ServiceClient(service.url)
            with pytest.raises(Exception):
                client.join(9)
            token = service.core.registry.register(1)
            response = client.checkout(CheckoutRequest(1, token, 0.0))
            assert response.parameters.shape == (8,)

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["--num-features", "4", "--num-classes", "2",
                 "--model", "transformer"]
            )


class TestConsoleScript:
    def test_announces_url_and_serves(self):
        """Launch the real process, scrape the announced port, drive it."""
        env = dict(os.environ)
        env["PYTHONPATH"] = REPO_SRC + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.serve.cli",
             "--num-features", "4", "--num-classes", "2", "--port", "0"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env,
        )
        try:
            line = process.stdout.readline()
            match = re.match(r"serving on (http://127\.0\.0\.1:\d+)$", line.strip())
            assert match, f"unexpected announcement: {line!r}"
            url = match.group(1)
            client = ServiceClient(url, timeout=10)
            deadline = time.time() + 10
            status = None
            while time.time() < deadline:
                try:
                    status = client.status()
                    break
                except Exception:
                    time.sleep(0.05)
            assert status is not None, "server never became reachable"
            assert status.protocol_version == wire.PROTOCOL_VERSION
            token = client.join(0)
            response = client.checkout(CheckoutRequest(0, token, 0.0))
            assert np.array_equal(response.parameters, np.zeros(8))
        finally:
            process.send_signal(signal.SIGTERM)
            try:
                process.wait(timeout=30)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=30)
        stderr = process.stderr.read()
        assert process.returncode == 0, (
            f"repro-serve exited {process.returncode}; stderr:\n{stderr}"
        )
        assert "served" in stderr  # the shutdown summary line ran
