"""Keep-alive discipline of :class:`ServiceClient`.

One pooled connection per thread, requests ride it back to back
(``reuse_ratio`` ≫ 1); a stale pooled socket triggers a transparent
reconnect-and-replay that is *not* a retry; genuinely transient failures
retry with backoff; typed 4xx answers never do.
"""

from __future__ import annotations

import socket
import threading

import pytest

from repro.core.config import ServerConfig
from repro.core.protocol import CheckoutRequest
from repro.core.server_core import ServerCore
from repro.models import MulticlassLogisticRegression
from repro.serve import wire
from repro.serve.client import (
    RemoteAuthenticationError,
    RemoteServiceError,
    ServiceClient,
)
from repro.serve.service import CrowdService


def make_service(port: int = 0) -> CrowdService:
    core = ServerCore(
        MulticlassLogisticRegression(num_features=4, num_classes=3),
        config=ServerConfig(max_iterations=10_000),
    )
    return CrowdService(core, port=port)


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def test_requests_reuse_one_connection():
    with make_service() as service:
        client = ServiceClient(service.url, timeout=5.0)
        client.join(0)
        for _ in range(24):
            client.status()
        assert client.requests_sent == 25
        assert client.connections_opened == 1
        assert client.reuse_ratio == 25.0
        assert client.reconnects == 0


def test_each_thread_gets_its_own_connection():
    with make_service() as service:
        client = ServiceClient(service.url, timeout=5.0)
        barrier = threading.Barrier(2)

        def worker():
            barrier.wait()
            for _ in range(5):
                client.status()

        threads = [threading.Thread(target=worker) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert client.requests_sent == 10
        assert client.connections_opened == 2


def one_shot_keepalive_stub(port: int) -> threading.Thread:
    """Serve one valid keep-alive ``/v1/status`` response, then hang up.

    The client pools the connection (the response did not announce a
    close); the silent FIN afterwards makes that pooled socket stale —
    the deterministic trigger for the reconnect-and-replay path.
    """
    from repro.core.stopping import StopDecision

    body = wire.encode_status(
        iteration=0, stop=StopDecision.running(), checkouts_served=0,
        rejected_messages=0, registered_devices=0, num_parameters=15,
    ).encode("utf-8")
    listener = socket.socket()
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind(("127.0.0.1", port))
    listener.listen(1)

    def serve_once():
        conn, _ = listener.accept()
        conn.recv(65536)
        conn.sendall(
            b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n"
            b"Content-Length: " + str(len(body)).encode() + b"\r\n\r\n" + body
        )
        conn.close()  # keep-alive promised, then a silent FIN
        listener.close()

    thread = threading.Thread(target=serve_once)
    thread.start()
    return thread


def test_stale_socket_reconnect_is_not_a_retry():
    port = free_port()
    stub = one_shot_keepalive_stub(port)
    client = ServiceClient(f"http://127.0.0.1:{port}", timeout=5.0)
    assert client.status().iteration == 0
    stub.join()
    # The real service takes over the address; the pooled socket is dead.
    service = make_service(port)
    service.start()
    try:
        assert client.status().iteration == 0
        assert client.reconnects == 1
        assert client.retries_used == 0  # transparent, not a retry
        assert client.connections_opened == 2
    finally:
        service.stop()


def test_fresh_socket_failure_is_transient_not_stale():
    # Nothing listening: a fresh-socket failure surfaces as unreachable
    # after exhausting retries — never as a silent reconnect loop.
    port = free_port()
    client = ServiceClient(f"http://127.0.0.1:{port}", timeout=1.0,
                           retries=2, backoff=0.01, backoff_max=0.02)
    with pytest.raises(RemoteServiceError) as excinfo:
        client.status()
    assert excinfo.value.code == wire.ErrorCode.UNREACHABLE
    assert client.retries_used == 2
    assert client.reconnects == 0


def test_retries_ride_out_a_flaky_start():
    # The "server" hangs up on the first 3 connections before the real
    # service takes over the port; a retrying client rides it out.
    port = free_port()
    listener = socket.socket()
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind(("127.0.0.1", port))
    listener.listen(8)
    state = {}

    def flaky_then_up():
        for _ in range(3):
            conn, _ = listener.accept()
            conn.close()
        listener.close()
        state["service"] = make_service(port).start()

    starter = threading.Thread(target=flaky_then_up)
    starter.start()
    try:
        client = ServiceClient(f"http://127.0.0.1:{port}", timeout=5.0,
                               retries=20, backoff=0.02, backoff_max=0.1)
        assert client.status().iteration == 0
        assert client.retries_used >= 3
        assert client.reconnects == 0  # fresh-socket failures, not staleness
    finally:
        starter.join()
        if "service" in state:
            state["service"].stop()


def test_typed_4xx_answers_never_retry():
    with make_service() as service:
        client = ServiceClient(service.url, timeout=5.0, retries=5,
                               backoff=0.01)
        request = CheckoutRequest(device_id=0, token="bogus", request_time=0.0)
        with pytest.raises(RemoteAuthenticationError):
            client.checkout(request)
        assert client.retries_used == 0


def test_close_releases_the_pooled_connection():
    with make_service() as service:
        client = ServiceClient(service.url, timeout=5.0)
        client.status()
        client.close()
        client.status()
        assert client.connections_opened == 2
        assert client.reconnects == 0
