"""Property/fuzz tests over the wire envelopes (satellite: never an
unhandled exception).

Two contracts:

* **Round trip** — any protocol message survives
  encode → JSON text → decode with exact value fidelity (floats are
  IEEE-754 bit-exact through ``repr``).
* **Totality** — feeding the decoders *anything* (random text, random
  bytes, truncated valid payloads, version-fuzzed envelopes) produces
  either a decoded message or a typed :class:`~repro.serve.wire.WireError`
  — never ``KeyError``/``TypeError``/``ValueError`` leaking out of the
  schema layer, which is what keeps :class:`CrowdService` un-crashable.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.protocol import CheckinMessage, CheckoutRequest, CheckoutResponse
from repro.core.stopping import StopDecision
from repro.serve import wire

finite_floats = st.floats(allow_nan=False, allow_infinity=False,
                          min_value=-1e12, max_value=1e12)

DECODERS = (
    wire.decode_join_request,
    wire.decode_join_response,
    wire.decode_checkout_request,
    wire.decode_checkout_response,
    wire.decode_checkin_batch,
    wire.decode_checkin_result,
    wire.decode_status,
    wire.decode_error,
)


class TestRoundTrips:
    @given(
        device_id=st.integers(0, 10**6),
        token=st.text(min_size=1, max_size=64),
        time=finite_floats.filter(lambda t: t >= 0),
    )
    @settings(max_examples=50)
    def test_checkout_request(self, device_id, token, time):
        request = CheckoutRequest(device_id, token, time)
        assert wire.decode_checkout_request(
            wire.encode_checkout_request(request)) == request

    @given(params=st.lists(finite_floats, min_size=1, max_size=30))
    @settings(max_examples=50)
    def test_checkout_response_bit_exact(self, params):
        response = CheckoutResponse(0, np.asarray(params), 3, 0.0)
        decoded = wire.decode_checkout_response(
            wire.encode_checkout_response(response))
        # Bit-exact, not approx: the remote parity contract rests on this.
        assert decoded.parameters.tobytes() == response.parameters.tobytes()

    @given(
        gradients=st.lists(
            st.lists(finite_floats, min_size=3, max_size=3),
            min_size=1, max_size=5,
        ),
        num_samples=st.integers(1, 1000),
        error_count=st.integers(-50, 50),
        counts=st.lists(st.integers(-10, 10**6), min_size=2, max_size=2),
    )
    @settings(max_examples=50)
    def test_checkin_batch_bit_exact(self, gradients, num_samples,
                                     error_count, counts):
        messages = [
            CheckinMessage(
                device_id=i, token=f"t{i}",
                gradient=np.asarray(gradient),
                num_samples=num_samples,
                noisy_error_count=error_count,
                noisy_label_counts=np.asarray(counts, dtype=np.int64),
                checkout_iteration=i,
            )
            for i, gradient in enumerate(gradients)
        ]
        decoded = wire.decode_checkin_batch(wire.encode_checkin_batch(messages))
        for original, copy in zip(messages, decoded):
            assert copy.gradient.tobytes() == original.gradient.tobytes()
            assert copy.num_samples == original.num_samples
            assert copy.noisy_error_count == original.noisy_error_count
            assert np.array_equal(
                copy.noisy_label_counts, original.noisy_label_counts)


class TestTotality:
    @given(raw=st.text(max_size=200))
    @settings(max_examples=150)
    def test_arbitrary_text_never_escapes_typed_errors(self, raw):
        for decode in DECODERS:
            try:
                decode(raw)
            except wire.WireError as error:
                assert error.code in vars(wire.ErrorCode).values()
                assert 400 <= error.http_status < 600

    @given(raw=st.binary(max_size=200))
    @settings(max_examples=100)
    def test_arbitrary_bytes_never_escape_typed_errors(self, raw):
        for decode in DECODERS:
            try:
                decode(raw)
            except wire.WireError:
                pass

    @given(data=st.data())
    @settings(max_examples=100)
    def test_truncated_valid_payloads(self, data):
        """Every prefix of a valid encoding decodes or fails typed."""
        full = wire.encode_checkin_batch([
            CheckinMessage(
                device_id=1, token="t", gradient=np.ones(4),
                num_samples=2, noisy_error_count=0,
                noisy_label_counts=np.array([1, 1]), checkout_iteration=0,
            )
        ])
        cut = data.draw(st.integers(0, len(full) - 1))
        with pytest.raises(wire.WireError) as excinfo:
            wire.decode_checkin_batch(full[:cut])
        assert excinfo.value.code in (
            wire.ErrorCode.MALFORMED, wire.ErrorCode.VERSION_MISMATCH
        )

    @given(
        version=st.one_of(
            st.integers(-5, 100).filter(lambda v: v != wire.PROTOCOL_VERSION),
            st.text(max_size=5), st.none(), st.floats(allow_nan=False),
        ),
        kind=st.sampled_from(
            ["checkout_request", "checkin_batch", "status", "error"]),
    )
    @settings(max_examples=100)
    def test_wrong_version_is_always_version_mismatch(self, version, kind):
        raw = json.dumps({"protocol": version, "kind": kind, "body": {}})
        with pytest.raises(wire.WireError) as excinfo:
            wire.parse_envelope(raw)
        assert excinfo.value.code == wire.ErrorCode.VERSION_MISMATCH

    @given(
        body=st.recursive(
            st.one_of(st.none(), st.booleans(), st.integers(),
                      st.floats(allow_nan=False), st.text(max_size=10)),
            lambda children: st.one_of(
                st.lists(children, max_size=4),
                st.dictionaries(st.text(max_size=8), children, max_size=4),
            ),
            max_leaves=12,
        ).filter(lambda b: isinstance(b, dict)),
        kind=st.sampled_from([
            "join_request", "checkout_request", "checkin_batch",
            "checkin_result", "status", "error",
        ]),
    )
    @settings(max_examples=150)
    def test_arbitrary_bodies_never_escape_typed_errors(self, body, kind):
        """Structured garbage inside a valid envelope stays typed."""
        raw = wire.encode_envelope(kind, body)
        for decode in DECODERS:
            try:
                decode(raw)
            except wire.WireError:
                pass

    def test_float_special_values_rejected_or_preserved(self):
        """NaN/inf parameters: json encodes them; decode keeps values."""
        response = CheckoutResponse(
            0, np.array([np.inf, -np.inf, np.nan]), 0, 0.0)
        decoded = wire.decode_checkout_response(
            wire.encode_checkout_response(response))
        assert decoded.parameters.tobytes() == response.parameters.tobytes()

    def test_stop_decision_running_helper(self):
        raw = wire.encode_checkin_result([], 0, StopDecision.running())
        assert not wire.decode_checkin_result(raw).stopped
