"""Live ``GET /v1/metrics`` + request tracing on a real CrowdService."""

import json
import os
import urllib.request

import numpy as np
import pytest

from repro.core.protocol import CheckinMessage, CheckoutRequest
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceRecorder
from repro.serve import CrowdService, ServiceClient

from tests.serve.test_service import NUM_PARAMETERS, checkin_for, make_core


@pytest.fixture()
def observed(tmp_path):
    """A live service with metrics + spooled tracing enabled."""
    metrics = MetricsRegistry("test-serve")
    tracer = TraceRecorder(capacity=64, trace_dir=str(tmp_path), name="test")
    with CrowdService(make_core(), metrics=metrics, tracer=tracer) as live:
        yield live, metrics, tracer
    tracer.close()


def drive_traffic(service, rounds=3):
    client = ServiceClient(service.url)
    token = client.join(7)
    for _ in range(rounds):
        client.checkins([checkin_for(client, 7, token)])
    client.status()
    # Responses are sent BEFORE the server thread records counters and
    # finishes the trace; quiesce so in-process snapshot reads see them.
    assert service.drain()
    return client


class TestMetricsEndpoint:
    def test_prometheus_text_scrape(self, observed):
        service, _, _ = observed
        drive_traffic(service)
        with urllib.request.urlopen(service.url + "/v1/metrics") as response:
            assert response.status == 200
            assert response.headers["Content-Type"].startswith("text/plain")
            text = response.read().decode()
        assert 'service_requests_total{endpoint="join"} 1' in text
        assert 'service_requests_total{endpoint="checkins"} 3' in text
        assert "core_checkin_batches_total 3" in text
        assert "# TYPE service_request_seconds histogram" in text
        assert 'service_request_seconds_bucket{endpoint="checkins",le="+Inf"} 3' in text

    def test_json_scrape_matches_registry(self, observed):
        service, metrics, _ = observed
        drive_traffic(service)
        with urllib.request.urlopen(
            service.url + "/v1/metrics?format=json"
        ) as response:
            assert response.headers["Content-Type"] == "application/json"
            scraped = json.loads(response.read())
        assert scraped["enabled"] is True
        assert scraped["registry"] == "test-serve"
        by_name = {
            (c["name"], c["labels"].get("endpoint")): c["value"]
            for c in scraped["counters"]
        }
        assert by_name[("service_requests_total", "checkins")] == 3
        # Scrape-time gauges mirror the core's counters.
        gauges = {g["name"]: g["value"] for g in scraped["gauges"]}
        assert gauges["core_iteration"] == 3.0
        assert gauges["service_uptime_seconds"] > 0.0

    def test_client_metrics_snapshot_helper(self, observed):
        service, _, _ = observed
        client = drive_traffic(service)
        scraped = client.metrics_snapshot()
        assert scraped["enabled"] is True

    def test_latency_histogram_has_percentiles(self, observed):
        service, metrics, _ = observed
        drive_traffic(service, rounds=5)
        snapshot = service.metrics_snapshot()
        [hist] = [
            h for h in snapshot["histograms"]
            if h["name"] == "service_request_seconds"
            and h["labels"].get("endpoint") == "checkins"
        ]
        assert hist["count"] == 5
        pcts = hist["percentiles"]
        assert pcts["p50"] is not None
        assert pcts["p50"] <= pcts["p95"] <= pcts["p99"]

    def test_disabled_mode_still_answers_200(self):
        with CrowdService(make_core()) as service:
            with urllib.request.urlopen(
                service.url + "/v1/metrics?format=json"
            ) as response:
                assert response.status == 200
                scraped = json.loads(response.read())
        assert scraped["enabled"] is False
        assert scraped["counters"] == []

    def test_post_metrics_is_method_not_allowed(self, observed):
        service, _, _ = observed
        request = urllib.request.Request(
            service.url + "/v1/metrics", data=b"{}", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request)
        assert err.value.code == 405


class TestStatusExtensions:
    def test_uptime_and_pid(self, observed):
        service, _, _ = observed
        client = ServiceClient(service.url)
        status = client.status()
        assert status.uptime_seconds is not None
        assert status.uptime_seconds >= 0.0
        assert status.pid == os.getpid()

    def test_plain_service_omits_nothing_required(self):
        # Without obs the status endpoint still reports uptime + pid —
        # they come from the service, not the registry.
        with CrowdService(make_core()) as service:
            status = ServiceClient(service.url).status()
        assert status.uptime_seconds is not None
        assert status.pid == os.getpid()


class TestTracing:
    def test_request_phases_recorded(self, observed):
        service, _, tracer = observed
        drive_traffic(service)
        records = tracer.snapshot()
        checkin_traces = [
            r for r in records if r["trace"] == "POST /v1/checkins"
        ]
        assert len(checkin_traces) == 3
        for record in checkin_traces:
            assert record["status"] == 200
            for phase in ("decode", "lock_wait", "core_apply", "encode"):
                assert phase in record["phases"], record
            assert record["duration_ms"] > 0

    def test_jsonl_spool_written(self, observed, tmp_path):
        service, _, tracer = observed
        drive_traffic(service)
        assert tracer.path is not None
        lines = [
            json.loads(line)
            for line in open(tracer.path).read().splitlines()
        ]
        assert len(lines) == len(tracer.snapshot())
        assert {line["trace"] for line in lines} >= {
            "POST /v1/join", "POST /v1/checkins", "GET /v1/status",
        }

    def test_error_requests_traced_with_status(self, observed):
        service, _, tracer = observed
        with pytest.raises(urllib.error.HTTPError):
            urllib.request.urlopen(service.url + "/v1/nope")
        assert service.drain()  # record lands after the 404 is sent
        statuses = [r["status"] for r in tracer.snapshot()]
        assert 404 in statuses


class TestErrorCounters:
    def test_errors_labelled_by_endpoint(self, observed):
        service, metrics, _ = observed
        client = ServiceClient(service.url)
        token = client.join(3)
        bad = CheckinMessage(
            device_id=3, token=token,
            gradient=np.full(NUM_PARAMETERS, np.nan),
            num_samples=1, noisy_error_count=0,
            noisy_label_counts=np.array([1, 0], dtype=np.int64),
            checkout_iteration=0,
        )
        from repro.serve import RemoteServiceError

        with pytest.raises(RemoteServiceError):
            client.checkins([bad])
        with pytest.raises(urllib.error.HTTPError):
            urllib.request.urlopen(
                urllib.request.Request(
                    service.url + "/v1/checkins", data=b"garbage",
                    method="POST",
                )
            )
        assert service.drain()
        snapshot = service.metrics_snapshot()
        errors = {
            c["labels"].get("endpoint"): c["value"]
            for c in snapshot["counters"]
            if c["name"] == "service_errors_total" and c["value"]
        }
        assert errors.get("checkins", 0) >= 1
