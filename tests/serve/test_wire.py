"""Unit tests for the versioned wire schema (repro.serve.wire)."""

import json

import numpy as np
import pytest

from repro.core.protocol import (
    CheckinAck,
    CheckinMessage,
    CheckoutRequest,
    CheckoutResponse,
)
from repro.core.stopping import StopDecision, StopReason
from repro.serve import wire


def make_checkin(device_id=3, dim=4):
    return CheckinMessage(
        device_id=device_id,
        token="tok",
        gradient=np.arange(dim, dtype=np.float64) / 7.0,
        num_samples=5,
        noisy_error_count=2,
        noisy_label_counts=np.array([2, 3], dtype=np.int64),
        checkout_iteration=11,
    )


class TestEnvelope:
    def test_round_trip(self):
        raw = wire.encode_envelope("status", {"x": 1})
        kind, body = wire.parse_envelope(raw)
        assert kind == "status" and body == {"x": 1}

    def test_version_stamp_present(self):
        payload = json.loads(wire.encode_envelope("k", {}))
        assert payload["protocol"] == wire.PROTOCOL_VERSION

    @pytest.mark.parametrize(
        "raw",
        [
            "",
            "not json",
            "[1,2,3]",
            '"a string"',
            '{"protocol": 2, "body": {}}',            # no kind
            '{"protocol": 2, "kind": "x"}',           # no body
            '{"protocol": 2, "kind": 7, "body": {}}',  # non-string kind
            '{"protocol": 2, "kind": "x", "body": []}',  # non-object body
            b"\xff\xfe garbage bytes",
        ],
    )
    def test_malformed_envelopes(self, raw):
        with pytest.raises(wire.WireError) as excinfo:
            wire.parse_envelope(raw)
        assert excinfo.value.code == wire.ErrorCode.MALFORMED
        assert excinfo.value.http_status == 400

    @pytest.mark.parametrize(
        "version",
        # 2.0 satisfies == 2 but is not a valid stamp: the check is
        # strict on type, not just value.
        [0, 1, -1, "2", None, 1.5, 2.0, True],
    )
    def test_version_mismatch(self, version):
        raw = json.dumps({"protocol": version, "kind": "status", "body": {}})
        with pytest.raises(wire.WireError) as excinfo:
            wire.parse_envelope(raw)
        assert excinfo.value.code == wire.ErrorCode.VERSION_MISMATCH
        assert excinfo.value.http_status == 426

    def test_missing_version_stamp_is_version_mismatch(self):
        # An envelope with no stamp at all is an unknown (ancient)
        # protocol, not merely malformed: the client should upgrade.
        raw = '{"kind": "status", "body": {}}'
        with pytest.raises(wire.WireError) as excinfo:
            wire.parse_envelope(raw)
        assert excinfo.value.code == wire.ErrorCode.VERSION_MISMATCH
        assert excinfo.value.http_status == 426

    def test_unexpected_kind(self):
        raw = wire.encode_envelope("status", {})
        with pytest.raises(wire.WireError) as excinfo:
            wire.parse_envelope(raw, "checkout_request")
        assert excinfo.value.code == wire.ErrorCode.MALFORMED


class TestMessageEnvelopes:
    def test_checkout_request_round_trip(self):
        request = CheckoutRequest(device_id=4, token="t", request_time=1.25)
        assert wire.decode_checkout_request(
            wire.encode_checkout_request(request)) == request

    def test_checkout_response_round_trip_is_bit_exact(self):
        parameters = np.random.default_rng(0).normal(size=17)
        response = CheckoutResponse(
            device_id=1, parameters=parameters, server_iteration=9,
            issued_time=0.5,
        )
        decoded = wire.decode_checkout_response(
            wire.encode_checkout_response(response))
        assert np.array_equal(decoded.parameters, parameters)
        assert decoded.parameters.dtype == np.float64
        assert decoded.server_iteration == 9

    def test_checkout_request_body_of_wrong_type(self):
        # A well-formed envelope whose body is a different codec message.
        raw = wire.encode_checkout_response(
            CheckoutResponse(0, np.zeros(2), 0, 0.0))
        payload = json.loads(raw)
        payload["kind"] = "checkout_request"
        with pytest.raises(wire.WireError) as excinfo:
            wire.decode_checkout_request(json.dumps(payload))
        assert excinfo.value.code == wire.ErrorCode.MALFORMED

    def test_checkin_batch_round_trip(self):
        messages = [make_checkin(device_id=i) for i in range(3)]
        decoded = wire.decode_checkin_batch(wire.encode_checkin_batch(messages))
        assert len(decoded) == 3
        for original, copy in zip(messages, decoded):
            assert copy.device_id == original.device_id
            assert np.array_equal(copy.gradient, original.gradient)
            assert np.array_equal(
                copy.noisy_label_counts, original.noisy_label_counts)
            assert copy.checkout_iteration == original.checkout_iteration

    @pytest.mark.parametrize(
        "body",
        [
            {},                                  # no messages key
            {"messages": "nope"},                # not a list
            {"messages": []},                    # empty batch
            {"messages": [42]},                  # non-object entry
            {"messages": [{"type": "checkin"}]},  # missing fields
        ],
    )
    def test_checkin_batch_malformed(self, body):
        raw = wire.encode_envelope("checkin_batch", body)
        with pytest.raises(wire.WireError) as excinfo:
            wire.decode_checkin_batch(raw)
        assert excinfo.value.code == wire.ErrorCode.MALFORMED

    def test_checkin_batch_size_cap(self):
        entry = json.loads(wire.encode_checkin_batch([make_checkin()]))
        entry["body"]["messages"] = (
            entry["body"]["messages"] * (wire.MAX_BATCH_MESSAGES + 1)
        )
        with pytest.raises(wire.WireError, match="limit"):
            wire.decode_checkin_batch(json.dumps(entry))

    def test_checkin_result_round_trip_with_rejections(self):
        acks = [CheckinAck(0, 5), None, CheckinAck(2, 6)]
        stop = StopDecision(True, StopReason.MAX_ITERATIONS)
        raw = wire.encode_checkin_result(acks, server_iteration=6, stop=stop)
        decoded = wire.decode_checkin_result(raw)
        assert decoded.acks == (CheckinAck(0, 5), None, CheckinAck(2, 6))
        assert decoded.server_iteration == 6
        assert decoded.stopped
        assert decoded.stop_decision == stop

    def test_checkin_result_unknown_stop_reason(self):
        raw = json.loads(wire.encode_checkin_result([], 0, StopDecision.running()))
        raw["body"]["stop_reason"] = "cosmic_rays"
        with pytest.raises(wire.WireError) as excinfo:
            wire.decode_checkin_result(json.dumps(raw))
        assert excinfo.value.code == wire.ErrorCode.MALFORMED


class TestStatusAndErrors:
    def test_status_round_trip(self):
        raw = wire.encode_status(
            iteration=12, stop=StopDecision.running(), checkouts_served=30,
            rejected_messages=1, registered_devices=8, num_parameters=510,
        )
        status = wire.decode_status(raw)
        assert status.iteration == 12
        assert not status.stopped
        assert status.parameters is None
        assert status.protocol_version == wire.PROTOCOL_VERSION
        assert status.num_parameters == 510

    def test_status_with_parameters_is_bit_exact(self):
        parameters = np.random.default_rng(1).normal(size=23)
        raw = wire.encode_status(
            iteration=0, stop=StopDecision.running(), checkouts_served=0,
            rejected_messages=0, registered_devices=0,
            num_parameters=parameters.shape[0], parameters=parameters,
        )
        assert np.array_equal(wire.decode_status(raw).parameters, parameters)

    def test_error_round_trip(self):
        raw = wire.encode_error(wire.ErrorCode.STOPPED, "task over")
        error = wire.decode_error(raw)
        assert isinstance(error, wire.WireError)
        assert error.code == wire.ErrorCode.STOPPED
        assert error.http_status == 409
        assert "task over" in str(error)

    def test_join_round_trip(self):
        assert wire.decode_join_request(wire.encode_join_request(9)) == 9
        assert wire.decode_join_response(
            wire.encode_join_response(9, "tok")) == (9, "tok")
