"""The HTTP side of the gateway tier: cached check-outs, batched uplinks.

Two contracts meet here:

* the service's checkout-response cache must be **byte-identical** to the
  uncached encoder for any parameter vector (satellite of ROADMAP item 1
  — the cache is an optimization, never an observable change);
* an :class:`~repro.gateway.edge.EdgeGateway` fronting a segment of
  :class:`~repro.serve.remote.RemoteDevice`\\ s must collapse their HTTP
  traffic (shared epoch check-outs + batched ``POST /v1/checkins``)
  while a sequential ``flush_size=1`` gateway stays bit-identical to
  per-device traffic.
"""

import numpy as np
import pytest

from repro.core.config import DeviceConfig, ServerConfig
from repro.core.protocol import CheckoutResponse
from repro.core.server_core import ServerCore
from repro.gateway.edge import GATEWAY_DEVICE_ID, EdgeGateway
from repro.models import MulticlassLogisticRegression
from repro.optim import paper_sgd
from repro.serve import CrowdService, HttpTransport, RemoteDevice, wire
from repro.serve.client import RemoteServiceError, ServiceClient

DIM, CLASSES = 20, 4


def make_core(max_iterations=1000):
    model = MulticlassLogisticRegression(DIM, CLASSES)
    return ServerCore(
        model,
        paper_sgd(model.init_parameters(), learning_rate_constant=1.0,
                  projection_radius=100.0),
        ServerConfig(max_iterations=max_iterations),
    )


class TestCheckoutCachePinning:
    @pytest.mark.parametrize(
        "values",
        [
            [0.0, -0.0, 1.0, -1.5],
            [1e300, -1e300, 3e-17, 2.2250738585072014e-308],
            [0.1 + 0.2, np.pi, -np.e, 1 / 3],
            [],
        ],
    )
    def test_cached_encoder_is_byte_identical(self, values):
        parameters = np.array(values, dtype=np.float64)
        response = CheckoutResponse(
            device_id=42, parameters=parameters,
            server_iteration=17, issued_time=3.25,
        )
        reference = wire.encode_checkout_response(response)
        cached = wire.encode_checkout_response_cached(
            42, wire.encode_parameters_fragment(parameters), 17, 3.25
        )
        assert cached == reference

    def test_service_reuses_the_fragment_until_an_update(self):
        core = make_core()
        with CrowdService(core) as service:
            client = ServiceClient(service.url)
            token = client.join(0)
            from repro.core.protocol import CheckoutRequest

            first = client.checkout(CheckoutRequest(0, token, 0.0))
            second = client.checkout(CheckoutRequest(0, token, 1.0))
            assert np.array_equal(first.parameters, second.parameters)
            assert first.server_iteration == second.server_iteration
            # One fragment served both check-outs of iteration 0.
            assert service._encoded_parameters[0] == 0

            from repro.core.protocol import CheckinMessage

            client.checkins([CheckinMessage(
                device_id=0, token=token,
                gradient=np.ones(first.parameters.shape[0]),
                num_samples=1, noisy_error_count=0,
                noisy_label_counts=np.zeros(CLASSES, dtype=np.int64),
                checkout_iteration=first.server_iteration,
            )])
            third = client.checkout(CheckoutRequest(0, token, 2.0))
            assert third.server_iteration == first.server_iteration + 1
            assert not np.array_equal(first.parameters, third.parameters)
            assert service._encoded_parameters[0] == third.server_iteration
            assert service.total_errors == 0


def _drive_devices(service_url, num_devices, num_rounds, gateway=None,
                   seed=0):
    """Run a fixed round-robin schedule of device rounds; returns devices."""
    transport = HttpTransport(service_url)
    model = MulticlassLogisticRegression(DIM, CLASSES)
    devices = [
        RemoteDevice.join(
            transport, d, model,
            DeviceConfig.default(batch_size=2, num_classes=CLASSES),
            np.random.default_rng(seed + d),
            gateway=gateway,
        )
        for d in range(num_devices)
    ]
    streams = [np.random.default_rng(1000 + seed + d) for d in range(num_devices)]
    for _ in range(num_rounds):
        for device, stream in zip(devices, streams):
            if device.stopped:
                continue
            while not device.observe(
                stream.normal(size=DIM), int(stream.integers(CLASSES))
            ):
                pass
            device.run_round()
    if gateway is not None and not gateway.stopped:
        gateway.flush()
    return devices


class TestEdgeGateway:
    def test_sequential_gateway_is_bit_identical_to_per_device_http(self):
        """flush_size=1, no shared check-outs: the gateway degenerates to
        a forwarder and the final parameters match per-device HTTP
        traffic exactly."""
        results = []
        for use_gateway in (False, True):
            core = make_core()
            with CrowdService(core) as service:
                gateway = (
                    EdgeGateway(service.url, flush_size=1,
                                share_checkouts=False)
                    if use_gateway else None
                )
                _drive_devices(service.url, num_devices=3, num_rounds=4,
                               gateway=gateway)
                assert service.total_errors == 0
                results.append((core.iteration, core.parameters.copy()))
        (plain_iter, plain_params), (gw_iter, gw_params) = results
        assert plain_iter == gw_iter
        assert np.array_equal(plain_params, gw_params)

    def test_batching_collapses_http_traffic(self):
        """Shared epoch check-outs + batched uplinks: a segment of D
        devices costs ~2 requests per epoch instead of 2·D."""
        num_devices, num_rounds = 4, 3
        core = make_core()
        with CrowdService(core) as service:
            baseline = service.requests_served  # join traffic comes first
            gateway = EdgeGateway(service.url, flush_size=num_devices)
            devices = _drive_devices(
                service.url, num_devices=num_devices, num_rounds=num_rounds,
                gateway=gateway,
            )
            assert service.total_errors == 0
            # Every device completed every round, acked through the pool.
            assert all(d.rounds_completed == num_rounds for d in devices)
            assert core.iteration == num_devices * num_rounds
            # Gateway upstream traffic: one join + per epoch one checkout
            # and one batch POST — far below per-device traffic.
            per_device = 2 * num_devices * num_rounds
            assert gateway.requests_made == 1 + 2 * num_rounds
            assert gateway.requests_made < per_device
            assert gateway.stats.size_flushes == num_rounds
            assert gateway.stats.largest_flush == num_devices

    def test_epoch_cache_invalidates_on_flush(self):
        core = make_core()
        with CrowdService(core) as service:
            gateway = EdgeGateway(service.url, flush_size=2)
            from repro.core.protocol import CheckoutRequest

            client = ServiceClient(service.url)
            tokens = {d: client.join(d) for d in (0, 1)}
            first = gateway.checkout(CheckoutRequest(0, tokens[0], 0.0))
            again = gateway.checkout(CheckoutRequest(1, tokens[1], 0.5))
            # Cached epoch: same parameters object, caller-facing ids kept.
            assert again.parameters is first.parameters
            assert again.device_id == 1
            for d in (0, 1):
                gateway.add(_checkin(d, tokens[d], first))
            after = gateway.checkout(CheckoutRequest(0, tokens[0], 1.0))
            assert after.server_iteration > first.server_iteration

    def test_stop_propagates_through_the_gateway(self):
        core = make_core(max_iterations=2)
        with CrowdService(core) as service:
            gateway = EdgeGateway(service.url, flush_size=2)
            from repro.core.protocol import CheckoutRequest

            client = ServiceClient(service.url)
            tokens = {d: client.join(d) for d in (0, 1)}
            base = gateway.checkout(CheckoutRequest(0, tokens[0], 0.0))
            acks = [
                gateway.add(_checkin(d, tokens[d], base)) for d in (0, 1)
            ][-1]
            assert len(acks) == 2
            assert gateway.stopped  # the batch result carried the stop
            with pytest.raises(RemoteServiceError) as caught:
                gateway.checkout(CheckoutRequest(0, tokens[0], 1.0))
            assert caught.value.code == wire.ErrorCode.STOPPED
            assert gateway.pending == 0

    def test_gateway_enrollment_uses_the_reserved_id(self):
        core = make_core()
        with CrowdService(core) as service:
            gateway = EdgeGateway(service.url)
            from repro.core.protocol import CheckoutRequest

            client = ServiceClient(service.url)
            token = client.join(7)
            gateway.checkout(CheckoutRequest(7, token, 0.0))
            assert core.registry.is_registered(GATEWAY_DEVICE_ID)


def _checkin(device_id, token, checkout):
    from repro.core.protocol import CheckinMessage

    return CheckinMessage(
        device_id=device_id, token=token,
        gradient=np.ones(checkout.parameters.shape[0]),
        num_samples=1, noisy_error_count=0,
        noisy_label_counts=np.zeros(CLASSES, dtype=np.int64),
        checkout_iteration=checkout.server_iteration,
    )
