"""Live-server tests: CrowdService request validation and robustness.

Each test talks real HTTP over loopback.  The overriding contract: no
payload — malformed, version-mismatched, stale, oversized, or plain
garbage — crashes the service; every rejection is a 4xx/5xx ``error``
envelope and the very next valid request still succeeds.
"""

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.config import ServerConfig
from repro.core.protocol import CheckinMessage, CheckoutRequest
from repro.core.server_core import ServerCore
from repro.models import MulticlassLogisticRegression
from repro.serve import (
    CrowdService,
    RemoteAuthenticationError,
    RemoteServiceError,
    ServiceClient,
    wire,
)

DIM, CLASSES = 3, 2
NUM_PARAMETERS = MulticlassLogisticRegression(DIM, CLASSES).num_parameters


def make_core(max_iterations=1000, target_error=None):
    return ServerCore(
        MulticlassLogisticRegression(DIM, CLASSES),
        config=ServerConfig(
            max_iterations=max_iterations, target_error=target_error
        ),
    )


@pytest.fixture()
def service():
    with CrowdService(make_core()) as live:
        yield live


def raw_post(url, path, body: bytes, headers=None):
    """POST raw bytes, returning (status, body) without raising."""
    request = urllib.request.Request(
        url + path, data=body, method="POST",
        headers=headers or {"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


def checkin_for(client, device_id, token):
    response = client.checkout(CheckoutRequest(device_id, token, 0.0))
    return CheckinMessage(
        device_id=device_id, token=token,
        gradient=np.full(NUM_PARAMETERS, 0.01),
        num_samples=1, noisy_error_count=0,
        noisy_label_counts=np.array([1, 0], dtype=np.int64),
        checkout_iteration=response.server_iteration,
    )


class TestHappyPath:
    def test_join_checkout_checkin_status(self, service):
        client = ServiceClient(service.url)
        token = client.join(7)
        response = client.checkout(CheckoutRequest(7, token, 0.0))
        assert response.parameters.shape == (NUM_PARAMETERS,)
        result = client.checkins([checkin_for(client, 7, token)])
        assert result.acks[0] is not None
        assert result.server_iteration == 1
        status = client.status(include_parameters=True)
        assert status.iteration == 1
        assert status.registered_devices == 1
        assert status.parameters.shape == (NUM_PARAMETERS,)
        assert service.total_errors == 0

    def test_batch_checkin_maps_onto_handle_checkins(self, service):
        client = ServiceClient(service.url)
        tokens = {m: client.join(m) for m in range(4)}
        batch = [checkin_for(client, m, tokens[m]) for m in range(4)]
        # Poison one message with a bad token: batch semantics reject
        # that slot (null ack) and apply the rest.
        batch[2] = CheckinMessage(
            device_id=2, token="forged", gradient=batch[2].gradient,
            num_samples=1, noisy_error_count=0,
            noisy_label_counts=batch[2].noisy_label_counts,
            checkout_iteration=0,
        )
        result = client.checkins(batch)
        assert [ack is not None for ack in result.acks] == [
            True, True, False, True]
        assert service.core.iteration == 3
        assert service.core.rejected_messages == 1

    def test_join_registers_with_core_registry(self, service):
        client = ServiceClient(service.url)
        client.join(3)
        assert service.core.registry.is_registered(3)


class TestRejections:
    def test_unknown_device_is_401(self, service):
        client = ServiceClient(service.url)
        with pytest.raises(RemoteAuthenticationError) as excinfo:
            client.checkout(CheckoutRequest(99, "nope", 0.0))
        assert excinfo.value.http_status == 401
        assert excinfo.value.code == wire.ErrorCode.AUTH_FAILED

    def test_stale_traffic_after_stop_is_409(self):
        with CrowdService(make_core(max_iterations=1)) as service:
            client = ServiceClient(service.url)
            token = client.join(0)
            message = checkin_for(client, 0, token)
            assert client.checkins([message]).stopped
            with pytest.raises(RemoteServiceError) as excinfo:
                client.checkout(CheckoutRequest(0, token, 1.0))
            assert excinfo.value.http_status == 409
            assert excinfo.value.code == wire.ErrorCode.STOPPED
            with pytest.raises(RemoteServiceError) as excinfo:
                client.checkins([message])
            assert excinfo.value.http_status == 409

    def test_version_mismatch_is_426(self, service):
        body = json.dumps({
            "protocol": wire.PROTOCOL_VERSION + 1,
            "kind": "checkout_request",
            "body": {"type": "checkout_request", "device_id": 0,
                     "token": "t", "request_time": 0.0},
        }).encode()
        status, payload = raw_post(service.url, "/v1/checkout", body)
        assert status == 426
        assert wire.decode_error(payload).code == wire.ErrorCode.VERSION_MISMATCH

    def test_unknown_route_is_404_and_method_405(self, service):
        status, payload = raw_post(service.url, "/v2/checkout", b"{}")
        assert status == 404
        assert wire.decode_error(payload).code == wire.ErrorCode.NOT_FOUND
        request = urllib.request.Request(service.url + "/v1/checkout")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 405

    def test_oversized_body_is_413(self, service):
        from repro.serve.service import MAX_BODY_BYTES

        request = urllib.request.Request(
            service.url + "/v1/checkout", data=b"x", method="POST",
            headers={"Content-Length": str(MAX_BODY_BYTES + 1)},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 413

    def test_join_disabled(self):
        core = make_core()
        core.register_device(0)
        with CrowdService(core, allow_join=False) as service:
            client = ServiceClient(service.url)
            with pytest.raises(RemoteAuthenticationError):
                client.join(1)
            # Pre-provisioned devices still work.
            token = core.registry.register(0)
            assert client.checkout(
                CheckoutRequest(0, token, 0.0)).parameters.size

    def test_stop_before_start_releases_port(self):
        # Construction binds the socket; stop() without a serve loop must
        # close it without blocking on a shutdown handshake.
        first = CrowdService(make_core())
        port = first.port
        first.stop()
        second = CrowdService(make_core(), port=port)  # port is free again
        second.stop()
        second.stop()  # idempotent at any lifecycle point

    def test_unreachable_server(self):
        client = ServiceClient("http://127.0.0.1:9", timeout=0.5)
        with pytest.raises(RemoteServiceError) as excinfo:
            client.status()
        assert excinfo.value.code == wire.ErrorCode.UNREACHABLE


class TestRobustness:
    FUZZ_BODIES = [
        b"",
        b"garbage",
        b"\x00\x01\x02\xff\xfe",
        b"{",
        b'{"protocol": 2}',
        b'[]',
        b'{"protocol": 2, "kind": "checkout_request", "body": {}}',
        b'{"protocol": 2, "kind": "checkin_batch", "body": {"messages": [{}]}}',
        json.dumps({"protocol": 2, "kind": "checkin_batch", "body": {
            "messages": [{"type": "checkin", "device_id": "x"}]}}).encode(),
        json.dumps({"protocol": 2, "kind": "checkout_request", "body": {
            "type": "checkout_request", "device_id": 0, "token": "t",
            "request_time": "soon"}}).encode(),
        "∞ unicode ≠ ascii".encode("utf-8"),
    ]

    @pytest.mark.parametrize("path", ["/v1/checkout", "/v1/checkins", "/v1/join"])
    def test_fuzz_bodies_are_4xx_and_server_survives(self, service, path):
        for body in self.FUZZ_BODIES:
            status, payload = raw_post(service.url, path, body)
            assert 400 <= status < 500, (path, body[:40], status)
            # Every error is a decodable typed envelope.
            error = wire.decode_error(payload)
            assert error.code in (
                wire.ErrorCode.MALFORMED, wire.ErrorCode.VERSION_MISMATCH,
                wire.ErrorCode.AUTH_FAILED,
            )
        # The service is still fully functional afterwards.
        client = ServiceClient(service.url)
        token = client.join(1)
        result = client.checkins([checkin_for(client, 1, token)])
        assert result.acks[0] is not None
        assert service.total_errors == len(self.FUZZ_BODIES)

    def test_wrong_envelope_kind_on_route(self, service):
        # A status envelope POSTed to /v1/checkout: valid wire, wrong kind.
        status, payload = raw_post(
            service.url, "/v1/checkout",
            wire.encode_envelope("status", {}).encode(),
        )
        assert status == 400
        assert wire.decode_error(payload).code == wire.ErrorCode.MALFORMED

    def test_internal_errors_are_500_and_survivable(self, service, monkeypatch):
        # Force a genuine bug in a handler: the response must be a typed
        # 500 envelope, and the next request must succeed.
        def boom(request):
            raise RuntimeError("synthetic handler bug")

        monkeypatch.setattr(service.core, "handle_checkout", boom)
        client = ServiceClient(service.url)
        token = client.join(0)
        with pytest.raises(RemoteServiceError) as excinfo:
            client.checkout(CheckoutRequest(0, token, 0.0))
        assert excinfo.value.http_status == 500
        assert excinfo.value.code == wire.ErrorCode.INTERNAL
        monkeypatch.undo()
        assert client.checkout(CheckoutRequest(0, token, 0.0)) is not None
        assert service.errors_returned[wire.ErrorCode.INTERNAL] == 1
