"""Remote deployment path: HttpTransport, RemoteDevice, simulator parity.

The headline contract of the API redesign: the *same* device code and
the *same* simulator drive an in-process core and a live HTTP service,
and a sequential run is bit-identical across the two.
"""

import threading

import numpy as np
import pytest

from repro.core.config import DeviceConfig, ServerConfig
from repro.core.protocol import CheckoutRequest
from repro.core.server_core import ServerCore
from repro.data import iid_partition, make_mnist_like
from repro.evaluation import assert_traces_identical
from repro.models import MulticlassLogisticRegression
from repro.optim import paper_sgd
from repro.serve import (
    CrowdService,
    HttpTransport,
    RemoteDevice,
    RemoteServerCore,
    ServiceClient,
)
from repro.simulation import CrowdSimulator, SimulationConfig
from repro.utils.exceptions import ConfigurationError, ProtocolError

NUM_DEVICES = 5
DIM, CLASSES = 50, 10


def make_core(max_iterations, learning_rate=1.0, target_error=None):
    """A server core matching what CrowdSimulator builds for its runs."""
    model = MulticlassLogisticRegression(DIM, CLASSES)
    optimizer = paper_sgd(
        model.init_parameters(),
        learning_rate_constant=learning_rate,
        projection_radius=100.0,
    )
    return ServerCore(
        model, optimizer,
        ServerConfig(max_iterations=max_iterations, target_error=target_error),
    )


@pytest.fixture(scope="module")
def data():
    train, test = make_mnist_like(num_train=250, num_test=60, seed=0)
    parts = iid_partition(train, NUM_DEVICES, np.random.default_rng(0))
    return parts, test


class TestSimulatorParity:
    def test_http_run_bit_identical_to_direct(self, data):
        """The acceptance gate: a full training run over live HTTP ends
        with exactly the parameters of the in-process fused run."""
        parts, test = data
        total = sum(len(p) for p in parts)
        base = dict(num_devices=NUM_DEVICES, batch_size=4, num_snapshots=5)
        model = MulticlassLogisticRegression(DIM, CLASSES)

        direct = CrowdSimulator(
            model, parts, test,
            SimulationConfig(transport="direct", **base), seed=3,
        ).run()

        with CrowdService(make_core(total + 1)) as service:
            simulator = CrowdSimulator(
                model, parts, test,
                SimulationConfig(
                    transport="http", server_url=service.url, **base
                ),
                seed=3,
            )
            assert simulator.server is None  # the server lives remotely
            assert simulator.transport.synchronous
            http = simulator.run()
            assert service.total_errors == 0

        assert_traces_identical(direct, http, context="http_vs_direct")
        assert np.array_equal(direct.final_parameters, http.final_parameters)

    def test_http_run_respects_remote_stop(self, data):
        """A server-side T_max bound ends the remote run cleanly."""
        parts, test = data
        with CrowdService(make_core(max_iterations=7)) as service:
            trace = CrowdSimulator(
                MulticlassLogisticRegression(DIM, CLASSES), parts, test,
                SimulationConfig(
                    num_devices=NUM_DEVICES, batch_size=4, num_snapshots=4,
                    transport="http", server_url=service.url,
                ),
                seed=3,
            ).run()
        assert trace.server_iterations == 7
        assert trace.stop_reason == "max_iterations"

    def test_already_stopped_server_ends_run_immediately(self, data):
        """A stop discovered at *checkout* time (not via a check-in) must
        still be recorded — the run reports the server's reason instead
        of replaying every arrival as a futile round."""
        parts, test = data
        core = make_core(max_iterations=1)
        with CrowdService(core) as service:
            # Exhaust the task before the simulated crowd starts.
            client = ServiceClient(service.url)
            token = client.join(999)
            response = client.checkout(CheckoutRequest(999, token, 0.0))
            from repro.core.protocol import CheckinMessage

            client.checkins([CheckinMessage(
                device_id=999, token=token,
                gradient=np.zeros(response.parameters.shape[0]),
                num_samples=1, noisy_error_count=0,
                noisy_label_counts=np.zeros(CLASSES, dtype=np.int64),
                checkout_iteration=0,
            )])
            assert core.stopped
            requests_before = service.requests_served
            trace = CrowdSimulator(
                MulticlassLogisticRegression(DIM, CLASSES), parts, test,
                SimulationConfig(
                    num_devices=NUM_DEVICES, batch_size=4, num_snapshots=4,
                    transport="http", server_url=service.url,
                ),
                seed=3,
            ).run()
            # One rejected checkout ended the crowd: no per-arrival storm.
            assert service.requests_served - requests_before < 3 * NUM_DEVICES
        assert trace.stop_reason == "max_iterations"
        assert trace.server_iterations == 1  # the pre-run update, fetched

    def test_model_mismatch_fails_fast(self, data):
        parts, test = data
        with CrowdService(make_core(100)) as service:
            with pytest.raises(ConfigurationError, match="parameters"):
                CrowdSimulator(
                    MulticlassLogisticRegression(DIM + 1, CLASSES),
                    parts, test,
                    SimulationConfig(
                        num_devices=NUM_DEVICES, transport="http",
                        server_url=service.url,
                    ),
                    seed=0,
                )


class TestRemoteDevice:
    def test_rounds_until_server_stop(self):
        core = make_core(max_iterations=3)
        with CrowdService(core) as service:
            transport = HttpTransport(service.url)
            remote = RemoteDevice.join(
                transport, 0, MulticlassLogisticRegression(DIM, CLASSES),
                DeviceConfig.default(batch_size=2, num_classes=CLASSES),
                np.random.default_rng(0),
            )
            rng = np.random.default_rng(1)
            acks = []
            for _ in range(10):
                if remote.observe(rng.normal(size=DIM), int(rng.integers(CLASSES))):
                    acks.append(remote.run_round())
            assert remote.stopped
            assert remote.rounds_completed == 3
            assert core.iteration == 3
            # Link counters saw every leg of the completed rounds.
            assert remote.link.request_stats.messages_sent >= 3
            assert remote.link.checkin_stats.payload_floats > 0

    def test_transient_checkin_failure_is_retried_not_lost(self):
        """The buffer is consumed computing a check-in, so a transport
        blip between checkout and check-in must keep the message for
        re-upload instead of discarding those samples' contribution."""
        from repro.serve.client import RemoteServiceError
        from repro.serve import wire

        core = make_core(max_iterations=100)
        with CrowdService(core) as service:
            transport = HttpTransport(service.url)
            remote = RemoteDevice.join(
                transport, 0, MulticlassLogisticRegression(DIM, CLASSES),
                DeviceConfig.default(batch_size=2, num_classes=CLASSES),
                np.random.default_rng(0),
            )
            rng = np.random.default_rng(1)
            while not remote.observe(rng.normal(size=DIM),
                                     int(rng.integers(CLASSES))):
                pass
            real_checkins = transport.client.checkins

            def flaky_checkins(messages):
                raise RemoteServiceError(
                    wire.ErrorCode.UNREACHABLE, "synthetic blip")

            transport.client.checkins = flaky_checkins
            try:
                with pytest.raises(RemoteServiceError):
                    remote.run_round()
            finally:
                transport.client.checkins = real_checkins
            assert core.iteration == 0  # nothing applied yet
            # Next call re-uploads the stranded message first.
            ack = remote.run_round()
            assert ack is not None
            assert core.iteration == 1
            assert remote.rounds_completed == 1

    def test_concurrent_devices_zero_server_errors(self):
        """Acceptance criterion: >= 8 concurrent devices, no 5xx."""
        num_devices = 8
        core = make_core(max_iterations=10**6)
        failures = []

        def drive(device_index, transport):
            try:
                rng = np.random.default_rng(200 + device_index)
                remote = RemoteDevice.join(
                    transport, device_index,
                    MulticlassLogisticRegression(DIM, CLASSES),
                    DeviceConfig.default(batch_size=3, num_classes=CLASSES),
                    np.random.default_rng(device_index),
                )
                for _ in range(15):
                    if remote.observe(rng.normal(size=DIM),
                                      int(rng.integers(CLASSES))):
                        assert remote.run_round() is not None
            except Exception as error:  # noqa: BLE001
                failures.append(error)

        with CrowdService(core) as service:
            transport = HttpTransport(ServiceClient(service.url))
            threads = [
                threading.Thread(target=drive, args=(m, transport))
                for m in range(num_devices)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert not failures
            assert service.total_errors == 0
            # Aggregate invariant: every completed round became exactly
            # one applied update (15 samples / b=3 -> 5 rounds each).
            assert core.iteration == num_devices * 5


class TestRemoteServerCore:
    def test_single_message_endpoints_keep_wire_semantics(self):
        with CrowdService(make_core(100)) as service:
            remote = RemoteServerCore(ServiceClient(service.url))
            token = remote.register_device(0)
            response = remote.handle_checkout(CheckoutRequest(0, token, 0.0))
            assert response.server_iteration == 0
            from repro.core.protocol import CheckinMessage

            message = CheckinMessage(
                device_id=0, token=token,
                gradient=np.zeros(response.parameters.shape[0]),
                num_samples=1, noisy_error_count=0,
                noisy_label_counts=np.zeros(CLASSES, dtype=np.int64),
                checkout_iteration=0,
            )
            ack = remote.handle_checkin(message)
            assert ack.server_iteration == 1
            assert remote.iteration == 1
            # Rejected single check-in raises, like ServerCore.
            bad = CheckinMessage(
                device_id=0, token="forged", gradient=message.gradient,
                num_samples=1, noisy_error_count=0,
                noisy_label_counts=message.noisy_label_counts,
                checkout_iteration=0,
            )
            with pytest.raises(ProtocolError):
                remote.handle_checkin(bad)

    def test_parameters_fetches_live_vector(self):
        core = make_core(100)
        with CrowdService(core) as service:
            remote = RemoteServerCore(ServiceClient(service.url))
            assert np.array_equal(remote.parameters, core.parameters)
