"""Tests for the parameter-domain projections Π_W (Eq. 3)."""

import numpy as np
import pytest

from repro.optim import BoxProjection, IdentityProjection, L2BallProjection
from repro.utils.exceptions import ConfigurationError


class TestL2Ball:
    def test_inside_unchanged(self):
        proj = L2BallProjection(radius=5.0)
        w = np.array([1.0, 2.0])
        assert np.array_equal(proj(w), w)

    def test_outside_rescaled_to_boundary(self):
        proj = L2BallProjection(radius=1.0)
        out = proj(np.array([3.0, 4.0]))
        assert np.linalg.norm(out) == pytest.approx(1.0)

    def test_direction_preserved(self):
        proj = L2BallProjection(radius=1.0)
        w = np.array([3.0, 4.0])
        out = proj(w)
        assert np.allclose(out / np.linalg.norm(out), w / np.linalg.norm(w))

    def test_matches_paper_formula(self):
        """Π_W(w) = min(1, R/‖w‖)·w."""
        proj = L2BallProjection(radius=2.0)
        w = np.array([0.0, 4.0])
        assert np.allclose(proj(w), min(1.0, 2.0 / 4.0) * w)

    def test_zero_vector_fixed(self):
        proj = L2BallProjection(radius=1.0)
        assert np.array_equal(proj(np.zeros(3)), np.zeros(3))

    def test_idempotent(self):
        proj = L2BallProjection(radius=1.0)
        w = np.array([10.0, -10.0])
        assert np.allclose(proj(proj(w)), proj(w))

    def test_rejects_nonpositive_radius(self):
        with pytest.raises(ConfigurationError):
            L2BallProjection(0.0)


class TestBox:
    def test_clamps_coordinates(self):
        proj = BoxProjection(bound=1.0)
        assert np.array_equal(proj(np.array([2.0, -3.0, 0.5])), [1.0, -1.0, 0.5])

    def test_idempotent(self):
        proj = BoxProjection(bound=1.0)
        w = np.array([5.0, -5.0])
        assert np.array_equal(proj(proj(w)), proj(w))


class TestIdentity:
    def test_noop(self):
        proj = IdentityProjection()
        w = np.array([1e9, -1e9])
        assert np.array_equal(proj(w), w)
