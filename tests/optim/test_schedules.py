"""Tests for learning-rate schedules (Eq. 5 and alternatives)."""

import pytest

from repro.optim import ConstantRate, InverseSqrtRate, InverseTimeRate
from repro.optim.schedules import StepDecayRate
from repro.utils.exceptions import ConfigurationError


class TestInverseSqrt:
    def test_eq5_values(self):
        schedule = InverseSqrtRate(2.0)
        assert schedule(1) == 2.0
        assert schedule(4) == 1.0
        assert schedule(100) == pytest.approx(0.2)

    def test_monotone_decreasing(self):
        schedule = InverseSqrtRate(1.0)
        rates = [schedule(t) for t in range(1, 100)]
        assert all(a >= b for a, b in zip(rates, rates[1:]))

    def test_rejects_iteration_zero(self):
        with pytest.raises(ValueError):
            InverseSqrtRate(1.0)(0)

    def test_rejects_nonpositive_constant(self):
        with pytest.raises(ConfigurationError):
            InverseSqrtRate(0.0)


class TestConstant:
    def test_constant(self):
        schedule = ConstantRate(0.3)
        assert schedule(1) == schedule(1000) == 0.3


class TestInverseTime:
    def test_values(self):
        schedule = InverseTimeRate(1.0, decay=1.0)
        assert schedule(1) == 0.5
        assert schedule(9) == 0.1

    def test_decays_faster_than_inverse_sqrt(self):
        sqrt_schedule = InverseSqrtRate(1.0)
        time_schedule = InverseTimeRate(1.0, decay=1.0)
        assert time_schedule(10_000) < sqrt_schedule(10_000)


class TestStepDecay:
    def test_piecewise_constant(self):
        schedule = StepDecayRate(1.0, factor=0.5, period=10)
        assert schedule(1) == 1.0
        assert schedule(9) == 1.0
        assert schedule(10) == 0.5
        assert schedule(20) == 0.25

    def test_factor_one_is_constant(self):
        schedule = StepDecayRate(1.0, factor=1.0, period=5)
        assert schedule(100) == 1.0

    def test_rejects_bad_factor(self):
        with pytest.raises(ValueError):
            StepDecayRate(1.0, factor=0.0)
        with pytest.raises(ValueError):
            StepDecayRate(1.0, factor=1.5)
