"""Tests for the server-side optimizers (Eq. 3, Remark 3)."""

import numpy as np
import pytest

from repro.optim import (
    SGD,
    AdaGrad,
    AveragedSGD,
    ConstantRate,
    InverseSqrtRate,
    L2BallProjection,
)


class TestSGD:
    def test_single_step_eq3(self):
        opt = SGD(np.zeros(2), schedule=ConstantRate(0.5))
        out = opt.step(np.array([1.0, -2.0]))
        assert np.allclose(out, [-0.5, 1.0])

    def test_schedule_decay(self):
        """η(t) = c/√t: step t=4 moves half as far as step t=1."""
        opt = SGD(np.zeros(1), schedule=InverseSqrtRate(1.0))
        g = np.array([1.0])
        w1 = opt.step(g)[0]
        opt.step(g)
        opt.step(g)
        w3 = opt.parameters[0]
        w4 = opt.step(g)[0]
        assert (w3 - w4) == pytest.approx(0.5 * abs(w1))

    def test_projection_applied(self):
        opt = SGD(np.zeros(2), schedule=ConstantRate(10.0),
                  projection=L2BallProjection(1.0))
        out = opt.step(np.array([1.0, 0.0]))
        assert np.linalg.norm(out) == pytest.approx(1.0)

    def test_iteration_counter(self):
        opt = SGD(np.zeros(1))
        for _ in range(5):
            opt.step(np.array([0.0]))
        assert opt.iteration == 5

    def test_rejects_wrong_gradient_shape(self):
        opt = SGD(np.zeros(3))
        with pytest.raises(Exception):
            opt.step(np.zeros(2))

    def test_parameters_are_copies(self):
        opt = SGD(np.zeros(2))
        opt.parameters[0] = 99.0
        assert opt.parameters[0] == 0.0

    def test_initial_parameters_copied(self):
        init = np.zeros(2)
        opt = SGD(init)
        init[0] = 42.0
        assert opt.parameters[0] == 0.0

    def test_converges_on_quadratic(self):
        """Minimize ½‖w − w*‖² with noisy gradients; SGD must converge."""
        rng = np.random.default_rng(0)
        target = np.array([1.0, -2.0, 0.5])
        opt = SGD(np.zeros(3), schedule=InverseSqrtRate(0.5))
        for _ in range(4000):
            noise = rng.normal(0, 0.1, 3)
            opt.step(opt.parameters - target + noise)
        assert np.allclose(opt.parameters, target, atol=0.1)


class TestAdaGrad:
    def test_accumulator_grows(self):
        opt = AdaGrad(np.zeros(2), constant=0.1)
        opt.step(np.array([1.0, 2.0]))
        assert np.allclose(opt.accumulator, [1.0, 4.0])

    def test_per_coordinate_scaling(self):
        """A coordinate with a history of large gradients moves less."""
        opt = AdaGrad(np.zeros(2), constant=1.0)
        for _ in range(10):
            opt.step(np.array([10.0, 0.1]))
        w = opt.parameters
        # Relative movement per unit gradient is much smaller on coord 0.
        assert abs(w[0]) / 10.0 < abs(w[1]) / 0.1

    def test_robust_to_one_huge_gradient(self):
        """Remark 3's motivation: a single outlier gradient cannot blow up
        AdaGrad the way it does plain constant-rate SGD."""
        sgd = SGD(np.zeros(1), schedule=ConstantRate(1.0))
        ada = AdaGrad(np.zeros(1), constant=1.0)
        huge = np.array([1e6])
        sgd.step(huge)
        ada.step(huge)
        assert abs(ada.parameters[0]) < abs(sgd.parameters[0]) / 1000

    def test_converges_on_quadratic(self):
        rng = np.random.default_rng(1)
        target = np.array([0.5, -0.5])
        opt = AdaGrad(np.zeros(2), constant=0.5)
        for _ in range(5000):
            opt.step(opt.parameters - target + rng.normal(0, 0.05, 2))
        assert np.allclose(opt.parameters, target, atol=0.1)

    def test_rejects_bad_constants(self):
        with pytest.raises(ValueError):
            AdaGrad(np.zeros(1), constant=0.0)
        with pytest.raises(ValueError):
            AdaGrad(np.zeros(1), damping=0.0)


class TestAveragedSGD:
    def test_average_tracks_iterates(self):
        opt = AveragedSGD(np.zeros(1), schedule=ConstantRate(1.0))
        opt.step(np.array([-1.0]))  # w = 1
        opt.step(np.array([1.0]))  # w = 0
        assert opt.averaged_parameters[0] == pytest.approx(0.5)

    def test_burn_in_skips_early_iterates(self):
        opt = AveragedSGD(np.zeros(1), schedule=ConstantRate(1.0), burn_in=1)
        opt.step(np.array([-10.0]))  # burn-in iterate w=10, not averaged
        opt.step(np.array([9.0]))  # w = 1
        assert opt.averaged_parameters[0] == pytest.approx(1.0)

    def test_average_has_lower_variance_than_last_iterate(self):
        """Polyak averaging suppresses gradient-noise variance."""
        rng = np.random.default_rng(2)
        final_iterates, final_averages = [], []
        for trial in range(20):
            opt = AveragedSGD(np.zeros(1), schedule=InverseSqrtRate(0.5), burn_in=100)
            for _ in range(1000):
                opt.step(opt.parameters - 1.0 + rng.normal(0, 1.0, 1))
            final_iterates.append(opt.parameters[0])
            final_averages.append(opt.averaged_parameters[0])
        assert np.var(final_averages) < np.var(final_iterates)

    def test_rejects_negative_burn_in(self):
        with pytest.raises(ValueError):
            AveragedSGD(np.zeros(1), burn_in=-1)
