"""Tests for the Dataset container."""

import numpy as np
import pytest

from repro.data import Dataset, concatenate, train_test_split
from repro.utils.exceptions import ConfigurationError


@pytest.fixture
def dataset(rng):
    return Dataset(rng.normal(size=(20, 3)) * 0.1, rng.integers(0, 4, 20), 4)


class TestConstruction:
    def test_length_and_dims(self, dataset):
        assert len(dataset) == 20
        assert dataset.num_features == 3

    def test_rejects_row_mismatch(self):
        with pytest.raises(ConfigurationError):
            Dataset(np.zeros((3, 2)), np.zeros(4, dtype=int), 2)

    def test_rejects_out_of_range_labels(self):
        with pytest.raises(ConfigurationError):
            Dataset(np.zeros((2, 2)), np.array([0, 5]), 3)

    def test_class_counts(self):
        ds = Dataset(np.zeros((5, 2)), np.array([0, 0, 1, 2, 2]), 4)
        assert ds.class_counts().tolist() == [2, 1, 2, 0]

    def test_max_l1_norm(self):
        ds = Dataset(np.array([[0.5, -0.25], [0.1, 0.1]]), np.array([0, 1]), 2)
        assert ds.max_l1_norm == pytest.approx(0.75)

    def test_empty_dataset_l1(self):
        ds = Dataset(np.zeros((0, 2)), np.zeros(0, dtype=int), 2)
        assert ds.max_l1_norm == 0.0


class TestSubsetAndShuffle:
    def test_subset(self, dataset):
        sub = dataset.subset(np.array([0, 5, 7]))
        assert len(sub) == 3
        assert np.array_equal(sub.features[1], dataset.features[5])

    def test_subset_copies(self, dataset):
        sub = dataset.subset(np.array([0]))
        sub.features[0, 0] = 99.0
        assert dataset.features[0, 0] != 99.0

    def test_shuffled_preserves_pairs(self, dataset, rng):
        shuffled = dataset.shuffled(rng)
        # Every (feature row, label) pair must still co-occur.
        original = {
            (tuple(np.round(f, 9)), int(l)) for f, l in dataset.samples()
        }
        permuted = {
            (tuple(np.round(f, 9)), int(l)) for f, l in shuffled.samples()
        }
        assert original == permuted

    def test_samples_iterator(self, dataset):
        pairs = list(dataset.samples())
        assert len(pairs) == 20
        assert pairs[3][1] == int(dataset.labels[3])


class TestSplitAndConcat:
    def test_split_sizes(self, dataset, rng):
        train, test = train_test_split(dataset, 0.25, rng)
        assert len(train) == 15
        assert len(test) == 5

    def test_split_disjoint_and_complete(self, dataset, rng):
        train, test = train_test_split(dataset, 0.5, rng)
        assert len(train) + len(test) == len(dataset)

    def test_split_rejects_bad_fraction(self, dataset, rng):
        with pytest.raises(ConfigurationError):
            train_test_split(dataset, 0.0, rng)

    def test_concatenate(self, dataset):
        merged = concatenate([dataset, dataset])
        assert len(merged) == 40

    def test_concatenate_rejects_mismatch(self, dataset):
        other = Dataset(np.zeros((2, 3)), np.zeros(2, dtype=int), 5)
        with pytest.raises(ConfigurationError):
            concatenate([dataset, other])

    def test_concatenate_rejects_empty_list(self):
        with pytest.raises(ConfigurationError):
            concatenate([])
