"""Tests for the class-structured synthetic generator."""

import numpy as np
import pytest

from repro.data.synthetic import ClassClusterGenerator, ClusterSpec
from repro.utils.exceptions import ConfigurationError


@pytest.fixture
def generator():
    spec = ClusterSpec(num_classes=4, num_features=10, class_separation=3.0)
    return ClassClusterGenerator(spec, structure_seed=0)


class TestGeometry:
    def test_class_means_shape_and_norm(self, generator):
        means = generator.class_means
        assert means.shape == (4, 10)
        assert np.allclose(np.linalg.norm(means, axis=1), 3.0)

    def test_structure_reproducible(self):
        spec = ClusterSpec(num_classes=3, num_features=5)
        a = ClassClusterGenerator(spec, structure_seed=7).class_means
        b = ClassClusterGenerator(spec, structure_seed=7).class_means
        assert np.array_equal(a, b)

    def test_structure_varies_with_seed(self):
        spec = ClusterSpec(num_classes=3, num_features=5)
        a = ClassClusterGenerator(spec, structure_seed=0).class_means
        b = ClassClusterGenerator(spec, structure_seed=1).class_means
        assert not np.allclose(a, b)


class TestSampling:
    def test_shapes_and_l1_bound(self, generator, rng):
        ds = generator.sample(200, rng)
        assert len(ds) == 200
        assert ds.num_features == 10
        assert ds.max_l1_norm <= 1.0 + 1e-9

    def test_all_classes_present(self, generator, rng):
        ds = generator.sample(400, rng)
        assert np.all(ds.class_counts() > 0)

    def test_uniform_prior_by_default(self, generator, rng):
        ds = generator.sample(40_000, rng)
        freqs = ds.class_counts() / len(ds)
        assert np.allclose(freqs, 0.25, atol=0.02)

    def test_custom_class_distribution(self, generator, rng):
        probs = np.array([0.7, 0.1, 0.1, 0.1])
        ds = generator.sample(20_000, rng, class_distribution=probs)
        freqs = ds.class_counts() / len(ds)
        assert np.allclose(freqs, probs, atol=0.02)

    def test_rejects_bad_distribution(self, generator, rng):
        with pytest.raises(ValueError):
            generator.sample(10, rng, class_distribution=np.array([0.5, 0.5]))

    def test_train_test_disjoint_draws(self, generator, rng):
        train, test = generator.sample_train_test(100, 50, rng)
        assert len(train) == 100
        assert len(test) == 50
        # Independent draws virtually never coincide.
        assert not np.allclose(train.features[:50], test.features)

    def test_sampling_deterministic_given_rng(self, generator):
        a = generator.sample(20, np.random.default_rng(5))
        b = generator.sample(20, np.random.default_rng(5))
        assert np.array_equal(a.features, b.features)
        assert np.array_equal(a.labels, b.labels)


class TestSeparationKnob:
    def test_separation_controls_class_distinguishability(self, rng):
        """Higher separation = lower nearest-mean error (the calibration
        property DESIGN.md relies on)."""

        def nearest_mean_error(sep):
            spec = ClusterSpec(num_classes=5, num_features=20, class_separation=sep)
            gen = ClassClusterGenerator(spec, structure_seed=0)
            train = gen.sample(2000, np.random.default_rng(1))
            test = gen.sample(1000, np.random.default_rng(2))
            means = np.stack(
                [train.features[train.labels == c].mean(axis=0) for c in range(5)]
            )
            dists = ((test.features[:, None, :] - means[None]) ** 2).sum(axis=2)
            return float(np.mean(dists.argmin(axis=1) != test.labels))

        assert nearest_mean_error(5.0) < nearest_mean_error(1.0)


class TestSpecValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_classes": 0, "num_features": 5},
            {"num_classes": 3, "num_features": 0},
            {"num_classes": 3, "num_features": 5, "class_separation": 0.0},
            {"num_classes": 3, "num_features": 5, "subclusters_per_class": 0},
        ],
    )
    def test_rejects_bad_spec(self, kwargs):
        with pytest.raises(ConfigurationError):
            ClusterSpec(**kwargs)
