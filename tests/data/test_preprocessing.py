"""Tests for the PCA + L1 preprocessing pipeline (Section V-C)."""

import numpy as np
import pytest

from repro.data import Dataset, PcaL1Pipeline, preprocess_train_test
from repro.utils.exceptions import ConfigurationError


@pytest.fixture
def raw(rng):
    features = rng.normal(size=(300, 20)) * np.linspace(5, 0.1, 20)
    labels = rng.integers(0, 3, 300)
    return Dataset(features, labels, 3)


class TestPipeline:
    def test_output_dims(self, raw):
        out = PcaL1Pipeline(5).fit_transform(raw)
        assert out.num_features == 5
        assert len(out) == len(raw)

    def test_l1_bound_enforced(self, raw):
        out = PcaL1Pipeline(5).fit_transform(raw)
        assert out.max_l1_norm <= 1.0 + 1e-9

    def test_labels_pass_through(self, raw):
        out = PcaL1Pipeline(5).fit_transform(raw)
        assert np.array_equal(out.labels, raw.labels)

    def test_unfitted_transform_raises(self, raw):
        with pytest.raises(ConfigurationError):
            PcaL1Pipeline(5).transform(raw)

    def test_fit_on_train_only(self, raw, rng):
        """Transforming test data must use the train-fitted PCA (no leak)."""
        pipeline = PcaL1Pipeline(5).fit(raw)
        other = Dataset(rng.normal(size=(50, 20)), rng.integers(0, 3, 50), 3)
        out_a = pipeline.transform(other)
        # Refitting on `other` gives a different projection.
        out_b = PcaL1Pipeline(5).fit(other).transform(other)
        assert not np.allclose(out_a.features, out_b.features)

    def test_is_fitted_flag(self, raw):
        pipeline = PcaL1Pipeline(5)
        assert not pipeline.is_fitted
        pipeline.fit(raw)
        assert pipeline.is_fitted


class TestPreprocessTrainTest:
    def test_both_splits_transformed(self, raw, rng):
        test = Dataset(rng.normal(size=(40, 20)), rng.integers(0, 3, 40), 3)
        out_train, out_test = preprocess_train_test(raw, test, 6)
        assert out_train.num_features == 6
        assert out_test.num_features == 6
        assert out_test.max_l1_norm <= 1.0 + 1e-9

    def test_preserves_class_structure(self, rng):
        """Separable raw data stays separable through the pipeline."""
        labels = rng.integers(0, 2, 400)
        centers = np.array([[3.0] * 20, [-3.0] * 20])
        features = centers[labels] + rng.normal(size=(400, 20))
        raw_train = Dataset(features[:300], labels[:300], 2)
        raw_test = Dataset(features[300:], labels[300:], 2)
        train, test = preprocess_train_test(raw_train, raw_test, 3)

        from repro.models import MulticlassLogisticRegression

        model = MulticlassLogisticRegression(3, 2)
        w = model.init_parameters()
        for _ in range(300):
            w = w - 2.0 * model.gradient(w, train.features, train.labels)
        assert model.error_rate(w, test.features, test.labels) < 0.1
