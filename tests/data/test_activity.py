"""Tests for the synthetic activity-recognition pipeline (Section V-B)."""

import numpy as np
import pytest

from repro.data import (
    ACTIVITY_NAMES,
    IN_VEHICLE,
    NUM_ACTIVITIES,
    ON_FOOT,
    STILL,
    ActivityConfig,
    ActivityTraceGenerator,
    collect_on_label_change,
    make_activity_stream,
)
from repro.data.dataset import Dataset
from repro.utils.exceptions import ConfigurationError


class TestTraceGeneration:
    def test_shapes(self, rng):
        gen = ActivityTraceGenerator()
        signal, labels = gen.generate_trace(30.0, rng)
        assert signal.shape == (600, 3)  # 30 s at 20 Hz
        assert labels.shape == (600,)

    def test_labels_in_range(self, rng):
        gen = ActivityTraceGenerator()
        _, labels = gen.generate_trace(600.0, rng)
        assert set(np.unique(labels)) <= {STILL, ON_FOOT, IN_VEHICLE}

    def test_all_regimes_eventually_visited(self, rng):
        gen = ActivityTraceGenerator(ActivityConfig(mean_dwell_s=20.0))
        _, labels = gen.generate_trace(2000.0, rng)
        assert set(np.unique(labels)) == {STILL, ON_FOOT, IN_VEHICLE}

    def test_gravity_baseline_when_still(self, rng):
        gen = ActivityTraceGenerator(ActivityConfig(mean_dwell_s=1e9))
        # Force an all-still trace by trying seeds until the first regime is Still.
        for seed in range(20):
            signal, labels = gen.generate_trace(10.0, np.random.default_rng(seed))
            if np.all(labels == STILL):
                magnitudes = np.linalg.norm(signal, axis=1)
                assert magnitudes.mean() == pytest.approx(9.81, abs=0.1)
                return
        pytest.fail("no all-still trace found")

    def test_walking_has_more_dynamic_energy_than_still(self, rng):
        gen = ActivityTraceGenerator(ActivityConfig(mean_dwell_s=30.0))
        signal, labels = gen.generate_trace(3000.0, rng)
        magnitudes = np.linalg.norm(signal, axis=1)
        def dynamic_power(mask):
            vals = magnitudes[mask]
            return np.var(vals)
        assert dynamic_power(labels == ON_FOOT) > 10 * dynamic_power(labels == STILL)

    def test_rejects_bad_duration(self, rng):
        with pytest.raises(ConfigurationError):
            ActivityTraceGenerator().generate_trace(0.0, rng)


class TestWindowedFeatures:
    def test_dataset_shape(self, rng):
        gen = ActivityTraceGenerator()
        ds = gen.windowed_features(320.0, rng)
        assert isinstance(ds, Dataset)
        assert ds.num_features == 64
        assert ds.num_classes == NUM_ACTIVITIES
        assert len(ds) == 100  # 320 s / 3.2 s windows

    def test_l1_normalized(self, rng):
        ds = ActivityTraceGenerator().windowed_features(320.0, rng)
        assert ds.max_l1_norm <= 1.0 + 1e-9

    def test_features_are_separable(self, rng):
        """A linear model must learn the 3 activities well above chance —
        the property that makes Fig. 3's fast convergence possible."""
        from repro.models import MulticlassLogisticRegression

        gen = ActivityTraceGenerator(ActivityConfig(mean_dwell_s=30.0))
        train = gen.windowed_features(6000.0, np.random.default_rng(0))
        test = gen.windowed_features(2000.0, np.random.default_rng(1))
        model = MulticlassLogisticRegression(64, 3)
        w = model.init_parameters()
        for _ in range(400):
            w = w - 2.0 * model.gradient(w, train.features, train.labels)
        error = model.error_rate(w, test.features, test.labels)
        assert error < 0.25


class TestCollectOnChange:
    def test_removes_repeats(self):
        ds = Dataset(np.zeros((6, 2)), np.array([0, 0, 1, 1, 1, 2]), 3)
        out = collect_on_label_change(ds)
        assert out.labels.tolist() == [0, 1, 2]

    def test_keeps_first_sample(self):
        ds = Dataset(np.zeros((3, 2)), np.array([1, 1, 1]), 3)
        out = collect_on_label_change(ds)
        assert len(out) == 1

    def test_empty_passthrough(self):
        ds = Dataset(np.zeros((0, 2)), np.zeros(0, dtype=int), 3)
        assert len(collect_on_label_change(ds)) == 0

    def test_no_consecutive_duplicates_in_output(self, rng):
        stream = make_activity_stream(60, rng)
        assert np.all(np.diff(stream.labels) != 0)


class TestActivityStream:
    def test_exact_count(self, rng):
        ds = make_activity_stream(25, rng)
        assert len(ds) == 25

    def test_rejects_bad_count(self, rng):
        with pytest.raises(ConfigurationError):
            make_activity_stream(0, rng)

    def test_names_match_classes(self):
        assert len(ACTIVITY_NAMES) == NUM_ACTIVITIES == 3
