"""Tests for the thermostat regression dataset."""

import numpy as np
import pytest

from repro.data import THERMOSTAT_DIM, make_thermostat_data, make_thermostat_split
from repro.models import RidgeRegression
from repro.utils.exceptions import ConfigurationError


class TestGeneration:
    def test_shapes(self):
        x, y = make_thermostat_data(200)
        assert x.shape == (200, THERMOSTAT_DIM)
        assert y.shape == (200,)

    def test_l1_precondition(self):
        x, _ = make_thermostat_data(500)
        assert np.all(np.sum(np.abs(x), axis=1) <= 1.0 + 1e-9)

    def test_targets_bounded(self):
        _, y = make_thermostat_data(500)
        assert y.min() >= -1.0
        assert y.max() <= 1.0

    def test_reproducible(self):
        a = make_thermostat_data(50, seed=3)
        b = make_thermostat_data(50, seed=3)
        assert np.array_equal(a[0], b[0])
        assert np.array_equal(a[1], b[1])

    def test_structure_seed_changes_preferences(self):
        _, y0 = make_thermostat_data(2000, seed=0, structure_seed=0)
        _, y1 = make_thermostat_data(2000, seed=0, structure_seed=9)
        assert not np.allclose(y0, y1)

    def test_rejects_bad_args(self):
        with pytest.raises(ConfigurationError):
            make_thermostat_data(0)
        with pytest.raises(ConfigurationError):
            make_thermostat_data(10, noise=-1.0)

    def test_split_shares_structure(self):
        (train_x, train_y), (test_x, test_y) = make_thermostat_split(
            num_train=300, num_test=100
        )
        assert train_x.shape[0] == 300
        assert test_x.shape[0] == 100
        # Independent draws.
        assert not np.allclose(train_x[:100], test_x)


class TestLearnability:
    def test_ridge_learns_preferences(self):
        """The regression model must recover the preference function well
        enough for RMSE ≪ target spread — the property the thermostat
        example relies on."""
        (train_x, train_y), (test_x, test_y) = make_thermostat_split(
            num_train=3000, num_test=800
        )
        model = RidgeRegression(THERMOSTAT_DIM, l2_regularization=1e-5,
                                residual_bound=2.0)
        w = model.init_parameters()
        for _ in range(3000):
            w = w - 2.0 * model.gradient(w, train_x, train_y)
        rmse = float(np.sqrt(np.mean((model.predict(w, test_x) - test_y) ** 2)))
        assert rmse < 0.12
        assert rmse < np.std(test_y) / 1.5
