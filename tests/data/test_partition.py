"""Tests for sample-to-device partitioning."""

import numpy as np
import pytest

from repro.data import Dataset, dirichlet_partition, iid_partition, shard_partition
from repro.utils.exceptions import ConfigurationError


@pytest.fixture
def dataset(rng):
    return Dataset(rng.normal(size=(100, 2)) * 0.1, np.arange(100) % 5, 5)


def all_indices_covered(dataset, parts):
    total = sum(len(p) for p in parts)
    return total == len(dataset)


class TestIid:
    def test_balanced_sizes(self, dataset, rng):
        parts = iid_partition(dataset, 10, rng)
        assert [len(p) for p in parts] == [10] * 10

    def test_complete_coverage(self, dataset, rng):
        parts = iid_partition(dataset, 7, rng)
        assert all_indices_covered(dataset, parts)

    def test_uneven_division(self, rng):
        ds = Dataset(np.zeros((10, 2)), np.zeros(10, dtype=int), 2)
        parts = iid_partition(ds, 3, rng)
        assert sorted(len(p) for p in parts) == [3, 3, 4]

    def test_randomized_across_rngs(self, dataset):
        a = iid_partition(dataset, 4, np.random.default_rng(0))
        b = iid_partition(dataset, 4, np.random.default_rng(1))
        assert not np.array_equal(a[0].labels, b[0].labels)

    def test_roughly_uniform_labels_per_device(self, rng):
        """i.i.d. assignment keeps per-device class mixes close to global."""
        big = Dataset(np.zeros((5000, 2)), np.arange(5000) % 5, 5)
        parts = iid_partition(big, 10, rng)
        for part in parts:
            freqs = part.class_counts() / len(part)
            assert np.allclose(freqs, 0.2, atol=0.06)


class TestDirichlet:
    def test_complete_coverage(self, dataset, rng):
        parts = dirichlet_partition(dataset, 5, rng, alpha=0.5)
        assert all_indices_covered(dataset, parts)

    def test_small_alpha_skews_labels(self, rng):
        big = Dataset(np.zeros((5000, 2)), np.arange(5000) % 5, 5)
        parts = dirichlet_partition(big, 10, rng, alpha=0.05)
        # At least one device must be strongly dominated by one class.
        max_shares = [
            part.class_counts().max() / max(len(part), 1)
            for part in parts
            if len(part) > 10
        ]
        assert max(max_shares) > 0.6

    def test_large_alpha_near_iid(self, rng):
        big = Dataset(np.zeros((5000, 2)), np.arange(5000) % 5, 5)
        parts = dirichlet_partition(big, 10, rng, alpha=1000.0)
        for part in parts:
            if len(part) > 100:
                freqs = part.class_counts() / len(part)
                assert np.allclose(freqs, 0.2, atol=0.08)

    def test_rejects_bad_alpha(self, dataset, rng):
        with pytest.raises(ConfigurationError):
            dirichlet_partition(dataset, 5, rng, alpha=0.0)


class TestShard:
    def test_complete_coverage(self, dataset, rng):
        parts = shard_partition(dataset, 10, rng, shards_per_device=2)
        assert all_indices_covered(dataset, parts)

    def test_two_shards_limits_class_diversity(self, rng):
        big = Dataset(np.zeros((5000, 2)), np.arange(5000) % 10, 10)
        parts = shard_partition(big, 25, rng, shards_per_device=2)
        classes_per_device = [
            int((part.class_counts() > 0).sum()) for part in parts
        ]
        assert max(classes_per_device) <= 4  # ≈2 shards → ≈2-3 classes

    def test_rejects_too_many_shards(self, rng):
        ds = Dataset(np.zeros((5, 2)), np.zeros(5, dtype=int), 2)
        with pytest.raises(ConfigurationError):
            shard_partition(ds, 10, rng, shards_per_device=2)
