"""Tests for the MNIST-like and CIFAR-like benchmark datasets."""

import numpy as np
import pytest

from repro.data import (
    CIFAR_CLASSES,
    CIFAR_DIM,
    MNIST_CLASSES,
    MNIST_DIM,
    make_cifar_like,
    make_mnist_like,
)


class TestMnistLike:
    def test_dimensions_match_paper(self):
        train, test = make_mnist_like(num_train=100, num_test=50)
        assert train.num_features == MNIST_DIM == 50
        assert train.num_classes == MNIST_CLASSES == 10
        assert len(train) == 100
        assert len(test) == 50

    def test_l1_normalized(self):
        train, _ = make_mnist_like(num_train=200, num_test=10)
        assert train.max_l1_norm <= 1.0 + 1e-9

    def test_reproducible(self):
        a, _ = make_mnist_like(num_train=50, num_test=10, seed=3)
        b, _ = make_mnist_like(num_train=50, num_test=10, seed=3)
        assert np.array_equal(a.features, b.features)

    def test_seed_varies_samples_not_structure(self):
        a, _ = make_mnist_like(num_train=50, num_test=10, seed=0)
        b, _ = make_mnist_like(num_train=50, num_test=10, seed=1)
        assert not np.allclose(a.features, b.features)

    def test_default_sizes_are_paper_sizes(self):
        import inspect

        sig = inspect.signature(make_mnist_like)
        assert sig.parameters["num_train"].default == 60_000
        assert sig.parameters["num_test"].default == 10_000

    def test_linear_classifier_error_near_paper_floor(self):
        """A trained linear model reaches roughly the paper's 0.1 floor."""
        from repro.baselines import CentralizedBatchTrainer
        from repro.models import MulticlassLogisticRegression

        train, test = make_mnist_like(num_train=6000, num_test=1500)
        model = MulticlassLogisticRegression(50, 10, l2_regularization=1e-4)
        err = CentralizedBatchTrainer(model).evaluate(
            train, test, np.random.default_rng(0)
        )
        assert 0.05 <= err <= 0.18


class TestCifarLike:
    def test_dimensions_match_paper(self):
        train, test = make_cifar_like(num_train=100, num_test=50)
        assert train.num_features == CIFAR_DIM == 100
        assert train.num_classes == CIFAR_CLASSES == 10

    def test_l1_normalized(self):
        train, _ = make_cifar_like(num_train=200, num_test=10)
        assert train.max_l1_norm <= 1.0 + 1e-9

    def test_default_sizes_are_paper_sizes(self):
        import inspect

        sig = inspect.signature(make_cifar_like)
        assert sig.parameters["num_train"].default == 50_000
        assert sig.parameters["num_test"].default == 10_000

    def test_harder_than_mnist_like(self):
        """CIFAR-like must have the higher error floor (0.3 vs 0.1)."""
        from repro.baselines import CentralizedBatchTrainer
        from repro.models import MulticlassLogisticRegression

        mtrain, mtest = make_mnist_like(num_train=6000, num_test=1500)
        ctrain, ctest = make_cifar_like(num_train=6000, num_test=1500)
        m_err = CentralizedBatchTrainer(
            MulticlassLogisticRegression(50, 10, l2_regularization=1e-4)
        ).evaluate(mtrain, mtest, np.random.default_rng(0))
        c_err = CentralizedBatchTrainer(
            MulticlassLogisticRegression(100, 10, l2_regularization=1e-4)
        ).evaluate(ctrain, ctest, np.random.default_rng(0))
        assert c_err > m_err + 0.1
        assert 0.2 <= c_err <= 0.45
