"""Tests of the inter-process file lock."""

import os

import pytest

from repro.store import locking
from repro.store.locking import FileLock, LockTimeout


class TestFileLock:
    def test_acquire_release(self, tmp_path):
        lock = FileLock(str(tmp_path / "a.lock"))
        assert not lock.locked
        lock.acquire()
        assert lock.locked
        lock.release()
        assert not lock.locked

    def test_context_manager(self, tmp_path):
        with FileLock(str(tmp_path / "a.lock")) as lock:
            assert lock.locked
        assert not lock.locked

    def test_creates_parent_directories(self, tmp_path):
        with FileLock(str(tmp_path / "deep" / "er" / "a.lock")):
            pass

    def test_reacquire_after_release(self, tmp_path):
        lock = FileLock(str(tmp_path / "a.lock"))
        for _ in range(3):
            with lock:
                pass

    def test_double_acquire_is_an_error(self, tmp_path):
        with FileLock(str(tmp_path / "a.lock")) as lock:
            with pytest.raises(RuntimeError, match="already held"):
                lock.acquire()

    def test_release_unheld_is_an_error(self, tmp_path):
        with pytest.raises(RuntimeError, match="not held"):
            FileLock(str(tmp_path / "a.lock")).release()

    def test_contention_times_out(self, tmp_path):
        # flock conflicts apply between open file descriptions, so two
        # FileLock objects contend even within one process.
        path = str(tmp_path / "a.lock")
        with FileLock(path):
            contender = FileLock(path, timeout=0.2, poll_interval=0.02)
            with pytest.raises(LockTimeout, match="could not lock"):
                contender.acquire()
            assert not contender.locked

    def test_negative_timeout_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="timeout"):
            FileLock(str(tmp_path / "a.lock"), timeout=-1.0)


class TestExclusiveCreateFallback:
    """The non-fcntl path (Windows and friends), forced via monkeypatch."""

    @pytest.fixture(autouse=True)
    def no_fcntl(self, monkeypatch):
        monkeypatch.setattr(locking, "fcntl", None)

    def test_acquire_release(self, tmp_path):
        path = str(tmp_path / "a.lock")
        with FileLock(path):
            assert os.path.exists(path)
        assert not os.path.exists(path)  # fallback removes its lock file

    def test_contention_times_out(self, tmp_path):
        path = str(tmp_path / "a.lock")
        with FileLock(path):
            with pytest.raises(LockTimeout):
                FileLock(path, timeout=0.2, poll_interval=0.02).acquire()

    def test_stale_lock_is_broken(self, tmp_path):
        path = str(tmp_path / "a.lock")
        with open(path, "w") as handle:
            handle.write("999999")  # abandoned by a long-dead process
        old = os.stat(path).st_mtime - 1000
        os.utime(path, (old, old))
        lock = FileLock(path, timeout=1.0, poll_interval=0.02,
                        stale_after=60.0)
        lock.acquire()  # must not time out
        lock.release()
