"""Tests of the ``repro-store`` command line interface."""

import json

import numpy as np
import pytest

from repro.evaluation.curves import ErrorCurve
from repro.experiments.results import FigureResult
from repro.store import RunStore, StoreError, digest
from repro.store.cli import main, parse_age


def curve(values) -> ErrorCurve:
    return ErrorCurve(np.arange(1, len(values) + 1),
                      np.asarray(values, dtype=np.float64))


@pytest.fixture
def root(tmp_path):
    store = RunStore(str(tmp_path / "store"))
    store.put(digest(["trial", 0]), curve([0.5, 0.4, 0.3]),
              extra={"experiment": "fig4", "label": "crowd", "trial": 0})
    store.put(digest(["ref"]), 0.15,
              extra={"experiment": "fig4", "label": "batch"})
    store.put(
        digest(["fig", "a"]),
        FigureResult("fig4", curves={"crowd": curve([0.5, 0.4, 0.3])},
                     reference_lines={"batch": 0.15}),
        extra={"experiment": "fig4", "seed": 0},
    )
    store.put(
        digest(["fig", "b"]),
        FigureResult("fig4", curves={"crowd": curve([0.5, 0.45, 0.42])},
                     reference_lines={"batch": 0.18}),
        extra={"experiment": "fig4", "seed": 1},
    )
    return store.root


class TestParseAge:
    def test_units(self):
        assert parse_age("90") == 90.0
        assert parse_age("45s") == 45.0
        assert parse_age("30m") == 1800.0
        assert parse_age("12h") == 43200.0
        assert parse_age("7d") == 604800.0

    def test_rejects_garbage(self):
        for bad in ("", "soon", "-5s"):
            with pytest.raises(StoreError):
                parse_age(bad)


class TestList:
    def test_lists_everything(self, root, capsys):
        assert main(["--store", root, "list"]) == 0
        out = capsys.readouterr().out
        assert "(4 entries)" in out
        assert "error_curve" in out and "figure_result" in out

    def test_type_filter(self, root, capsys):
        assert main(["--store", root, "list", "--type", "scalar"]) == 0
        out = capsys.readouterr().out
        assert "(1 entry)" in out and "batch" in out

    def test_long_prints_full_keys(self, root, capsys):
        assert main(["--store", root, "list", "--long"]) == 0
        out = capsys.readouterr().out
        assert digest(["ref"]) in out

    def test_empty_store(self, tmp_path, capsys):
        assert main(["--store", str(tmp_path / "fresh"), "list"]) == 0
        assert "empty" in capsys.readouterr().out

    def test_missing_store_dir_errors(self, monkeypatch, capsys):
        from repro.store import STORE_DIR_ENV
        monkeypatch.delenv(STORE_DIR_ENV, raising=False)
        with pytest.raises(SystemExit):
            main(["list"])

    def test_store_dir_from_env(self, root, monkeypatch, capsys):
        from repro.store import STORE_DIR_ENV
        monkeypatch.setenv(STORE_DIR_ENV, root)
        assert main(["list"]) == 0
        assert "(4 entries)" in capsys.readouterr().out


class TestShow:
    def test_prints_manifest_json(self, root, capsys):
        key = digest(["trial", 0])
        assert main(["--store", root, "show", key[:12]]) == 0
        manifest = json.loads(capsys.readouterr().out)
        assert manifest["key"] == key
        assert manifest["label"] == "crowd"

    def test_unknown_prefix_fails(self, root, capsys):
        assert main(["--store", root, "show", "ffffffffffff"]) == 2
        assert "no store entry" in capsys.readouterr().err


class TestDiff:
    def test_identical_runs_match(self, root, capsys):
        key = digest(["fig", "a"])
        assert main(["--store", root, "diff", key, key]) == 0
        assert "MATCH" in capsys.readouterr().out

    def test_different_runs_differ(self, root, capsys):
        assert main(["--store", root, "diff",
                     digest(["fig", "a"]), digest(["fig", "b"])]) == 1
        out = capsys.readouterr().out
        assert "DIFFER" in out and "crowd" in out and "batch" in out

    def test_tolerance_absorbs_small_deltas(self, root, capsys):
        assert main(["--store", root, "diff",
                     digest(["fig", "a"]), digest(["fig", "b"]),
                     "--tolerance", "0.5"]) == 0
        assert "MATCH" in capsys.readouterr().out

    def test_non_figure_entry_rejected(self, root, capsys):
        assert main(["--store", root, "diff",
                     digest(["trial", 0]), digest(["fig", "a"])]) == 2
        assert "figure_result" in capsys.readouterr().err


class TestExport:
    def test_round_trips_curves(self, root, tmp_path, capsys):
        out_path = str(tmp_path / "out.json")
        assert main(["--store", root, "export", digest(["fig", "a"]),
                     "-o", out_path]) == 0
        with open(out_path) as handle:
            loaded = FigureResult.from_json(handle.read())
        assert np.array_equal(loaded.curves["crowd"].errors,
                              np.array([0.5, 0.4, 0.3]))
        assert loaded.reference_lines == {"batch": 0.15}

    def test_stdout_by_default(self, root, capsys):
        assert main(["--store", root, "export", digest(["fig", "a"])]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "curves" in payload


class TestPrune:
    def test_requires_filter(self, root, capsys):
        assert main(["--store", root, "prune"]) == 2
        assert "refusing" in capsys.readouterr().err

    def test_prune_by_type(self, root, capsys):
        assert main(["--store", root, "prune", "--type", "scalar"]) == 0
        assert "pruned 1 entry" in capsys.readouterr().out
        assert len(RunStore(root)) == 3

    def test_prune_all(self, root, capsys):
        assert main(["--store", root, "prune", "--all"]) == 0
        assert "pruned 4 entries" in capsys.readouterr().out
        assert len(RunStore(root)) == 0

    def test_prune_older_than_keeps_fresh(self, root, capsys):
        assert main(["--store", root, "prune", "--older-than", "1d",
                     "--all"]) == 0
        assert "pruned 0 entries" in capsys.readouterr().out
