"""Cross-process store safety: lock races, same-key writes, killed sweeps.

These tests spawn real OS processes.  The killed-sweep test is the
acceptance criterion of the store subsystem: a serial sweep SIGKILLed
mid-trial must resume from the store and finish with curves bit-identical
to an uninterrupted run.
"""

import multiprocessing
import os
import signal
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.evaluation.curves import ErrorCurve
from repro.experiments import (
    ArmSpec,
    ExperimentScale,
    ExperimentSession,
    ExperimentSpec,
)
from repro.store import FileLock, RunStore, digest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
SRC_DIR = os.path.join(REPO_ROOT, "src")


# --------------------------------------------------------------------- #
# Worker functions (module-level so they survive pickling)              #
# --------------------------------------------------------------------- #


def _locked_increment(counter_path: str, lock_path: str, rounds: int) -> None:
    for _ in range(rounds):
        with FileLock(lock_path, timeout=30.0, poll_interval=0.001):
            with open(counter_path) as handle:
                value = int(handle.read())
            with open(counter_path, "w") as handle:
                handle.write(str(value + 1))


def _racing_put(root: str, worker_seed: int) -> None:
    store = RunStore(root)
    rng = np.random.default_rng(0)  # both workers build identical curves
    for index in range(10):
        curve = ErrorCurve(np.arange(1, 4),
                           rng.uniform(0.0, 1.0, size=3))
        store.put(digest(["race", index]), curve,
                  extra={"worker": worker_seed})


class TestLockRace:
    def test_interleaved_increments_lose_nothing(self, tmp_path):
        counter = str(tmp_path / "counter")
        lock = str(tmp_path / "counter.lock")
        with open(counter, "w") as handle:
            handle.write("0")
        workers = [
            multiprocessing.Process(target=_locked_increment,
                                    args=(counter, lock, 50))
            for _ in range(2)
        ]
        for proc in workers:
            proc.start()
        for proc in workers:
            proc.join(timeout=60)
            assert proc.exitcode == 0
        with open(counter) as handle:
            assert int(handle.read()) == 100


class TestSameKeyWriteRace:
    def test_concurrent_puts_leave_consistent_entries(self, tmp_path):
        root = str(tmp_path / "store")
        workers = [
            multiprocessing.Process(target=_racing_put, args=(root, seed))
            for seed in (1, 2)
        ]
        for proc in workers:
            proc.start()
        for proc in workers:
            proc.join(timeout=60)
            assert proc.exitcode == 0
        store = RunStore(root)
        assert len(store) == 10
        rng = np.random.default_rng(0)
        for index in range(10):
            expected = rng.uniform(0.0, 1.0, size=3)
            loaded = store.get(digest(["race", index]))
            assert np.array_equal(loaded.errors, expected)
            # Exactly one writer won; its manifest is internally coherent.
            manifest = store.manifest(digest(["race", index]))
            assert manifest["worker"] in (1, 2)


# --------------------------------------------------------------------- #
# Killed sweep → bit-identical resume                                   #
# --------------------------------------------------------------------- #

TINY = ExperimentScale(num_train=300, num_test=100, num_devices=5,
                       num_trials=2, num_passes=1)


def tiny_spec() -> ExperimentSpec:
    return ExperimentSpec(
        name="killable", dataset="mnist_like", scale=TINY,
        arms=(
            ArmSpec(label="crowd", schedule_kwargs={"constant": 30.0}),
            ArmSpec(label="sgd", kind="central_sgd", seed_offset=5,
                    schedule_kwargs={"constant": 30.0}),
        ),
        reference_arms=(ArmSpec(label="batch", kind="central_batch"),),
    )


# Runs a store-backed sweep but SIGKILLs itself at the start of the
# third task — after two results have been executed AND persisted.
_DYING_SWEEP = textwrap.dedent("""
    import os, signal, sys
    import repro.experiments.session as session_mod
    from repro.experiments import ExperimentSpec, ExperimentSession
    from repro.store import RunStore

    spec_path, store_root = sys.argv[1], sys.argv[2]
    with open(spec_path) as handle:
        spec = ExperimentSpec.from_json(handle.read())

    real = session_mod._execute_task
    executed = {"count": 0}

    def dying(payload):
        if executed["count"] == 2:
            os.kill(os.getpid(), signal.SIGKILL)
        result = real(payload)
        executed["count"] += 1
        return result

    session_mod._execute_task = dying
    ExperimentSession(store=RunStore(store_root)).run(spec, seed=7)
""")


@pytest.mark.slow
class TestKilledSweepResumes:
    def test_resume_is_bit_identical(self, tmp_path):
        spec = tiny_spec()
        spec_path = str(tmp_path / "spec.json")
        with open(spec_path, "w") as handle:
            handle.write(spec.to_json())
        root = str(tmp_path / "store")

        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", _DYING_SWEEP, spec_path, root],
            env=env, cwd=REPO_ROOT, capture_output=True, timeout=120,
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr.decode()

        # The two completed tasks were persisted before the kill; the
        # figure (written last) was not.
        store = RunStore(root)
        assert len(store.query(result_type="figure_result")) == 0
        completed = len(store.query(result_type="error_curve")) + \
            len(store.query(result_type="scalar"))
        assert completed == 2

        # Resume: only the two missing tasks run, and the curves match an
        # uninterrupted (storeless) run exactly.
        reference = ExperimentSession().run(spec, seed=7)
        session = ExperimentSession(store=store)
        resumed = session.run(spec, seed=7)
        assert session.store_stats.task_hits == 2
        assert session.store_stats.task_misses == 2
        assert set(resumed.curves) == set(reference.curves)
        for label in reference.curves:
            assert np.array_equal(resumed.curves[label].iterations,
                                  reference.curves[label].iterations), label
            assert np.array_equal(resumed.curves[label].errors,
                                  reference.curves[label].errors), label
        assert resumed.reference_lines == reference.reference_lines

        # The finished figure is now stored: a repeat run executes nothing.
        repeat_session = ExperimentSession(store=store)
        repeat = repeat_session.run(spec, seed=7)
        assert repeat_session.store_stats.figure_hits == 1
        assert repeat_session.store_stats.task_misses == 0
        for label in reference.curves:
            assert np.array_equal(repeat.curves[label].errors,
                                  reference.curves[label].errors), label
