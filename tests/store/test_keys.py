"""Tests of canonicalization and content-key stability."""

import math

import numpy as np
import pytest

from repro.store import keys
from repro.store.keys import (
    canonical_json,
    canonicalize,
    digest,
    figure_key,
    task_key,
)


class TestCanonicalize:
    def test_sorts_dict_keys(self):
        assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'

    def test_nested_order_insensitive(self):
        a = {"x": {"p": 1, "q": [1, 2]}, "y": 3}
        b = {"y": 3, "x": {"q": [1, 2], "p": 1}}
        assert canonical_json(a) == canonical_json(b)

    def test_tuples_and_lists_equal(self):
        assert canonical_json((1, 2)) == canonical_json([1, 2])

    def test_nonfinite_floats_become_tokens(self):
        assert canonicalize(math.inf) == "__inf__"
        assert canonicalize(-math.inf) == "__-inf__"
        assert canonicalize(math.nan) == "__nan__"
        # The canonical form is strict JSON (no Infinity literals).
        assert "Infinity" not in canonical_json({"eps": math.inf})

    def test_numpy_scalars_collapse(self):
        assert canonicalize(np.int64(3)) == 3
        assert canonicalize(np.float64(0.5)) == 0.5

    def test_int_float_distinct(self):
        assert digest({"v": 1}) != digest({"v": 1.0})

    def test_unknown_types_are_errors(self):
        with pytest.raises(TypeError, match="canonicalize"):
            canonicalize(object())

    def test_digest_is_sha256_hex(self):
        key = digest({"a": 1})
        assert len(key) == 64
        assert set(key) <= set("0123456789abcdef")


class TestTaskKey:
    PAYLOAD = {
        "kind": "crowd", "model": "logistic", "model_kwargs": {},
        "batch_size": 1, "epsilon": math.inf, "trial": 0,
        "base_seed": 3, "num_devices": 5,
        "data_desc": {"dataset": "mnist_like",
                      "dataset_kwargs": {"num_train": 300, "seed": 3}},
        "train_ref": "data0", "test_ref": "data1",
    }

    def test_deterministic(self):
        assert task_key(self.PAYLOAD) == task_key(dict(self.PAYLOAD))

    def test_data_refs_do_not_matter(self):
        other = dict(self.PAYLOAD, train_ref="data7", test_ref="data9")
        assert task_key(other) == task_key(self.PAYLOAD)

    def test_trial_matters(self):
        assert task_key(dict(self.PAYLOAD, trial=1)) != task_key(self.PAYLOAD)

    def test_seed_matters(self):
        assert (task_key(dict(self.PAYLOAD, base_seed=4))
                != task_key(self.PAYLOAD))

    def test_dataset_request_matters(self):
        other = dict(self.PAYLOAD,
                     data_desc={"dataset": "mnist_like",
                                "dataset_kwargs": {"num_train": 600,
                                                   "seed": 3}})
        assert task_key(other) != task_key(self.PAYLOAD)

    def test_format_bump_invalidates(self, monkeypatch):
        before = task_key(self.PAYLOAD)
        monkeypatch.setattr(keys, "KEY_FORMAT", keys.KEY_FORMAT + 1)
        assert task_key(self.PAYLOAD) != before

    def test_distinct_from_figure_namespace(self):
        material = {"spec": {"name": "x"}, "seed": 0}
        assert task_key(material) != figure_key({"name": "x"}, 0)


class TestFigureKey:
    def test_seed_and_spec_matter(self):
        spec = {"name": "fig4", "arms": [{"label": "crowd"}]}
        assert figure_key(spec, 0) != figure_key(spec, 1)
        assert figure_key(spec, 0) != figure_key({**spec, "name": "f"}, 0)

    def test_deterministic(self):
        spec = {"name": "fig4", "arms": [{"label": "crowd"}]}
        assert figure_key(spec, 0) == figure_key(dict(spec), 0)
