"""Tests of RunStore and its directory backend."""

import json
import os

import numpy as np
import pytest

from repro.evaluation.curves import ErrorCurve
from repro.experiments.results import FigureResult
from repro.store import (
    DirectoryBackend,
    RunStore,
    STORE_DIR_ENV,
    StoreError,
    digest,
)
from repro.store.backend import write_json_atomic


def curve(seed: int = 0) -> ErrorCurve:
    rng = np.random.default_rng(seed)
    return ErrorCurve(np.arange(1, 6), rng.uniform(0.0, 1.0, size=5))


def figure(seed: int = 0) -> FigureResult:
    return FigureResult("figX", curves={"crowd": curve(seed)},
                        reference_lines={"batch": 0.125})


def key_of(*material) -> str:
    return digest(list(material))


class TestRoundTrip:
    @pytest.fixture
    def store(self, tmp_path):
        return RunStore(str(tmp_path / "store"))

    def test_curve_bit_identical(self, store):
        original = curve()
        assert store.put(key_of("c"), original)
        loaded = store.get(key_of("c"))
        assert np.array_equal(loaded.iterations, original.iterations)
        assert np.array_equal(loaded.errors, original.errors)
        assert loaded.errors.dtype == np.float64

    def test_scalar(self, store):
        store.put(key_of("s"), 0.1 + 0.2)  # a float with ugly repr
        assert store.get(key_of("s")) == 0.1 + 0.2

    def test_figure_result(self, store):
        store.put(key_of("f"), figure())
        loaded = store.get(key_of("f"))
        assert isinstance(loaded, FigureResult)
        assert np.array_equal(loaded.curves["crowd"].errors,
                              figure().curves["crowd"].errors)
        assert loaded.reference_lines == {"batch": 0.125}

    def test_missing_key_is_none(self, store):
        assert store.get(key_of("nope")) is None

    def test_unstorable_value_is_an_error(self, store):
        with pytest.raises(StoreError, match="cannot store"):
            store.put(key_of("bad"), {"not": "storable"})

    def test_contains_and_len(self, store):
        assert key_of("a") not in store
        store.put(key_of("a"), 1.0)
        store.put(key_of("b"), 2.0)
        assert key_of("a") in store
        assert len(store) == 2
        assert sorted(store.keys()) == sorted([key_of("a"), key_of("b")])


class TestWriteSemantics:
    @pytest.fixture
    def store(self, tmp_path):
        return RunStore(str(tmp_path / "store"))

    def test_first_writer_wins(self, store):
        assert store.put(key_of("k"), 1.0) is True
        assert store.put(key_of("k"), 2.0) is False
        assert store.get(key_of("k")) == 1.0

    def test_overwrite(self, store):
        store.put(key_of("k"), 1.0)
        assert store.put(key_of("k"), 2.0, overwrite=True) is True
        assert store.get(key_of("k")) == 2.0

    def test_manifest_records_context(self, store):
        store.put(key_of("k"), curve(),
                  extra={"experiment": "fig4", "label": "crowd", "trial": 1})
        manifest = store.manifest(key_of("k"))
        assert manifest["experiment"] == "fig4"
        assert manifest["label"] == "crowd"
        assert manifest["trial"] == 1
        assert manifest["type"] == "error_curve"
        assert manifest["key"] == key_of("k")
        assert {"final_error", "tail_error",
                "num_snapshots"} <= set(manifest["summary"])

    def test_extra_cannot_shadow_core_fields(self, store):
        store.put(key_of("k"), 1.0, extra={"key": "spoof", "type": "spoof"})
        manifest = store.manifest(key_of("k"))
        assert manifest["key"] == key_of("k")
        assert manifest["type"] == "scalar"

    def test_partial_entry_is_invisible_and_repairable(self, store):
        # Simulate a writer killed between result and manifest: result
        # present, manifest (the commit record) absent.
        backend = store.backend
        entry = backend.entry_dir(key_of("k"))
        os.makedirs(entry)
        write_json_atomic(os.path.join(entry, "result.json"),
                          {"type": "scalar", "value": 9.0})
        assert store.get(key_of("k")) is None
        assert key_of("k") not in store
        assert store.put(key_of("k"), 1.0) is True  # repair by rewrite
        assert store.get(key_of("k")) == 1.0


class TestQueryPrune:
    @pytest.fixture
    def store(self, tmp_path):
        store = RunStore(str(tmp_path / "store"))
        store.put(key_of("t", 0), curve(0),
                  extra={"experiment": "fig4", "label": "crowd", "trial": 0})
        store.put(key_of("t", 1), curve(1),
                  extra={"experiment": "fig4", "label": "crowd", "trial": 1})
        store.put(key_of("ref"), 0.2,
                  extra={"experiment": "fig5", "label": "batch"})
        store.put(key_of("fig"), figure(),
                  extra={"experiment": "fig4"})
        return store

    def test_query_all_sorted_oldest_first(self, store):
        manifests = store.query()
        assert len(manifests) == 4
        stamps = [m["created_at"] for m in manifests]
        assert stamps == sorted(stamps)

    def test_query_filters(self, store):
        assert len(store.query(experiment="fig4")) == 3
        assert len(store.query(result_type="error_curve")) == 2
        assert len(store.query(label="batch")) == 1
        assert len(store.query(experiment="fig4",
                               result_type="figure_result")) == 1
        assert store.query(experiment="nope") == []

    def test_query_predicate(self, store):
        assert len(store.query(predicate=lambda m: m.get("trial") == 1)) == 1

    def test_prune_requires_a_filter(self, store):
        with pytest.raises(StoreError, match="refusing"):
            store.prune()
        assert len(store) == 4

    def test_prune_by_experiment(self, store):
        assert store.prune(experiment="fig5") == 1
        assert len(store) == 3
        assert store.get(key_of("ref")) is None

    def test_prune_everything(self, store):
        assert store.prune(everything=True) == 4
        assert len(store) == 0

    def test_prune_older_than_spares_fresh_entries(self, store):
        assert store.prune(older_than=3600.0, everything=True) == 0
        assert len(store) == 4

    def test_resolve_prefix(self, store):
        full = key_of("fig")
        assert store.resolve(full[:10]) == full
        with pytest.raises(StoreError, match="no store entry"):
            store.resolve("ffff" * 16)
        with pytest.raises(StoreError, match="empty key prefix"):
            store.resolve("")

    def test_resolve_ambiguous_prefix(self, store):
        # Find two materials whose digests collide on the first hex
        # char (guaranteed within 17 tries by pigeonhole).
        by_first = {}
        for index in range(17):
            key = key_of("amb", index)
            if key[0] in by_first:
                store.put(by_first[key[0]], 1.0)
                store.put(key, 2.0)
                with pytest.raises(StoreError, match="ambiguous"):
                    store.resolve(key[0])
                return
            by_first[key[0]] = key
        raise AssertionError("unreachable")


class TestBackendInvariants:
    def test_malformed_key_rejected(self, tmp_path):
        backend = DirectoryBackend(str(tmp_path / "store"))
        for bad in ("short", "Z" * 64, "ab/../" + "a" * 58):
            with pytest.raises(StoreError, match="malformed"):
                backend.entry_dir(bad)

    def test_format_marker_round_trip(self, tmp_path):
        root = str(tmp_path / "store")
        DirectoryBackend(root)
        DirectoryBackend(root)  # reopening the same store is fine
        marker = os.path.join(root, "store.json")
        with open(marker) as handle:
            payload = json.load(handle)
        payload["format"] = 999
        with open(marker, "w") as handle:
            json.dump(payload, handle)
        with pytest.raises(StoreError, match="format"):
            DirectoryBackend(root)

    def test_corrupt_manifest_is_surfaced(self, tmp_path):
        store = RunStore(str(tmp_path / "store"))
        store.put(key_of("k"), 1.0)
        manifest_path = os.path.join(store.backend.entry_dir(key_of("k")),
                                     "manifest.json")
        with open(manifest_path, "w") as handle:
            handle.write("{not json")
        with pytest.raises(StoreError, match="corrupt"):
            store.manifest(key_of("k"))

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        store = RunStore(str(tmp_path / "store"))
        store.put(key_of("k"), curve())
        leftovers = [name for _, _, files in os.walk(store.root)
                     for name in files if name.startswith(".tmp-")]
        assert leftovers == []


class TestFromEnv:
    def test_unset_returns_none(self, monkeypatch):
        monkeypatch.delenv(STORE_DIR_ENV, raising=False)
        assert RunStore.from_env() is None

    def test_env_variable_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv(STORE_DIR_ENV, str(tmp_path / "envstore"))
        store = RunStore.from_env()
        assert store is not None
        assert store.root == str(tmp_path / "envstore")

    def test_default_used_when_unset(self, tmp_path, monkeypatch):
        monkeypatch.delenv(STORE_DIR_ENV, raising=False)
        store = RunStore.from_env(default=str(tmp_path / "d"))
        assert store is not None and store.root == str(tmp_path / "d")
