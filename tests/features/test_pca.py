"""Tests for the from-scratch PCA (Section V-C preprocessing)."""

import numpy as np
import pytest

from repro.features import PCA
from repro.utils.exceptions import ConfigurationError


@pytest.fixture
def data(rng):
    # Anisotropic Gaussian: variance concentrated in two directions.
    basis = rng.normal(size=(5, 5))
    scales = np.array([10.0, 5.0, 0.5, 0.1, 0.01])
    return rng.normal(size=(400, 5)) * scales @ basis


class TestFitTransform:
    def test_output_shape(self, data):
        out = PCA(2).fit_transform(data)
        assert out.shape == (400, 2)

    def test_components_orthonormal(self, data):
        pca = PCA(3).fit(data)
        gram = pca.components @ pca.components.T
        assert np.allclose(gram, np.eye(3), atol=1e-10)

    def test_projected_mean_is_zero(self, data):
        out = PCA(2).fit_transform(data)
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-10)

    def test_explained_variance_decreasing(self, data):
        pca = PCA(4).fit(data)
        ev = pca.explained_variance
        assert np.all(np.diff(ev) <= 1e-9)

    def test_explained_variance_ratio_sums_below_one(self, data):
        pca = PCA(2).fit(data)
        ratio = pca.explained_variance_ratio
        assert 0.0 < ratio.sum() <= 1.0 + 1e-12

    def test_captures_dominant_directions(self, data):
        """Two components of this data carry almost all the variance."""
        pca = PCA(2).fit(data)
        assert pca.explained_variance_ratio.sum() > 0.95

    def test_matches_covariance_eigenvalues(self, rng):
        data = rng.normal(size=(500, 4)) * np.array([3.0, 2.0, 1.0, 0.5])
        pca = PCA(4).fit(data)
        cov_eigs = np.sort(np.linalg.eigvalsh(np.cov(data.T)))[::-1]
        assert np.allclose(pca.explained_variance, cov_eigs, rtol=1e-8)


class TestInverseTransform:
    def test_roundtrip_with_full_rank(self, rng):
        data = rng.normal(size=(50, 4))
        pca = PCA(4).fit(data)
        recon = pca.inverse_transform(pca.transform(data))
        assert np.allclose(recon, data, atol=1e-8)

    def test_reconstruction_error_decreases_with_components(self, data):
        errors = []
        for k in (1, 2, 3):
            pca = PCA(k).fit(data)
            recon = pca.inverse_transform(pca.transform(data))
            errors.append(np.mean((recon - data) ** 2))
        assert errors[0] >= errors[1] >= errors[2]


class TestValidation:
    def test_unfitted_raises(self):
        with pytest.raises(ConfigurationError):
            PCA(2).transform(np.zeros((3, 5)))

    def test_too_many_components(self):
        with pytest.raises(ConfigurationError):
            PCA(10).fit(np.zeros((5, 4)) + np.eye(5, 4))

    def test_dimension_mismatch_on_transform(self, data):
        pca = PCA(2).fit(data)
        with pytest.raises(ConfigurationError):
            pca.transform(np.zeros((3, 7)))

    def test_is_fitted_flag(self, data):
        pca = PCA(2)
        assert not pca.is_fitted
        pca.fit(data)
        assert pca.is_fitted
