"""Tests for FFT magnitude features (Section V-B pipeline)."""

import numpy as np
import pytest

from repro.features import (
    acceleration_magnitude,
    fft_magnitude,
    fft_magnitude_features,
)
from repro.utils.exceptions import ConfigurationError


class TestAccelerationMagnitude:
    def test_pythagoras(self):
        out = acceleration_magnitude(np.array([[3.0, 4.0, 0.0], [0.0, 0.0, 9.8]]))
        assert np.allclose(out, [5.0, 9.8])

    def test_rejects_wrong_shape(self):
        with pytest.raises(ConfigurationError):
            acceleration_magnitude(np.zeros((5, 2)))


class TestFftMagnitude:
    def test_output_length(self):
        out = fft_magnitude(np.zeros(64), num_bins=64)
        assert out.shape == (64,)

    def test_pure_tone_peaks_at_its_bin(self):
        n, fs = 128, 20.0
        t = np.arange(n) / fs
        freq = 2.5  # Hz -> bin index freq * n / fs = 16
        signal = np.sin(2 * np.pi * freq * t)
        out = fft_magnitude(signal, num_bins=64, remove_mean=True)
        assert out.argmax() == 16

    def test_dc_removed(self):
        out = fft_magnitude(np.full(64, 5.0), num_bins=32, remove_mean=True)
        assert out[0] == pytest.approx(0.0, abs=1e-9)

    def test_dc_kept_when_not_removing_mean(self):
        out = fft_magnitude(np.full(64, 5.0), num_bins=32, remove_mean=False)
        assert out[0] > 100.0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            fft_magnitude(np.zeros((2, 2)), 4)
        with pytest.raises(ConfigurationError):
            fft_magnitude(np.zeros(8), 0)


class TestPipeline:
    def test_feature_matrix_shape(self):
        magnitudes = np.random.default_rng(0).normal(size=640)
        out = fft_magnitude_features(magnitudes, window_size=64, hop=64, num_bins=64)
        assert out.shape == (10, 64)

    def test_empty_input(self):
        out = fft_magnitude_features(np.zeros(10), window_size=64)
        assert out.shape == (0, 64)

    def test_distinguishes_still_from_walking(self):
        """Spectral energy separates a flat signal from an oscillation —
        the physical basis of the activity-recognition task."""
        fs, n = 20.0, 640
        t = np.arange(n) / fs
        rng = np.random.default_rng(1)
        still = 9.8 + rng.normal(0, 0.05, n)
        walking = 9.8 + 2.5 * np.sin(2 * np.pi * 2.0 * t) + rng.normal(0, 0.4, n)
        f_still = fft_magnitude_features(still, 64, 64, 64)
        f_walk = fft_magnitude_features(walking, 64, 64, 64)
        assert f_walk.sum() > 10 * f_still.sum()
