"""Tests for sliding-window segmentation."""

import numpy as np
import pytest

from repro.features import sliding_windows, window_majority_labels
from repro.utils.exceptions import ConfigurationError


class TestSlidingWindows:
    def test_non_overlapping(self):
        out = sliding_windows(np.arange(6.0), window_size=3, hop=3)
        assert out.tolist() == [[0, 1, 2], [3, 4, 5]]

    def test_overlapping(self):
        out = sliding_windows(np.arange(5.0), window_size=3, hop=1)
        assert out.shape == (3, 3)
        assert out[1].tolist() == [1, 2, 3]

    def test_trailing_samples_discarded(self):
        out = sliding_windows(np.arange(7.0), window_size=3, hop=3)
        assert out.shape == (2, 3)

    def test_short_signal_gives_empty(self):
        out = sliding_windows(np.arange(2.0), window_size=3, hop=1)
        assert out.shape == (0, 3)

    def test_rejects_2d_signal(self):
        with pytest.raises(ConfigurationError):
            sliding_windows(np.zeros((3, 3)), 2, 1)

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            sliding_windows(np.arange(5.0), 0, 1)
        with pytest.raises(ConfigurationError):
            sliding_windows(np.arange(5.0), 2, 0)


class TestMajorityLabels:
    def test_majority(self):
        labels = np.array([0, 0, 1, 1, 1, 2])
        out = window_majority_labels(labels, window_size=3, hop=3)
        assert out.tolist() == [0, 1]

    def test_alignment_with_windows(self):
        signal = np.arange(10.0)
        labels = np.arange(10) % 2
        windows = sliding_windows(signal, 4, 2)
        window_labels = window_majority_labels(labels, 4, 2)
        assert windows.shape[0] == window_labels.shape[0]

    def test_short_stream_empty(self):
        assert window_majority_labels(np.array([0]), 3, 3).size == 0
