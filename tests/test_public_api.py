"""Tests of the top-level public API surface."""

import math

import pytest

import repro


class TestExports:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackages_importable(self):
        import repro.analysis
        import repro.baselines
        import repro.core
        import repro.data
        import repro.evaluation
        import repro.experiments
        import repro.features
        import repro.models
        import repro.network
        import repro.optim
        import repro.persist
        import repro.portal
        import repro.privacy
        import repro.shard
        import repro.simulation
        import repro.store
        import repro.utils

    def test_subpackage_all_names_resolve(self):
        import repro.analysis
        import repro.core
        import repro.data
        import repro.models
        import repro.network
        import repro.optim
        import repro.persist
        import repro.privacy
        import repro.shard
        import repro.simulation

        for module in (
            repro.analysis,
            repro.core,
            repro.data,
            repro.models,
            repro.network,
            repro.optim,
            repro.persist,
            repro.privacy,
            repro.shard,
            repro.simulation,
        ):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"


class TestQuickCrowdRun:
    @pytest.fixture(scope="class")
    def report(self):
        return repro.quick_crowd_run(
            num_devices=10, num_train=400, num_test=200, seed=0
        )

    def test_returns_trial_report(self, report):
        assert report.num_trials == 1
        assert 0.0 <= report.final_error <= 1.0

    def test_learns_something(self, report):
        curve = report.mean_curve
        assert curve.final_error < curve.errors[0]

    def test_private_run(self):
        report = repro.quick_crowd_run(
            num_devices=10, epsilon=5.0, batch_size=5,
            num_train=400, num_test=200,
        )
        assert report.traces[0].per_sample_epsilon == pytest.approx(5.0)

    def test_reproducible(self, report):
        again = repro.quick_crowd_run(
            num_devices=10, num_train=400, num_test=200, seed=0
        )
        assert again.final_error == report.final_error
