"""Tests for the discrete Laplace mechanism (Eqs. 11-12)."""

import math

import numpy as np
import pytest

from repro.privacy.discrete_laplace import (
    DiscreteLaplaceMechanism,
    discrete_laplace_variance,
    sample_discrete_laplace,
)


class TestVarianceFormula:
    def test_paper_formula(self):
        # Var = 2 p / (1-p)^2 with p = e^{-eps/2} (Appendix B, Remark 2).
        eps = 1.0
        p = math.exp(-eps / 2.0)
        assert discrete_laplace_variance(eps) == pytest.approx(2 * p / (1 - p) ** 2)

    def test_zero_for_infinite_epsilon(self):
        assert discrete_laplace_variance(math.inf) == 0.0

    def test_decreasing_in_epsilon(self):
        assert discrete_laplace_variance(0.5) > discrete_laplace_variance(2.0)


class TestSampling:
    def test_scalar_type(self):
        z = sample_discrete_laplace(1.0, np.random.default_rng(0))
        assert isinstance(z, int)

    def test_array_shape_and_dtype(self):
        z = sample_discrete_laplace(1.0, np.random.default_rng(0), size=(10,))
        assert z.shape == (10,)
        assert z.dtype == np.int64

    def test_infinite_epsilon_is_zero(self):
        assert sample_discrete_laplace(math.inf, np.random.default_rng(0)) == 0
        z = sample_discrete_laplace(math.inf, np.random.default_rng(0), size=5)
        assert np.all(z == 0)

    def test_zero_mean(self):
        z = sample_discrete_laplace(1.0, np.random.default_rng(1), size=200_000)
        assert abs(z.mean()) < 0.05

    def test_empirical_variance_matches(self):
        eps = 1.0
        z = sample_discrete_laplace(eps, np.random.default_rng(2), size=400_000)
        assert z.var() == pytest.approx(discrete_laplace_variance(eps), rel=0.05)

    def test_distribution_shape(self):
        """P(z) ∝ exp(-eps|z|/2): the ratio P(1)/P(0) must be e^{-eps/2}."""
        eps = 2.0
        z = sample_discrete_laplace(eps, np.random.default_rng(3), size=400_000)
        p0 = np.mean(z == 0)
        p1 = np.mean(z == 1)
        assert p1 / p0 == pytest.approx(math.exp(-eps / 2.0), rel=0.05)

    def test_symmetry(self):
        z = sample_discrete_laplace(1.0, np.random.default_rng(4), size=400_000)
        assert np.mean(z > 0) == pytest.approx(np.mean(z < 0), abs=0.01)


class TestDiscreteLaplaceMechanism:
    def test_identity_when_non_private(self):
        mech = DiscreteLaplaceMechanism(math.inf)
        assert mech.release(7) == 7
        assert np.array_equal(mech.release(np.array([1, 2, 3])), [1, 2, 3])

    def test_scalar_release_is_int(self):
        mech = DiscreteLaplaceMechanism(1.0, np.random.default_rng(0))
        assert isinstance(mech.release(5), int)

    def test_vector_release_integer_valued(self):
        mech = DiscreteLaplaceMechanism(1.0, np.random.default_rng(0))
        out = mech.release(np.array([10, 20, 30]))
        assert out.dtype == np.int64

    def test_can_be_negative_by_default(self):
        mech = DiscreteLaplaceMechanism(0.1, np.random.default_rng(0))
        samples = [mech.release(0) for _ in range(200)]
        assert min(samples) < 0  # Appendix B Remark 2's caveat

    def test_clip_negative(self):
        mech = DiscreteLaplaceMechanism(0.1, np.random.default_rng(0), clip_negative=True)
        samples = [mech.release(0) for _ in range(200)]
        assert min(samples) >= 0

    def test_clip_negative_vector(self):
        mech = DiscreteLaplaceMechanism(0.1, np.random.default_rng(0), clip_negative=True)
        out = mech.release(np.zeros(500, dtype=np.int64))
        assert out.min() >= 0

    def test_noise_variance_property(self):
        mech = DiscreteLaplaceMechanism(1.0)
        assert mech.noise_variance() == pytest.approx(discrete_laplace_variance(1.0))

    def test_monitoring_estimate_converges(self):
        """Eq. 14's error estimate converges despite the DP noise."""
        eps = 0.5
        mech = DiscreteLaplaceMechanism(eps, np.random.default_rng(5))
        true_errors, samples_per_batch, batches = 3, 10, 5000
        noisy_total = sum(mech.release(true_errors) for _ in range(batches))
        estimate = noisy_total / (samples_per_batch * batches)
        assert estimate == pytest.approx(true_errors / samples_per_batch, abs=0.01)
