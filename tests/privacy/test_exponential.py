"""Tests for the exponential mechanism and label perturbation (Eq. 16)."""

import math

import numpy as np
import pytest

from repro.privacy.exponential import (
    ExponentialMechanism,
    label_flip_distribution,
    perturb_label,
    perturb_labels,
)


class TestLabelFlipDistribution:
    def test_sums_to_one(self):
        dist = label_flip_distribution(1.0, 10)
        assert dist.sum() == pytest.approx(1.0)

    def test_keep_probability_formula(self):
        # P(keep) = e^{eps/2} / (e^{eps/2} + C - 1).
        eps, classes = 2.0, 5
        keep = math.exp(eps / 2) / (math.exp(eps / 2) + classes - 1)
        assert label_flip_distribution(eps, classes)[0] == pytest.approx(keep)

    def test_infinite_epsilon_always_keeps(self):
        dist = label_flip_distribution(math.inf, 4)
        assert dist[0] == 1.0

    def test_tiny_epsilon_near_uniform(self):
        dist = label_flip_distribution(1e-9, 10)
        assert dist[0] == pytest.approx(0.1, abs=1e-6)

    def test_other_labels_uniform(self):
        dist = label_flip_distribution(1.0, 6)
        assert np.allclose(dist[1:], dist[1])


class TestPerturbLabel:
    def test_identity_when_non_private(self):
        assert perturb_label(3, 10, math.inf, np.random.default_rng(0)) == 3

    def test_output_in_range(self):
        rng = np.random.default_rng(1)
        outs = {perturb_label(2, 5, 0.1, rng) for _ in range(500)}
        assert outs <= set(range(5))

    def test_keep_rate_matches_formula(self):
        eps, classes, true = 1.0, 10, 4
        rng = np.random.default_rng(2)
        keeps = sum(perturb_label(true, classes, eps, rng) == true for _ in range(50_000))
        expected = label_flip_distribution(eps, classes)[0]
        assert keeps / 50_000 == pytest.approx(expected, rel=0.05)

    def test_flips_are_uniform_over_other_labels(self):
        eps, classes, true = 0.5, 4, 1
        rng = np.random.default_rng(3)
        flipped = [
            out
            for _ in range(60_000)
            if (out := perturb_label(true, classes, eps, rng)) != true
        ]
        counts = np.bincount(flipped, minlength=classes)
        others = counts[[0, 2, 3]]
        assert others.std() / others.mean() < 0.05


class TestPerturbLabels:
    def test_identity_when_non_private(self):
        labels = np.array([0, 1, 2, 3])
        out = perturb_labels(labels, 4, math.inf, np.random.default_rng(0))
        assert np.array_equal(out, labels)

    def test_vectorized_matches_scalar_statistics(self):
        eps, classes = 1.0, 10
        labels = np.full(50_000, 7)
        out = perturb_labels(labels, classes, eps, np.random.default_rng(4))
        keep_rate = np.mean(out == 7)
        expected = label_flip_distribution(eps, classes)[0]
        assert keep_rate == pytest.approx(expected, rel=0.05)

    def test_output_dtype_and_range(self):
        out = perturb_labels(np.array([0, 1]), 3, 0.1, np.random.default_rng(5))
        assert out.dtype == np.int64
        assert set(out.tolist()) <= {0, 1, 2}


class TestExponentialMechanism:
    def test_probabilities_sum_to_one(self):
        mech = ExponentialMechanism(1.0)
        probs = mech.probabilities(np.array([0.0, 1.0, 2.0]))
        assert probs.sum() == pytest.approx(1.0)

    def test_higher_score_more_likely(self):
        mech = ExponentialMechanism(1.0)
        probs = mech.probabilities(np.array([0.0, 1.0]))
        assert probs[1] > probs[0]

    def test_probability_ratio_formula(self):
        eps, sens = 2.0, 1.0
        mech = ExponentialMechanism(eps, sens)
        probs = mech.probabilities(np.array([0.0, 1.0]))
        assert probs[1] / probs[0] == pytest.approx(math.exp(eps / (2 * sens)))

    def test_infinite_epsilon_argmax(self):
        mech = ExponentialMechanism(math.inf)
        probs = mech.probabilities(np.array([0.0, 3.0, 1.0]))
        assert probs.tolist() == [0.0, 1.0, 0.0]

    def test_release_returns_valid_index(self):
        mech = ExponentialMechanism(1.0, rng=np.random.default_rng(0))
        idx = mech.release(np.array([0.0, 1.0, 2.0]))
        assert idx in {0, 1, 2}

    def test_release_frequency_matches_probabilities(self):
        mech = ExponentialMechanism(1.0, rng=np.random.default_rng(1))
        scores = np.array([0.0, 2.0])
        draws = np.array([mech.release(scores) for _ in range(30_000)])
        expected = mech.probabilities(scores)
        assert np.mean(draws == 1) == pytest.approx(expected[1], rel=0.05)
