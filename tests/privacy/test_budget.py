"""Tests for privacy-budget splitting (Appendix B Remark 1, Appendix C)."""

import math

import pytest

from repro.privacy.budget import CentralizedBudget, PrivacyBudget, split_budget
from repro.utils.exceptions import ConfigurationError


class TestPrivacyBudget:
    def test_total_epsilon_decomposition(self):
        budget = PrivacyBudget(1.0, 0.1, 0.01, num_classes=10)
        assert budget.total_epsilon == pytest.approx(1.0 + 0.1 + 10 * 0.01)

    def test_infinite_component_makes_total_infinite(self):
        budget = PrivacyBudget(math.inf, 0.1, 0.01, num_classes=10)
        assert math.isinf(budget.total_epsilon)
        assert not budget.is_private

    def test_non_private_constructor(self):
        budget = PrivacyBudget.non_private(5)
        assert not budget.is_private
        assert budget.num_classes == 5

    def test_is_private(self):
        assert PrivacyBudget(1.0, 1.0, 1.0, 2).is_private

    @pytest.mark.parametrize("bad", [0.0, -1.0])
    def test_rejects_nonpositive_epsilon(self, bad):
        with pytest.raises(ConfigurationError):
            PrivacyBudget(bad, 1.0, 1.0, 2)

    def test_rejects_bad_num_classes(self):
        with pytest.raises(ConfigurationError):
            PrivacyBudget(1.0, 1.0, 1.0, 0)


class TestSplitBudget:
    def test_total_preserved(self):
        budget = split_budget(1.0, 10)
        assert budget.total_epsilon == pytest.approx(1.0)

    def test_gradient_dominates(self):
        """Remark 1: eps ≈ eps_g (monitoring budget is tiny)."""
        budget = split_budget(1.0, 10)
        assert budget.epsilon_gradient >= 0.95

    def test_monitoring_fraction_respected(self):
        budget = split_budget(1.0, 10, monitoring_fraction=0.1)
        monitoring = budget.epsilon_error + 10 * budget.epsilon_label
        assert monitoring == pytest.approx(0.1)

    def test_infinite_total_gives_non_private(self):
        budget = split_budget(math.inf, 10)
        assert not budget.is_private

    def test_rejects_bad_fraction(self):
        with pytest.raises(ConfigurationError):
            split_budget(1.0, 10, monitoring_fraction=1.5)

    def test_more_classes_smaller_per_label_epsilon(self):
        few = split_budget(1.0, 2)
        many = split_budget(1.0, 100)
        assert many.epsilon_label < few.epsilon_label


class TestCentralizedBudget:
    def test_even_split(self):
        budget = CentralizedBudget.even_split(1.0)
        assert budget.epsilon_feature == 0.5
        assert budget.epsilon_label == 0.5
        assert budget.total_epsilon == pytest.approx(1.0)

    def test_infinite_split(self):
        budget = CentralizedBudget.even_split(math.inf)
        assert math.isinf(budget.total_epsilon)

    def test_custom_split(self):
        budget = CentralizedBudget(0.7, 0.3)
        assert budget.total_epsilon == pytest.approx(1.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            CentralizedBudget(0.0, 1.0)
