"""Tests for the vector Laplace mechanism (Eqs. 9-10)."""

import math

import numpy as np
import pytest

from repro.privacy.laplace import LaplaceMechanism, laplace_scale
from repro.utils.exceptions import ConfigurationError


class TestLaplaceScale:
    def test_ratio(self):
        assert laplace_scale(4.0, 2.0) == 2.0

    def test_eq10_calibration(self):
        # Eq. (10): sensitivity 4/b at level eps_g -> scale 4/(b*eps).
        b, eps = 20, 10.0
        assert laplace_scale(4.0 / b, eps) == pytest.approx(4.0 / (b * eps))

    def test_infinite_epsilon_gives_zero(self):
        assert laplace_scale(1.0, math.inf) == 0.0

    def test_rejects_nonpositive_sensitivity(self):
        with pytest.raises(ConfigurationError):
            laplace_scale(0.0, 1.0)


class TestLaplaceMechanism:
    def test_identity_when_non_private(self):
        mech = LaplaceMechanism(math.inf, sensitivity=4.0)
        value = np.array([1.0, -2.0, 3.0])
        out = mech.release(value)
        assert np.array_equal(out, value)
        assert out is not value  # defensive copy

    def test_adds_noise_when_private(self):
        mech = LaplaceMechanism(1.0, 4.0, rng=np.random.default_rng(0))
        out = mech.release(np.zeros(100))
        assert not np.allclose(out, 0.0)

    def test_noise_is_unbiased(self):
        mech = LaplaceMechanism(1.0, 1.0, rng=np.random.default_rng(0))
        out = mech.release(np.zeros(200_000))
        assert abs(out.mean()) < 0.02

    def test_noise_variance_matches_formula(self):
        eps, sens = 2.0, 3.0
        mech = LaplaceMechanism(eps, sens, rng=np.random.default_rng(1))
        out = mech.release(np.zeros(200_000))
        expected = 2.0 * (sens / eps) ** 2
        assert out.var() == pytest.approx(expected, rel=0.05)

    def test_expected_noise_power_eq13(self):
        # 32 D / (b eps)^2 for the gradient mechanism.
        b, eps, dim = 20, 10.0, 50
        mech = LaplaceMechanism(eps, 4.0 / b)
        assert mech.expected_noise_power(dim) == pytest.approx(
            32.0 * dim / (b * eps) ** 2
        )

    def test_deterministic_with_seeded_rng(self):
        a = LaplaceMechanism(1.0, 1.0, rng=np.random.default_rng(7)).release(np.zeros(5))
        b = LaplaceMechanism(1.0, 1.0, rng=np.random.default_rng(7)).release(np.zeros(5))
        assert np.array_equal(a, b)

    def test_shape_preserved(self):
        mech = LaplaceMechanism(1.0, 1.0, rng=np.random.default_rng(0))
        assert mech.release(np.zeros((3, 4))).shape == (3, 4)

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ConfigurationError):
            LaplaceMechanism(0.0, 1.0)
        with pytest.raises(ConfigurationError):
            LaplaceMechanism(-1.0, 1.0)

    def test_record_carries_metadata(self):
        mech = LaplaceMechanism(1.5, 2.0)
        record = mech.record(2.0)
        assert record.epsilon == 1.5
        assert record.delta == 0.0
        assert record.sensitivity == 2.0
        assert "Laplace" in record.mechanism

    def test_empirical_privacy_ratio(self):
        """Likelihood ratio of outputs on adjacent values stays within e^eps.

        For scalar Laplace with sensitivity s, the density ratio between
        f(D)=0 and f(D')=s at any output z is bounded by exp(eps).  We check
        the histogram ratio empirically on a coarse grid.
        """
        eps, sens = 1.0, 1.0
        rng = np.random.default_rng(3)
        n = 400_000
        scale = sens / eps
        out_a = 0.0 + rng.laplace(0, scale, n)
        out_b = sens + rng.laplace(0, scale, n)
        bins = np.linspace(-2, 3, 26)
        hist_a, _ = np.histogram(out_a, bins=bins)
        hist_b, _ = np.histogram(out_b, bins=bins)
        mask = (hist_a > 500) & (hist_b > 500)
        ratios = hist_a[mask] / hist_b[mask]
        # Allow slack for sampling error on top of e^eps.
        assert np.all(ratios <= math.exp(eps) * 1.15)
        assert np.all(ratios >= math.exp(-eps) / 1.15)
