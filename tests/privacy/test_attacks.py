"""Tests for the gradient-inversion attack demonstration."""

import math

import numpy as np
import pytest

from repro.models import MulticlassLogisticRegression
from repro.privacy import (
    LaplaceMechanism,
    evaluate_inversion,
    inversion_attack_success,
    invert_logistic_gradient,
)
from repro.utils.exceptions import ConfigurationError


@pytest.fixture
def model():
    return MulticlassLogisticRegression(num_features=20, num_classes=5)


@pytest.fixture
def sample(rng):
    x = rng.normal(size=20)
    x /= np.abs(x).sum()
    return x, 2


class TestCleanInversion:
    def test_recovers_feature_direction(self, model, sample, rng):
        """Without sanitization, b=1 gradients leak x almost exactly."""
        x, y = sample
        w = rng.normal(size=model.num_parameters)
        gradient = model.gradient(w, x[None, :], np.array([y]))
        result = invert_logistic_gradient(gradient, 20, 5)
        scored = evaluate_inversion(x, y, result)
        assert scored.cosine_similarity > 0.999

    def test_recovers_label(self, model, sample, rng):
        x, y = sample
        w = rng.normal(size=model.num_parameters)
        gradient = model.gradient(w, x[None, :], np.array([y]))
        result = invert_logistic_gradient(gradient, 20, 5)
        assert result.recovered_label == y

    def test_batch_attack_near_perfect_without_privacy(self, model, rng):
        features = rng.normal(size=(30, 20))
        features /= np.abs(features).sum(axis=1, keepdims=True)
        labels = rng.integers(0, 5, 30)
        w = rng.normal(size=model.num_parameters)
        cosine, label_rate = inversion_attack_success(
            model, w, features, labels, sanitizer=None
        )
        assert cosine > 0.99
        assert label_rate > 0.9

    def test_rejects_wrong_gradient_shape(self):
        with pytest.raises(ConfigurationError):
            invert_logistic_gradient(np.zeros(7), 20, 5)


class TestDefendedInversion:
    def test_laplace_noise_defeats_reconstruction(self, model, rng):
        """At a strong privacy level the attack collapses toward chance."""
        features = rng.normal(size=(30, 20))
        features /= np.abs(features).sum(axis=1, keepdims=True)
        labels = rng.integers(0, 5, 30)
        w = rng.normal(size=model.num_parameters)
        mechanism = LaplaceMechanism(
            epsilon=0.5, sensitivity=model.gradient_sensitivity(1), rng=rng
        )
        cosine, label_rate = inversion_attack_success(
            model, w, features, labels, sanitizer=mechanism
        )
        # Random 20-d directions have |cos| ~ 0.18; allow generous slack.
        assert cosine < 0.5
        assert label_rate < 0.6

    def test_attack_success_degrades_monotonically_with_privacy(self, model, rng):
        features = rng.normal(size=(40, 20))
        features /= np.abs(features).sum(axis=1, keepdims=True)
        labels = rng.integers(0, 5, 40)
        w = rng.normal(size=model.num_parameters)

        def cosine_at(epsilon):
            if math.isinf(epsilon):
                sanitizer = None
            else:
                sanitizer = LaplaceMechanism(
                    epsilon, model.gradient_sensitivity(1),
                    np.random.default_rng(0),
                )
            cos, _ = inversion_attack_success(
                model, w, features, labels, sanitizer=sanitizer
            )
            return cos

        strong, weak, none = cosine_at(0.2), cosine_at(50.0), cosine_at(math.inf)
        assert strong < weak <= none + 1e-9

    def test_regularization_subtraction(self, rng):
        """The λw term is public knowledge and must not mask the leak."""
        model = MulticlassLogisticRegression(10, 3, l2_regularization=0.5)
        features = rng.normal(size=(10, 10))
        features /= np.abs(features).sum(axis=1, keepdims=True)
        labels = rng.integers(0, 3, 10)
        w = rng.normal(size=model.num_parameters)
        cosine, _ = inversion_attack_success(model, w, features, labels)
        assert cosine > 0.99
