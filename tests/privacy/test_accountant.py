"""Tests for the privacy accountant."""

import math

import pytest

from repro.privacy.accountant import PrivacyAccountant, aggregate_releases
from repro.privacy.mechanism import AggregatedRelease, ReleaseRecord
from repro.utils.exceptions import PrivacyBudgetExceededError


def _checkin(eps_g=0.98, eps_e=0.01, eps_y=0.001, classes=10):
    records = [ReleaseRecord(epsilon=eps_g, mechanism="laplace")]
    records.append(ReleaseRecord(epsilon=eps_e, mechanism="discrete"))
    records.extend(ReleaseRecord(epsilon=eps_y, mechanism="discrete") for _ in range(classes))
    return records


class TestPerSampleAccounting:
    def test_single_checkin_sums_releases(self):
        acct = PrivacyAccountant()
        acct.charge_checkin(_checkin())
        spend = acct.spend()
        assert spend.per_sample_epsilon == pytest.approx(0.98 + 0.01 + 10 * 0.001)

    def test_per_sample_is_max_across_checkins(self):
        """Appendix A: sensitivity of many minibatches = one minibatch, so
        the per-sample guarantee does not accumulate across check-ins."""
        acct = PrivacyAccountant()
        for _ in range(50):
            acct.charge_checkin(_checkin())
        single = 0.98 + 0.01 + 10 * 0.001
        assert acct.spend().per_sample_epsilon == pytest.approx(single)

    def test_total_epsilon_accumulates(self):
        acct = PrivacyAccountant()
        for _ in range(3):
            acct.charge_checkin(_checkin())
        single = 0.98 + 0.01 + 10 * 0.001
        assert acct.spend().total_epsilon == pytest.approx(3 * single)

    def test_infinite_releases_cost_nothing(self):
        acct = PrivacyAccountant()
        acct.charge_checkin([ReleaseRecord(epsilon=math.inf, mechanism="identity")])
        assert acct.spend().per_sample_epsilon == 0.0
        assert acct.spend().total_epsilon == 0.0

    def test_num_releases_counted(self):
        acct = PrivacyAccountant()
        acct.charge_checkin(_checkin())
        assert acct.spend().num_releases == 12

    def test_delta_accumulates(self):
        acct = PrivacyAccountant()
        acct.charge_checkin([ReleaseRecord(epsilon=0.5, delta=1e-6, mechanism="gauss")])
        acct.charge_checkin([ReleaseRecord(epsilon=0.5, delta=1e-6, mechanism="gauss")])
        assert acct.spend().total_delta == pytest.approx(2e-6)


class TestBudgetCap:
    def test_cap_allows_within_budget(self):
        acct = PrivacyAccountant(per_sample_cap=1.0)
        acct.charge_checkin(_checkin())  # per-sample exactly 1.0
        assert acct.spend().per_sample_epsilon == pytest.approx(1.0)

    def test_cap_blocks_excess(self):
        acct = PrivacyAccountant(per_sample_cap=0.5)
        with pytest.raises(PrivacyBudgetExceededError) as info:
            acct.charge_checkin(_checkin())
        assert info.value.cap == 0.5

    def test_blocked_checkin_not_recorded(self):
        acct = PrivacyAccountant(per_sample_cap=0.5)
        with pytest.raises(PrivacyBudgetExceededError):
            acct.charge_checkin(_checkin())
        assert acct.spend().num_releases == 0
        assert acct.spend().per_sample_epsilon == 0.0

    def test_rejects_nonpositive_cap(self):
        with pytest.raises(ValueError):
            PrivacyAccountant(per_sample_cap=0.0)


class TestReset:
    def test_reset_clears_everything(self):
        acct = PrivacyAccountant()
        acct.charge_checkin(_checkin())
        acct.reset()
        spend = acct.spend()
        assert spend.per_sample_epsilon == 0.0
        assert spend.total_epsilon == 0.0
        assert spend.num_releases == 0

    def test_records_copy_is_defensive(self):
        acct = PrivacyAccountant()
        acct.charge_checkin(_checkin())
        acct.records.clear()
        assert acct.spend().num_releases == 12


class TestAggregatedReleases:
    """Run-length groups charge identically to the expanded sequence."""

    def _grouped(self, eps_g=0.98, eps_e=0.01, eps_y=0.001, classes=10):
        return [
            ReleaseRecord(epsilon=eps_g, mechanism="laplace"),
            ReleaseRecord(epsilon=eps_e, mechanism="discrete"),
            AggregatedRelease(
                ReleaseRecord(epsilon=eps_y, mechanism="discrete"), classes
            ),
        ]

    def test_aggregated_equals_expanded_bitwise(self):
        expanded = PrivacyAccountant()
        grouped = PrivacyAccountant()
        for _ in range(7):
            expanded.charge_checkin(_checkin())
            grouped.charge_checkin(self._grouped())
        a, b = expanded.spend(), grouped.spend()
        # Exact float equality: repeated addition, not multiplication.
        assert a.per_sample_epsilon == b.per_sample_epsilon
        assert a.total_epsilon == b.total_epsilon
        assert a.num_releases == b.num_releases == 7 * 12

    def test_expanded_records_view(self):
        acct = PrivacyAccountant()
        acct.charge_checkin(self._grouped(classes=3))
        records = acct.records
        assert len(records) == 5
        assert records[2] == records[3] == records[4]

    def test_ledger_growth_is_constant_per_checkin(self):
        acct = PrivacyAccountant()
        for _ in range(100):
            acct.charge_checkin(self._grouped())
        # 3 runs per check-in (grad/err/labels alternate), not C + 2
        # records: the ledger holds 300 runs for 1200 releases.
        assert len(acct.record_runs) == 300
        assert acct.spend().num_releases == 1200

    def test_identical_consecutive_runs_merge(self):
        acct = PrivacyAccountant()
        record = ReleaseRecord(epsilon=0.1, mechanism="discrete")
        acct.charge_checkin([AggregatedRelease(record, 4)])
        acct.charge_checkin([AggregatedRelease(record, 2), record])
        assert acct.record_runs == [(record, 7)]

    def test_cap_enforced_against_aggregated_sum(self):
        acct = PrivacyAccountant(per_sample_cap=0.5)
        with pytest.raises(PrivacyBudgetExceededError):
            acct.charge_checkin(
                [AggregatedRelease(ReleaseRecord(epsilon=0.2, mechanism="d"), 3)]
            )
        assert acct.spend().num_releases == 0

    def test_aggregate_releases_helper_run_length_encodes(self):
        rec_a = ReleaseRecord(epsilon=0.1, mechanism="a")
        rec_b = ReleaseRecord(epsilon=0.2, mechanism="b")
        groups = aggregate_releases([rec_a, rec_b, rec_b, rec_b, rec_a])
        assert [(g.record, g.count) for g in groups] == [
            (rec_a, 1), (rec_b, 3), (rec_a, 1)
        ]

    def test_aggregated_count_must_be_positive(self):
        from repro.utils.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            AggregatedRelease(ReleaseRecord(epsilon=0.1), 0)

    def test_generator_input_accepted(self):
        acct = PrivacyAccountant()
        acct.charge_checkin(
            ReleaseRecord(epsilon=0.1, mechanism="d") for _ in range(3)
        )
        assert acct.spend().num_releases == 3
