"""Tests for the privacy accountant."""

import math

import pytest

from repro.privacy.accountant import PrivacyAccountant
from repro.privacy.mechanism import ReleaseRecord
from repro.utils.exceptions import PrivacyBudgetExceededError


def _checkin(eps_g=0.98, eps_e=0.01, eps_y=0.001, classes=10):
    records = [ReleaseRecord(epsilon=eps_g, mechanism="laplace")]
    records.append(ReleaseRecord(epsilon=eps_e, mechanism="discrete"))
    records.extend(ReleaseRecord(epsilon=eps_y, mechanism="discrete") for _ in range(classes))
    return records


class TestPerSampleAccounting:
    def test_single_checkin_sums_releases(self):
        acct = PrivacyAccountant()
        acct.charge_checkin(_checkin())
        spend = acct.spend()
        assert spend.per_sample_epsilon == pytest.approx(0.98 + 0.01 + 10 * 0.001)

    def test_per_sample_is_max_across_checkins(self):
        """Appendix A: sensitivity of many minibatches = one minibatch, so
        the per-sample guarantee does not accumulate across check-ins."""
        acct = PrivacyAccountant()
        for _ in range(50):
            acct.charge_checkin(_checkin())
        single = 0.98 + 0.01 + 10 * 0.001
        assert acct.spend().per_sample_epsilon == pytest.approx(single)

    def test_total_epsilon_accumulates(self):
        acct = PrivacyAccountant()
        for _ in range(3):
            acct.charge_checkin(_checkin())
        single = 0.98 + 0.01 + 10 * 0.001
        assert acct.spend().total_epsilon == pytest.approx(3 * single)

    def test_infinite_releases_cost_nothing(self):
        acct = PrivacyAccountant()
        acct.charge_checkin([ReleaseRecord(epsilon=math.inf, mechanism="identity")])
        assert acct.spend().per_sample_epsilon == 0.0
        assert acct.spend().total_epsilon == 0.0

    def test_num_releases_counted(self):
        acct = PrivacyAccountant()
        acct.charge_checkin(_checkin())
        assert acct.spend().num_releases == 12

    def test_delta_accumulates(self):
        acct = PrivacyAccountant()
        acct.charge_checkin([ReleaseRecord(epsilon=0.5, delta=1e-6, mechanism="gauss")])
        acct.charge_checkin([ReleaseRecord(epsilon=0.5, delta=1e-6, mechanism="gauss")])
        assert acct.spend().total_delta == pytest.approx(2e-6)


class TestBudgetCap:
    def test_cap_allows_within_budget(self):
        acct = PrivacyAccountant(per_sample_cap=1.0)
        acct.charge_checkin(_checkin())  # per-sample exactly 1.0
        assert acct.spend().per_sample_epsilon == pytest.approx(1.0)

    def test_cap_blocks_excess(self):
        acct = PrivacyAccountant(per_sample_cap=0.5)
        with pytest.raises(PrivacyBudgetExceededError) as info:
            acct.charge_checkin(_checkin())
        assert info.value.cap == 0.5

    def test_blocked_checkin_not_recorded(self):
        acct = PrivacyAccountant(per_sample_cap=0.5)
        with pytest.raises(PrivacyBudgetExceededError):
            acct.charge_checkin(_checkin())
        assert acct.spend().num_releases == 0
        assert acct.spend().per_sample_epsilon == 0.0

    def test_rejects_nonpositive_cap(self):
        with pytest.raises(ValueError):
            PrivacyAccountant(per_sample_cap=0.0)


class TestReset:
    def test_reset_clears_everything(self):
        acct = PrivacyAccountant()
        acct.charge_checkin(_checkin())
        acct.reset()
        spend = acct.spend()
        assert spend.per_sample_epsilon == 0.0
        assert spend.total_epsilon == 0.0
        assert spend.num_releases == 0

    def test_records_copy_is_defensive(self):
        acct = PrivacyAccountant()
        acct.charge_checkin(_checkin())
        acct.records.clear()
        assert acct.spend().num_releases == 12
