"""Tests for global-sensitivity computations (Appendices A-C, Eq. 13)."""

import math

import numpy as np
import pytest

from repro.models import MulticlassLogisticRegression
from repro.privacy.sensitivity import (
    count_sensitivity,
    feature_sensitivity,
    gradient_noise_power,
    hinge_gradient_sensitivity,
    laplace_noise_power,
    logistic_gradient_sensitivity,
    sampling_noise_power,
    squared_loss_gradient_sensitivity,
    total_gradient_noise_power,
)
from repro.utils.exceptions import ConfigurationError


class TestLogisticSensitivity:
    def test_four_over_b(self):
        assert logistic_gradient_sensitivity(1) == 4.0
        assert logistic_gradient_sensitivity(20) == pytest.approx(0.2)

    def test_scales_with_feature_bound(self):
        assert logistic_gradient_sensitivity(10, 2.0) == pytest.approx(0.8)

    def test_rejects_bad_batch(self):
        with pytest.raises(ConfigurationError):
            logistic_gradient_sensitivity(0)

    def test_empirical_bound_holds(self):
        """Swapping one sample never moves the averaged gradient by > 4/b.

        This empirically validates Appendix A on random minibatches with
        L1-normalized features.
        """
        rng = np.random.default_rng(0)
        model = MulticlassLogisticRegression(num_features=6, num_classes=4)
        b = 8
        worst = 0.0
        for _ in range(50):
            w = rng.normal(size=model.num_parameters)
            features = rng.normal(size=(b, 6))
            features /= np.abs(features).sum(axis=1, keepdims=True)
            labels = rng.integers(0, 4, b)
            # Swap the first sample for an adversarial-ish alternative.
            features2 = features.copy()
            labels2 = labels.copy()
            alt = rng.normal(size=6)
            features2[0] = alt / np.abs(alt).sum()
            labels2[0] = (labels[0] + 1) % 4
            g1 = model.gradient(w, features, labels)
            g2 = model.gradient(w, features2, labels2)
            worst = max(worst, np.abs(g1 - g2).sum())
        assert worst <= 4.0 / b + 1e-9

    def test_model_reports_same_bound(self):
        model = MulticlassLogisticRegression(5, 3)
        assert model.gradient_sensitivity(10) == logistic_gradient_sensitivity(10)


class TestOtherSensitivities:
    def test_hinge_equals_logistic(self):
        assert hinge_gradient_sensitivity(10) == logistic_gradient_sensitivity(10)

    def test_squared_loss(self):
        assert squared_loss_gradient_sensitivity(10, 1.0, 1.0) == pytest.approx(0.2)
        assert squared_loss_gradient_sensitivity(10, 1.0, 2.0) == pytest.approx(0.4)

    def test_count_sensitivity_is_one(self):
        assert count_sensitivity() == 1.0

    def test_feature_sensitivity_is_diameter(self):
        assert feature_sensitivity(1.0) == 2.0
        assert feature_sensitivity(0.5) == 1.0


class TestNoisePower:
    def test_laplace_noise_power(self):
        # 2 D (S/eps)^2.
        assert laplace_noise_power(10, 2.0, 1.0) == pytest.approx(80.0)

    def test_zero_when_non_private(self):
        assert laplace_noise_power(10, 2.0, math.inf) == 0.0

    def test_gradient_noise_power_eq13(self):
        dim, b, eps = 50, 20, 10.0
        assert gradient_noise_power(dim, b, eps) == pytest.approx(
            32.0 * dim / (b * eps) ** 2
        )

    def test_sampling_noise_power(self):
        assert sampling_noise_power(4.0, 8) == 0.5

    def test_total_combines_both_terms(self):
        total = total_gradient_noise_power(4.0, 50, 20, 10.0)
        assert total == pytest.approx(
            sampling_noise_power(4.0, 20) + gradient_noise_power(50, 20, 10.0)
        )

    def test_noise_power_decreases_in_batch_size(self):
        """The Section IV-A claim: larger b shrinks both Eq. 13 terms."""
        small = total_gradient_noise_power(4.0, 50, 1, 10.0)
        large = total_gradient_noise_power(4.0, 50, 20, 10.0)
        assert large < small

    def test_laplace_term_dominates_at_small_epsilon(self):
        strict = gradient_noise_power(50, 1, 0.1)
        loose = gradient_noise_power(50, 1, 10.0)
        assert strict / loose == pytest.approx((10.0 / 0.1) ** 2)

    def test_empirical_noise_power_matches(self):
        """Mechanism noise power E[||z||^2] matches the Eq. 13 term."""
        from repro.privacy.laplace import LaplaceMechanism

        dim, b, eps = 50, 5, 2.0
        mech = LaplaceMechanism(eps, 4.0 / b, rng=np.random.default_rng(0))
        powers = [np.sum(mech.release(np.zeros(dim)) ** 2) for _ in range(4000)]
        assert np.mean(powers) == pytest.approx(
            gradient_noise_power(dim, b, eps), rel=0.05
        )
