"""Tests for the Gaussian ((eps, delta)-DP) mechanism (footnote 1)."""

import math

import numpy as np
import pytest

from repro.privacy.gaussian import GaussianMechanism, gaussian_sigma
from repro.utils.exceptions import ConfigurationError


class TestGaussianSigma:
    def test_classical_formula(self):
        sigma = gaussian_sigma(1.0, 1.0, 1e-5)
        assert sigma == pytest.approx(math.sqrt(2 * math.log(1.25e5)))

    def test_scales_with_sensitivity(self):
        assert gaussian_sigma(2.0, 1.0, 1e-5) == pytest.approx(
            2.0 * gaussian_sigma(1.0, 1.0, 1e-5)
        )

    def test_zero_for_infinite_epsilon(self):
        assert gaussian_sigma(1.0, math.inf, 1e-5) == 0.0

    def test_rejects_epsilon_above_one(self):
        with pytest.raises(ConfigurationError, match="epsilon"):
            gaussian_sigma(1.0, 2.0, 1e-5)

    @pytest.mark.parametrize("delta", [0.0, 1.0, -0.1])
    def test_rejects_bad_delta(self, delta):
        with pytest.raises(ConfigurationError):
            gaussian_sigma(1.0, 0.5, delta)


class TestGaussianMechanism:
    def test_identity_when_non_private(self):
        mech = GaussianMechanism(math.inf, 1e-5, 1.0)
        value = np.array([1.0, 2.0])
        assert np.array_equal(mech.release(value), value)

    def test_delta_property(self):
        assert GaussianMechanism(0.5, 1e-6, 1.0).delta == 1e-6

    def test_noise_variance_empirical(self):
        mech = GaussianMechanism(0.5, 1e-5, 1.0, rng=np.random.default_rng(0))
        out = mech.release(np.zeros(200_000))
        assert out.var() == pytest.approx(mech.sigma**2, rel=0.05)

    def test_noise_is_gaussian_tails(self):
        """Gaussian noise has lighter tails than Laplace of equal variance."""
        mech = GaussianMechanism(0.5, 1e-5, 1.0, rng=np.random.default_rng(1))
        out = mech.release(np.zeros(200_000))
        standardized = out / mech.sigma
        # P(|Z| > 4) for a standard normal is ~6e-5; Laplace of unit
        # variance would give ~3.5e-3.
        assert np.mean(np.abs(standardized) > 4.0) < 5e-4

    def test_expected_noise_power(self):
        mech = GaussianMechanism(0.5, 1e-5, 2.0)
        assert mech.expected_noise_power(10) == pytest.approx(10 * mech.sigma**2)

    def test_deterministic_with_seed(self):
        a = GaussianMechanism(0.5, 1e-5, 1.0, np.random.default_rng(9)).release(np.zeros(4))
        b = GaussianMechanism(0.5, 1e-5, 1.0, np.random.default_rng(9)).release(np.zeros(4))
        assert np.array_equal(a, b)
