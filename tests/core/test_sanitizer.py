"""Tests for Device Routine 3 (check-in sanitization)."""

import math

import numpy as np
import pytest

from repro.core.sanitizer import CheckinSanitizer
from repro.models import MulticlassLogisticRegression
from repro.privacy import PrivacyBudget, split_budget


@pytest.fixture
def model():
    return MulticlassLogisticRegression(num_features=4, num_classes=3)


class TestNonPrivate:
    def test_identity_for_infinite_budget(self, model, rng):
        sanitizer = CheckinSanitizer(model, PrivacyBudget.non_private(3), rng)
        gradient = np.arange(12.0)
        out = sanitizer.sanitize(gradient, 2, np.array([1, 2, 2]), num_samples=5)
        assert np.array_equal(out.gradient, gradient)
        assert out.error_count == 2
        assert np.array_equal(out.label_counts, [1, 2, 2])

    def test_records_present_even_when_non_private(self, model, rng):
        sanitizer = CheckinSanitizer(model, PrivacyBudget.non_private(3), rng)
        out = sanitizer.sanitize(np.zeros(12), 0, np.zeros(3, dtype=int), 5)
        # gradient + error + 3 label counts.
        assert len(out.releases) == 5
        assert all(math.isinf(r.epsilon) for r in out.releases)


class TestPrivate:
    def test_gradient_noised(self, model, rng):
        budget = split_budget(1.0, 3)
        sanitizer = CheckinSanitizer(model, budget, rng)
        out = sanitizer.sanitize(np.zeros(12), 0, np.zeros(3, dtype=int), 5)
        assert not np.allclose(out.gradient, 0.0)

    def test_counts_are_integers(self, model, rng):
        budget = split_budget(1.0, 3)
        sanitizer = CheckinSanitizer(model, budget, rng)
        out = sanitizer.sanitize(np.zeros(12), 3, np.array([2, 2, 1]), 5)
        assert isinstance(out.error_count, int)
        assert out.label_counts.dtype == np.int64

    def test_gradient_mechanism_calibrated_to_batch(self, model, rng):
        """Sensitivity 4/n_s: the mechanism's scale must track n_s."""
        budget = split_budget(1.0, 3)
        sanitizer = CheckinSanitizer(model, budget, rng)
        small = sanitizer.gradient_mechanism(1)
        large = sanitizer.gradient_mechanism(20)
        assert small.sensitivity == pytest.approx(4.0)
        assert large.sensitivity == pytest.approx(0.2)
        assert large.scale == pytest.approx(small.scale / 20)

    def test_release_records_decompose_budget(self, model, rng):
        budget = split_budget(1.0, 3)
        sanitizer = CheckinSanitizer(model, budget, rng)
        out = sanitizer.sanitize(np.zeros(12), 0, np.zeros(3, dtype=int), 5)
        total = sum(r.epsilon for r in out.releases)
        assert total == pytest.approx(budget.total_epsilon)

    def test_noise_shrinks_with_batch_size(self, model):
        """Eq. 13's mechanism term: larger n_s → less gradient noise."""
        budget = split_budget(1.0, 3)

        def noise_norm(ns, seed):
            sanitizer = CheckinSanitizer(model, budget, np.random.default_rng(seed))
            out = sanitizer.sanitize(np.zeros(12), 0, np.zeros(3, dtype=int), ns)
            return float(np.abs(out.gradient).sum())

        small = np.mean([noise_norm(1, s) for s in range(200)])
        large = np.mean([noise_norm(50, s) for s in range(200)])
        assert large < small / 10


class TestGaussianVariant:
    """Footnote 1: the (eps, delta) Gaussian variant as a drop-in."""

    def test_gaussian_sanitizer_noises_gradient(self, model, rng):
        budget = split_budget(0.5, 3)
        sanitizer = CheckinSanitizer(model, budget, rng, gradient_noise="gaussian")
        out = sanitizer.sanitize(np.zeros(12), 0, np.zeros(3, dtype=int), 5)
        assert not np.allclose(out.gradient, 0.0)

    def test_gaussian_mechanism_selected(self, model, rng):
        from repro.privacy import GaussianMechanism

        budget = split_budget(0.5, 3)
        sanitizer = CheckinSanitizer(model, budget, rng, gradient_noise="gaussian")
        assert isinstance(sanitizer.gradient_mechanism(5), GaussianMechanism)
        assert sanitizer.gradient_noise == "gaussian"

    def test_gaussian_release_records_delta(self, model, rng):
        budget = split_budget(0.5, 3)
        sanitizer = CheckinSanitizer(
            model, budget, rng, gradient_noise="gaussian", gaussian_delta=1e-5
        )
        out = sanitizer.sanitize(np.zeros(12), 0, np.zeros(3, dtype=int), 5)
        assert out.releases[0].delta == 1e-5

    def test_rejects_unknown_mechanism(self, model, rng):
        from repro.utils.exceptions import ConfigurationError

        budget = split_budget(0.5, 3)
        with pytest.raises(ConfigurationError):
            CheckinSanitizer(model, budget, rng, gradient_noise="cauchy")

    def test_gaussian_lighter_tails_than_laplace(self, model):
        """Same eps: Gaussian noise has fewer extreme coordinates."""
        budget = split_budget(0.5, 3)

        def extremes(kind):
            sanitizer = CheckinSanitizer(
                model, budget, np.random.default_rng(0), gradient_noise=kind
            )
            mech = sanitizer.gradient_mechanism(1)
            draws = np.concatenate(
                [mech.release(np.zeros(12)) for _ in range(2000)]
            )
            scale = np.std(draws)
            return np.mean(np.abs(draws) > 4 * scale)

        assert extremes("gaussian") < extremes("laplace")


class TestMechanismMemoization:
    """Calibrated gradient mechanisms are reused per realized n_s."""

    @pytest.fixture
    def budget(self):
        return split_budget(1.0, 3)

    def test_same_num_samples_reuses_mechanism(self, model, budget):
        sanitizer = CheckinSanitizer(model, budget, np.random.default_rng(0))
        assert sanitizer.gradient_mechanism(5) is sanitizer.gradient_mechanism(5)

    def test_different_num_samples_recalibrates(self, model, budget):
        sanitizer = CheckinSanitizer(model, budget, np.random.default_rng(0))
        mech5 = sanitizer.gradient_mechanism(5)
        mech7 = sanitizer.gradient_mechanism(7)
        assert mech5 is not mech7
        assert mech5.sensitivity != mech7.sensitivity

    def test_memoized_noise_stream_matches_fresh_mechanisms(self, model, budget):
        """Reusing one mechanism draws the same noise sequence as
        rebuilding it per check-in from the same shared RNG."""
        from repro.privacy import DiscreteLaplaceMechanism, LaplaceMechanism

        gradient = np.zeros(model.num_parameters)
        counts = np.array([2, 2, 1])
        memoized = CheckinSanitizer(model, budget, np.random.default_rng(42))
        outputs = [memoized.sanitize(gradient, 1, counts, 5) for _ in range(4)]
        fresh_rng = np.random.default_rng(42)
        fresh_error = DiscreteLaplaceMechanism(budget.epsilon_error, fresh_rng)
        fresh_label = DiscreteLaplaceMechanism(budget.epsilon_label, fresh_rng)
        for sanitized in outputs:
            mech = LaplaceMechanism(
                budget.epsilon_gradient,
                model.gradient_sensitivity(5), fresh_rng,
            )
            assert np.array_equal(sanitized.gradient, mech.release(gradient))
            assert sanitized.error_count == fresh_error.release(1)
            assert np.array_equal(
                sanitized.label_counts, fresh_label.release(counts)
            )

    def test_release_groups_match_expanded_releases(self, model, budget):
        sanitizer = CheckinSanitizer(model, budget, np.random.default_rng(0))
        sanitized = sanitizer.sanitize(
            np.zeros(model.num_parameters), 0, np.array([3, 2, 0]), 5
        )
        expanded = []
        for group in sanitized.release_groups:
            expanded.extend([group.record] * group.count)
        assert tuple(expanded) == sanitized.releases
        assert len(sanitized.releases) == 2 + 3  # grad + err + C labels

    def test_release_tuples_reused_across_checkins(self, model, budget):
        sanitizer = CheckinSanitizer(model, budget, np.random.default_rng(0))
        first = sanitizer.sanitize(
            np.zeros(model.num_parameters), 0, np.array([3, 2, 0]), 5
        )
        second = sanitizer.sanitize(
            np.zeros(model.num_parameters), 1, np.array([1, 4, 0]), 5
        )
        assert first.releases is second.releases
        assert first.release_groups is second.release_groups
