"""Tests for Algorithm 2's stopping criteria."""

import numpy as np
import pytest

from repro.core import ProgressMonitor, ServerConfig, StopReason, evaluate_stopping


@pytest.fixture
def monitor():
    monitor = ProgressMonitor(2)
    monitor.record(0, 200, 10, np.array([100, 100]))  # error estimate 0.05
    return monitor


class TestMaxIterations:
    def test_running_below_cap(self, monitor):
        config = ServerConfig(max_iterations=10)
        decision = evaluate_stopping(config, 5, monitor)
        assert not decision.stopped
        assert decision.reason is StopReason.RUNNING

    def test_stops_at_cap(self, monitor):
        config = ServerConfig(max_iterations=10)
        decision = evaluate_stopping(config, 10, monitor)
        assert decision.stopped
        assert decision.reason is StopReason.MAX_ITERATIONS

    def test_stops_beyond_cap(self, monitor):
        config = ServerConfig(max_iterations=10)
        assert evaluate_stopping(config, 11, monitor).stopped


class TestTargetError:
    def test_stops_when_error_below_rho(self, monitor):
        config = ServerConfig(max_iterations=10**6, target_error=0.1,
                              min_samples_for_error_stop=100)
        decision = evaluate_stopping(config, 1, monitor)
        assert decision.stopped
        assert decision.reason is StopReason.TARGET_ERROR

    def test_keeps_running_above_rho(self, monitor):
        config = ServerConfig(max_iterations=10**6, target_error=0.01,
                              min_samples_for_error_stop=100)
        assert not evaluate_stopping(config, 1, monitor).stopped

    def test_min_samples_guard(self):
        """Too few counted samples: the noisy estimate is not trusted."""
        monitor = ProgressMonitor(2)
        monitor.record(0, 10, 0, np.array([5, 5]))  # estimate 0.0 but n=10
        config = ServerConfig(max_iterations=10**6, target_error=0.5,
                              min_samples_for_error_stop=100)
        assert not evaluate_stopping(config, 1, monitor).stopped

    def test_disabled_when_none(self, monitor):
        config = ServerConfig(max_iterations=10**6, target_error=None)
        assert not evaluate_stopping(config, 1, monitor).stopped

    def test_max_iterations_takes_priority(self, monitor):
        config = ServerConfig(max_iterations=1, target_error=0.9)
        decision = evaluate_stopping(config, 1, monitor)
        assert decision.reason is StopReason.MAX_ITERATIONS
