"""Tests for the adaptive-minibatch refinement (§IV-B3)."""

import numpy as np
import pytest

from repro.core import (
    Device,
    DeviceConfig,
    FixedBatch,
    StalenessAdaptiveBatch,
)
from repro.models import MulticlassLogisticRegression
from repro.utils.exceptions import ConfigurationError


class TestPolicies:
    def test_fixed_never_changes(self):
        policy = FixedBatch(5)
        assert policy.next_batch_size(5, 0) == 5
        assert policy.next_batch_size(5, 10_000) == 5

    def test_adaptive_grows_under_staleness(self):
        policy = StalenessAdaptiveBatch(target_staleness=10, max_batch=64)
        assert policy.next_batch_size(4, interleaved_updates=100) == 8

    def test_adaptive_growth_capped(self):
        policy = StalenessAdaptiveBatch(target_staleness=10, max_batch=16)
        assert policy.next_batch_size(16, 1000) == 16

    def test_adaptive_shrinks_when_quiet(self):
        policy = StalenessAdaptiveBatch(target_staleness=10, min_batch=2)
        assert policy.next_batch_size(8, interleaved_updates=3) == 7
        assert policy.next_batch_size(2, interleaved_updates=0) == 2

    def test_growth_always_progresses(self):
        """Even at b = 1 with growth 2.0 the next b must exceed 1."""
        policy = StalenessAdaptiveBatch(target_staleness=0, max_batch=64)
        assert policy.next_batch_size(1, 5) == 2

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"target_staleness": -1},
            {"target_staleness": 1, "min_batch": 0},
            {"target_staleness": 1, "min_batch": 10, "max_batch": 5},
            {"target_staleness": 1, "growth_factor": 1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            StalenessAdaptiveBatch(**kwargs)

    def test_fixed_validation(self):
        with pytest.raises(ConfigurationError):
            FixedBatch(0)


class TestDeviceIntegration:
    def _device(self, policy, batch_size=1, buffer_capacity=64):
        model = MulticlassLogisticRegression(2, 2)
        config = DeviceConfig.default(batch_size=batch_size, num_classes=2,
                                      buffer_factor=buffer_capacity)
        return Device(0, model, config, "t", np.random.default_rng(0),
                      batch_policy=policy), model

    def _cycle(self, device, model, server_iteration):
        """Feed samples until checkout triggers, then complete it."""
        rng = np.random.default_rng(1)
        while not device.wants_checkout:
            x = rng.normal(size=2)
            device.observe(x / np.abs(x).sum(), 0)
        device.mark_checkout_requested()
        device.complete_checkout(
            np.zeros(model.num_parameters), server_iteration
        )

    def test_batch_grows_with_observed_interleaving(self):
        policy = StalenessAdaptiveBatch(target_staleness=5, max_batch=32)
        device, model = self._device(policy)
        assert device.current_batch_size == 1
        self._cycle(device, model, server_iteration=0)
        # 100 foreign updates interleaved -> grow.
        self._cycle(device, model, server_iteration=101)
        assert device.current_batch_size == 2
        self._cycle(device, model, server_iteration=300)
        assert device.current_batch_size == 4

    def test_batch_shrinks_when_no_interleaving(self):
        policy = StalenessAdaptiveBatch(target_staleness=5, min_batch=1,
                                        max_batch=32)
        device, model = self._device(policy, batch_size=4)
        self._cycle(device, model, server_iteration=0)
        self._cycle(device, model, server_iteration=1)  # zero interleaved
        assert device.current_batch_size == 3

    def test_batch_clamped_to_buffer(self):
        policy = StalenessAdaptiveBatch(target_staleness=0, max_batch=10_000)
        device, model = self._device(policy, batch_size=1, buffer_capacity=8)
        self._cycle(device, model, 0)
        for it in (1000, 3000, 9000, 27000):
            self._cycle(device, model, it)
        assert device.current_batch_size <= 8

    def test_no_policy_keeps_batch_fixed(self):
        device, model = self._device(None, batch_size=3)
        self._cycle(device, model, server_iteration=0)
        self._cycle(device, model, server_iteration=500)
        assert device.current_batch_size == 3


class TestSimulationIntegration:
    def test_adaptive_policy_cuts_staleness_and_traffic(self):
        """The §IV-B3 refinement targets staleness and communication:
        starting from b = 1 under heavy delay, adaptation must slash both
        the realized staleness and the uplink volume while keeping the
        error comparable to the fixed-b=1 run."""
        from repro.data import iid_partition, make_mnist_like
        from repro.network import LinkDelays
        from repro.simulation import CrowdSimulator, SimulationConfig

        train, test = make_mnist_like(num_train=3000, num_test=600, seed=0)
        devices = 50

        def run(policy_factory):
            config = SimulationConfig(
                num_devices=devices,
                batch_size=1,
                epsilon=10.0,
                learning_rate_constant=30.0,
                l2_regularization=1e-4,
                link_delays=LinkDelays.uniform(4.0),
                num_passes=4,
                batch_policy_factory=policy_factory,
            )
            parts = iid_partition(train, devices, np.random.default_rng(0))
            return CrowdSimulator(
                MulticlassLogisticRegression(50, 10, l2_regularization=1e-4),
                parts, test, config, seed=0,
            ).run()

        fixed = run(None)
        adaptive = run(
            lambda: StalenessAdaptiveBatch(target_staleness=10, max_batch=32)
        )
        # Dekel et al.'s scaling lever: far fewer stale updates in flight.
        assert adaptive.mean_staleness < fixed.mean_staleness / 1.5
        # Far less uplink traffic (fewer, larger check-ins).
        assert (
            adaptive.communication.uplink_floats
            < fixed.communication.uplink_floats / 2
        )
        # At no meaningful accuracy cost on this horizon.
        assert adaptive.curve.tail_error() < fixed.curve.tail_error() + 0.1
