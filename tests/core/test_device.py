"""Tests for the device runtime (Algorithm 1)."""

import math

import numpy as np
import pytest

from repro.core import Device, DeviceConfig
from repro.models import MulticlassLogisticRegression
from repro.privacy import PrivacyBudget, split_budget
from repro.utils.exceptions import ConfigurationError, ProtocolError


@pytest.fixture
def model():
    return MulticlassLogisticRegression(num_features=3, num_classes=2)


def make_device(model, rng, batch_size=2, buffer_capacity=6, epsilon=math.inf,
                holdout_fraction=0.0):
    budget = split_budget(epsilon, model.num_classes)
    config = DeviceConfig(
        batch_size=batch_size,
        buffer_capacity=buffer_capacity,
        budget=budget,
        holdout_fraction=holdout_fraction,
    )
    return Device(7, model, config, token="tok", rng=rng)


def sample(rng, dim=3):
    x = rng.normal(size=dim)
    return x / np.abs(x).sum()


class TestRoutine1:
    def test_no_checkout_until_batch_full(self, model, rng):
        device = make_device(model, rng, batch_size=3)
        assert device.observe(sample(rng), 0) is False
        assert device.observe(sample(rng), 1) is False
        assert device.observe(sample(rng), 0) is True
        assert device.buffer_size == 3

    def test_buffer_capacity_drops_excess(self, model, rng):
        device = make_device(model, rng, batch_size=2, buffer_capacity=3)
        for _ in range(5):
            device.observe(sample(rng), 0)
        assert device.buffer_size == 3
        assert device.samples_dropped == 2
        assert device.samples_observed == 5

    def test_no_duplicate_checkout_while_awaiting(self, model, rng):
        device = make_device(model, rng, batch_size=1)
        assert device.observe(sample(rng), 0) is True
        device.mark_checkout_requested()
        # More samples buffer up but do not re-trigger.
        assert device.observe(sample(rng), 1) is False
        assert device.awaiting_checkout

    def test_double_request_raises(self, model, rng):
        device = make_device(model, rng, batch_size=1)
        device.observe(sample(rng), 0)
        device.mark_checkout_requested()
        with pytest.raises(ProtocolError):
            device.mark_checkout_requested()

    def test_rejects_wrong_feature_shape(self, model, rng):
        device = make_device(model, rng)
        with pytest.raises(ConfigurationError):
            device.observe(np.zeros(5), 0)


class TestRemark1Retry:
    def test_failed_checkout_allows_retry(self, model, rng):
        device = make_device(model, rng, batch_size=1)
        device.observe(sample(rng), 0)
        device.mark_checkout_requested()
        device.on_checkout_failed()
        assert not device.awaiting_checkout
        assert device.failed_checkouts == 1
        # Buffer intact: the next observation re-triggers.
        assert device.wants_checkout

    def test_buffer_preserved_across_failures(self, model, rng):
        device = make_device(model, rng, batch_size=2)
        device.observe(sample(rng), 0)
        device.observe(sample(rng), 1)
        device.mark_checkout_requested()
        device.on_checkout_failed()
        assert device.buffer_size == 2


class TestRoutine2:
    def test_checkin_consumes_buffer(self, model, rng):
        device = make_device(model, rng, batch_size=2)
        device.observe(sample(rng), 0)
        device.observe(sample(rng), 1)
        device.mark_checkout_requested()
        result = device.complete_checkout(np.zeros(6), server_iteration=4)
        assert result.message.num_samples == 2
        assert result.message.checkout_iteration == 4
        assert device.buffer_size == 0
        assert device.checkins_completed == 1

    def test_oversized_buffer_fully_consumed(self, model, rng):
        """If extra samples arrived while awaiting, all n_s ≥ b are used."""
        device = make_device(model, rng, batch_size=2)
        device.observe(sample(rng), 0)
        device.observe(sample(rng), 1)
        device.mark_checkout_requested()
        device.observe(sample(rng), 0)
        result = device.complete_checkout(np.zeros(6), 0)
        assert result.message.num_samples == 3

    def test_gradient_matches_model_when_non_private(self, model, rng):
        device = make_device(model, rng, batch_size=2)
        xs = [sample(rng) for _ in range(2)]
        ys = [0, 1]
        for x, y in zip(xs, ys):
            device.observe(x, y)
        device.mark_checkout_requested()
        w = rng.normal(size=6)
        result = device.complete_checkout(w, 0)
        expected = model.gradient(w, np.stack(xs), np.array(ys))
        assert np.allclose(result.message.gradient, expected)

    def test_error_count_correct_when_non_private(self, model, rng):
        device = make_device(model, rng, batch_size=2)
        # With w = 0 predictions are argmax of zeros = class 0.
        device.observe(sample(rng), 0)  # correct
        device.observe(sample(rng), 1)  # error
        device.mark_checkout_requested()
        result = device.complete_checkout(np.zeros(6), 0)
        assert result.message.noisy_error_count == 1
        assert result.per_sample_errors.tolist() == [False, True]

    def test_label_counts_correct_when_non_private(self, model, rng):
        device = make_device(model, rng, batch_size=3)
        for y in (0, 1, 1):
            device.observe(sample(rng), y)
        device.mark_checkout_requested()
        result = device.complete_checkout(np.zeros(6), 0)
        assert result.message.noisy_label_counts.tolist() == [1, 2]

    def test_empty_buffer_checkout_raises(self, model, rng):
        device = make_device(model, rng)
        with pytest.raises(ProtocolError):
            device.complete_checkout(np.zeros(6), 0)

    def test_counters_reset_after_checkin(self, model, rng):
        device = make_device(model, rng, batch_size=1)
        device.observe(sample(rng), 1)
        device.mark_checkout_requested()
        device.complete_checkout(np.zeros(6), 0)
        device.observe(sample(rng), 0)
        device.mark_checkout_requested()
        result = device.complete_checkout(np.zeros(6), 0)
        assert result.message.noisy_label_counts.tolist() == [1, 0]


class TestRemark2Holdout:
    def test_holdout_excluded_from_gradient(self, model):
        """With holdout ≈ 1⁻ the gradient averages only training samples."""
        rng = np.random.default_rng(0)
        device = make_device(model, rng, batch_size=40, buffer_capacity=80,
                             holdout_fraction=0.5)
        xs, ys = [], []
        gen = np.random.default_rng(1)
        for i in range(40):
            x = sample(gen)
            xs.append(x)
            ys.append(i % 2)
            device.observe(x, ys[-1])
        device.mark_checkout_requested()
        w = gen.normal(size=6)
        result = device.complete_checkout(w, 0)
        full_gradient = model.gradient(w, np.stack(xs), np.array(ys))
        # Holdout split makes the released gradient differ from the full one.
        assert not np.allclose(result.message.gradient, full_gradient)

    def test_error_count_from_holdout_only(self, model):
        rng = np.random.default_rng(2)
        device = make_device(model, rng, batch_size=30, buffer_capacity=60,
                             holdout_fraction=0.5)
        gen = np.random.default_rng(3)
        for i in range(30):
            device.observe(sample(gen), 1)  # w=0 predicts 0 -> all errors
        device.mark_checkout_requested()
        result = device.complete_checkout(np.zeros(6), 0)
        # Error count must be well below 30 (only the holdout subset).
        assert 0 < result.message.noisy_error_count < 30


class TestPrivacyAccounting:
    def test_accountant_charged_per_checkin(self, model, rng):
        device = make_device(model, rng, batch_size=1, epsilon=1.0)
        for _ in range(3):
            device.observe(sample(rng), 0)
            device.mark_checkout_requested()
            device.complete_checkout(np.zeros(6), 0)
        spend = device.accountant.spend()
        assert spend.per_sample_epsilon == pytest.approx(1.0)
        assert spend.total_epsilon == pytest.approx(3.0)

    def test_budget_mismatch_rejected(self, model, rng):
        bad_budget = PrivacyBudget.non_private(5)  # model has 2 classes
        config = DeviceConfig(1, 10, bad_budget)
        with pytest.raises(ConfigurationError):
            Device(0, model, config, "t", rng)


class TestGaussianDevice:
    def test_device_uses_gaussian_variant(self, model):
        """Footnote 1's variant flows from DeviceConfig through Routine 3."""
        budget = split_budget(0.5, model.num_classes)
        config = DeviceConfig(
            batch_size=1, buffer_capacity=10, budget=budget,
            gradient_noise="gaussian", gaussian_delta=1e-5,
        )
        device = Device(0, model, config, "t", np.random.default_rng(0))
        x = np.array([0.5, 0.3, 0.2])
        device.observe(x, 0)
        device.mark_checkout_requested()
        result = device.complete_checkout(np.zeros(6), 0)
        # The gradient release record carries the delta.
        assert result.message.releases[0].delta == 1e-5
        spend = device.accountant.spend()
        assert spend.total_delta == pytest.approx(1e-5)
