"""Tests for device authentication."""

import pytest

from repro.core import DeviceRegistry
from repro.utils.exceptions import AuthenticationError


class TestRegistration:
    def test_register_and_authenticate(self):
        registry = DeviceRegistry()
        token = registry.register(1)
        registry.authenticate(1, token)  # must not raise

    def test_tokens_differ_across_devices(self):
        registry = DeviceRegistry()
        assert registry.register(1) != registry.register(2)

    def test_registration_idempotent(self):
        registry = DeviceRegistry()
        assert registry.register(1) == registry.register(1)

    def test_tokens_differ_across_server_keys(self):
        a = DeviceRegistry(server_key="alpha").register(1)
        b = DeviceRegistry(server_key="beta").register(1)
        assert a != b

    def test_num_registered(self):
        registry = DeviceRegistry()
        registry.register(1)
        registry.register(2)
        assert registry.num_registered == 2

    def test_is_registered(self):
        registry = DeviceRegistry()
        registry.register(1)
        assert registry.is_registered(1)
        assert not registry.is_registered(2)


class TestAuthenticationFailures:
    def test_unknown_device(self):
        with pytest.raises(AuthenticationError, match="unknown"):
            DeviceRegistry().authenticate(9, "whatever")

    def test_wrong_token(self):
        registry = DeviceRegistry()
        registry.register(1)
        with pytest.raises(AuthenticationError, match="invalid token"):
            registry.authenticate(1, "forged")

    def test_token_from_other_device_rejected(self):
        """A malignant device cannot impersonate another with its own token."""
        registry = DeviceRegistry()
        token2 = registry.register(2)
        registry.register(1)
        with pytest.raises(AuthenticationError):
            registry.authenticate(1, token2)


class TestRevocation:
    def test_revoked_device_rejected(self):
        registry = DeviceRegistry()
        token = registry.register(1)
        registry.revoke(1)
        with pytest.raises(AuthenticationError, match="revoked"):
            registry.authenticate(1, token)

    def test_revoked_not_counted(self):
        registry = DeviceRegistry()
        registry.register(1)
        registry.revoke(1)
        assert registry.num_registered == 0
        assert not registry.is_registered(1)

    def test_reregistration_after_revoke(self):
        """Devices can leave and rejoin the task (Fig. 2 caption)."""
        registry = DeviceRegistry()
        registry.register(1)
        registry.revoke(1)
        token = registry.register(1)
        registry.authenticate(1, token)
