"""Tests for the Eq. 14 DP progress monitor."""

import numpy as np
import pytest

from repro.core import ProgressMonitor
from repro.privacy import DiscreteLaplaceMechanism


class TestEstimates:
    def test_initial_error_is_pessimistic(self):
        assert ProgressMonitor(3).error_estimate() == 1.0

    def test_initial_prior_uniform(self):
        assert np.allclose(ProgressMonitor(4).prior_estimate(), 0.25)

    def test_error_estimate_eq14(self):
        monitor = ProgressMonitor(2)
        monitor.record(0, 10, 3, np.array([5, 5]))
        monitor.record(1, 10, 1, np.array([4, 6]))
        assert monitor.error_estimate() == pytest.approx(4 / 20)

    def test_prior_estimate_eq14(self):
        monitor = ProgressMonitor(2)
        monitor.record(0, 10, 0, np.array([7, 3]))
        assert np.allclose(monitor.prior_estimate(), [0.7, 0.3])

    def test_clipping_of_noisy_negative_counts(self):
        monitor = ProgressMonitor(2)
        monitor.record(0, 10, -3, np.array([-2, 12]))
        assert monitor.error_estimate() == 0.0
        assert monitor.raw_error_estimate() == pytest.approx(-0.3)
        prior = monitor.prior_estimate()
        assert prior.min() >= 0.0
        assert prior.sum() == pytest.approx(1.0)

    def test_per_device_views(self):
        monitor = ProgressMonitor(2)
        monitor.record(0, 10, 5, np.array([5, 5]))
        monitor.record(1, 20, 2, np.array([10, 10]))
        assert monitor.device_error_estimate(0) == pytest.approx(0.5)
        assert monitor.device_error_estimate(1) == pytest.approx(0.1)
        assert monitor.device_sample_count(0) == 10
        assert monitor.device_error_estimate(99) == 1.0
        assert monitor.device_sample_count(99) == 0

    def test_counters(self):
        monitor = ProgressMonitor(2)
        monitor.record(0, 5, 0, np.array([3, 2]))
        monitor.record(0, 5, 0, np.array([2, 3]))
        assert monitor.num_checkins == 2
        assert monitor.num_devices_seen == 1
        assert monitor.total_samples == 10

    def test_rejects_wrong_count_shape(self):
        monitor = ProgressMonitor(3)
        with pytest.raises(ValueError):
            monitor.record(0, 5, 0, np.array([1, 2]))


class TestConvergenceUnderNoise:
    def test_estimate_converges_despite_dp_noise(self):
        """Appendix B Remark 2: noisy estimates converge to the truth."""
        rng = np.random.default_rng(0)
        mech = DiscreteLaplaceMechanism(0.5, rng)
        monitor = ProgressMonitor(2)
        true_error_rate, batch = 0.25, 20
        for device in range(400):
            errors = int(round(true_error_rate * batch))
            counts = np.array([batch // 2, batch - batch // 2])
            monitor.record(
                device,
                batch,
                mech.release(errors),
                np.array([mech.release(int(c)) for c in counts]),
            )
        assert monitor.error_estimate() == pytest.approx(true_error_rate, abs=0.03)
        assert np.allclose(monitor.prior_estimate(), [0.5, 0.5], atol=0.03)

    def test_estimate_variance_shrinks_with_checkins(self):
        """Std of the estimate decreases roughly like 1/√T."""
        def estimate_std(num_checkins, trials=40):
            outs = []
            for t in range(trials):
                rng = np.random.default_rng(t)
                mech = DiscreteLaplaceMechanism(0.5, rng)
                monitor = ProgressMonitor(2)
                for d in range(num_checkins):
                    monitor.record(d, 10, mech.release(2), np.array([5, 5]))
                outs.append(monitor.raw_error_estimate())
            return np.std(outs)

        assert estimate_std(100) < estimate_std(4) / 2
