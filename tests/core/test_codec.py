"""Tests for the wire codec."""

import numpy as np
import pytest

from repro.core import (
    CheckinAck,
    CheckinMessage,
    CheckoutRequest,
    CheckoutResponse,
    decode_from_json,
    decode_message,
    encode_message,
    encode_to_json,
)
from repro.utils.exceptions import ProtocolError


@pytest.fixture
def messages():
    return [
        CheckoutRequest(device_id=3, token="tok", request_time=1.25),
        CheckoutResponse(
            device_id=3, parameters=np.array([0.5, -1.5, 2.0]),
            server_iteration=7, issued_time=1.5,
        ),
        CheckinMessage(
            device_id=3, token="tok", gradient=np.array([0.1, 0.2, 0.3]),
            num_samples=5, noisy_error_count=-2,
            noisy_label_counts=np.array([2, 3]), checkout_iteration=6,
        ),
        CheckinAck(device_id=3, server_iteration=8),
    ]


class TestRoundTrip:
    def test_dict_round_trip(self, messages):
        for message in messages:
            decoded = decode_message(encode_message(message))
            assert type(decoded) is type(message)
            assert decoded.device_id == message.device_id

    def test_json_round_trip_preserves_arrays(self, messages):
        checkin = messages[2]
        decoded = decode_from_json(encode_to_json(checkin))
        assert np.array_equal(decoded.gradient, checkin.gradient)
        assert np.array_equal(decoded.noisy_label_counts, checkin.noisy_label_counts)
        assert decoded.noisy_error_count == -2

    def test_json_round_trip_float_precision(self):
        response = CheckoutResponse(
            device_id=0, parameters=np.array([1 / 3, np.pi]),
            server_iteration=0, issued_time=0.0,
        )
        decoded = decode_from_json(encode_to_json(response))
        assert np.array_equal(decoded.parameters, response.parameters)

    def test_type_tags_distinct(self, messages):
        tags = {encode_message(m)["type"] for m in messages}
        assert len(tags) == 4


class TestMalformedPayloads:
    def test_unknown_type(self):
        with pytest.raises(ProtocolError, match="unknown message type"):
            decode_message({"type": "bogus"})

    def test_missing_field(self):
        with pytest.raises(ProtocolError, match="malformed"):
            decode_message({"type": "checkout_request", "device_id": 1})

    def test_non_dict_payload(self):
        with pytest.raises(ProtocolError):
            decode_message([1, 2, 3])

    def test_invalid_json(self):
        with pytest.raises(ProtocolError, match="invalid JSON"):
            decode_from_json("{not json")

    def test_bad_num_samples_caught_by_constructor(self):
        payload = {
            "type": "checkin", "device_id": 1, "token": "t",
            "gradient": [0.0], "num_samples": 0, "noisy_error_count": 0,
            "noisy_label_counts": [0], "checkout_iteration": 0,
        }
        with pytest.raises(ProtocolError):
            decode_message(payload)


class TestServerInterop:
    def test_decoded_checkin_drives_server(self):
        """A check-in that crossed the codec must be fully usable."""
        from repro.core import CrowdMLServer, ServerConfig
        from repro.models import MulticlassLogisticRegression

        model = MulticlassLogisticRegression(2, 2)
        server = CrowdMLServer(model, config=ServerConfig(max_iterations=10))
        token = server.register_device(1)
        wire = encode_to_json(CheckinMessage(
            device_id=1, token=token, gradient=np.zeros(4), num_samples=2,
            noisy_error_count=1, noisy_label_counts=np.array([1, 1]),
            checkout_iteration=0,
        ))
        ack = server.handle_checkin(decode_from_json(wire))
        assert ack.server_iteration == 1
