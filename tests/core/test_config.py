"""Tests for device/server configuration validation."""

import math

import pytest

from repro.core import DeviceConfig, ServerConfig
from repro.privacy import PrivacyBudget
from repro.utils.exceptions import ConfigurationError


class TestDeviceConfig:
    def test_default_constructor(self):
        config = DeviceConfig.default(batch_size=10, num_classes=5, epsilon=1.0)
        assert config.batch_size == 10
        assert config.buffer_capacity == 100
        assert config.budget.total_epsilon == pytest.approx(1.0)

    def test_default_non_private(self):
        config = DeviceConfig.default(batch_size=1, num_classes=3)
        assert not config.budget.is_private

    def test_rejects_buffer_below_batch(self):
        with pytest.raises(ConfigurationError):
            DeviceConfig(
                batch_size=10,
                buffer_capacity=5,
                budget=PrivacyBudget.non_private(3),
            )

    def test_rejects_zero_batch(self):
        with pytest.raises(ConfigurationError):
            DeviceConfig(0, 10, PrivacyBudget.non_private(3))

    @pytest.mark.parametrize("fraction", [-0.1, 1.0])
    def test_rejects_bad_holdout(self, fraction):
        with pytest.raises(ConfigurationError):
            DeviceConfig(1, 10, PrivacyBudget.non_private(3),
                         holdout_fraction=fraction)

    def test_holdout_zero_allowed(self):
        config = DeviceConfig(1, 10, PrivacyBudget.non_private(3), holdout_fraction=0.0)
        assert config.holdout_fraction == 0.0


class TestServerConfig:
    def test_basic(self):
        config = ServerConfig(max_iterations=100, target_error=0.1)
        assert config.max_iterations == 100
        assert config.target_error == 0.1

    def test_no_target_error(self):
        assert ServerConfig(max_iterations=10).target_error is None

    def test_rejects_zero_iterations(self):
        with pytest.raises(ConfigurationError):
            ServerConfig(max_iterations=0)

    @pytest.mark.parametrize("rho", [-0.1, 1.5])
    def test_rejects_bad_target_error(self, rho):
        with pytest.raises(ConfigurationError):
            ServerConfig(max_iterations=10, target_error=rho)


class TestGradientNoiseConfig:
    def test_default_is_laplace(self):
        config = DeviceConfig(1, 10, PrivacyBudget.non_private(3))
        assert config.gradient_noise == "laplace"

    def test_gaussian_accepted(self):
        config = DeviceConfig(1, 10, PrivacyBudget.non_private(3),
                              gradient_noise="gaussian", gaussian_delta=1e-5)
        assert config.gaussian_delta == 1e-5

    def test_rejects_unknown_mechanism(self):
        with pytest.raises(ConfigurationError):
            DeviceConfig(1, 10, PrivacyBudget.non_private(3),
                         gradient_noise="cauchy")

    @pytest.mark.parametrize("delta", [0.0, 1.0])
    def test_rejects_bad_delta(self, delta):
        with pytest.raises(ConfigurationError):
            DeviceConfig(1, 10, PrivacyBudget.non_private(3),
                         gradient_noise="gaussian", gaussian_delta=delta)
