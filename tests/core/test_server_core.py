"""Tests for the batch-native protocol core (ServerCore)."""

import numpy as np
import pytest

from repro.core import (
    CheckinMessage,
    CheckoutRequest,
    RoundOutcome,
    ServerConfig,
    ServerCore,
)
from repro.privacy import PrivacyAccountant, ReleaseRecord
from repro.models import MulticlassLogisticRegression
from repro.optim import SGD, ConstantRate
from repro.utils.exceptions import AuthenticationError, ProtocolError


@pytest.fixture
def model():
    return MulticlassLogisticRegression(num_features=3, num_classes=2)


def make_core(model, accountant=None, **config_kwargs):
    config_kwargs.setdefault("max_iterations", 100)
    return ServerCore(
        model,
        optimizer=SGD(model.init_parameters(), schedule=ConstantRate(0.1)),
        config=ServerConfig(**config_kwargs),
        accountant=accountant,
    )


def checkin(device_id, token, gradient, num_samples=1, errors=0, labels=(1, 0),
            checkout_iteration=0, releases=()):
    return CheckinMessage(
        device_id=device_id,
        token=token,
        gradient=np.asarray(gradient, dtype=np.float64),
        num_samples=num_samples,
        noisy_error_count=errors,
        noisy_label_counts=np.asarray(labels, dtype=np.int64),
        checkout_iteration=checkout_iteration,
        releases=tuple(releases),
    )


class TestBatchCheckins:
    def test_batch_applies_in_order(self, model):
        core = make_core(model)
        token = core.register_device(1)
        acks = core.handle_checkins([
            checkin(1, token, np.ones(6)) for _ in range(4)
        ])
        assert [a.server_iteration for a in acks] == [1, 2, 3, 4]
        assert core.iteration == 4

    def test_empty_batch(self, model):
        core = make_core(model)
        assert core.handle_checkins([]) == []

    def test_rejections_yield_none_not_exceptions(self, model):
        core = make_core(model)
        token = core.register_device(1)
        acks = core.handle_checkins([
            checkin(1, token, np.ones(6)),
            checkin(2, "forged", np.ones(6)),      # unknown device
            checkin(1, "forged", np.ones(6)),      # bad token
            checkin(1, token, np.ones(4)),         # wrong gradient length
            checkin(1, token, np.ones(6)),
        ])
        assert [a is not None for a in acks] == [True, False, False, False, True]
        assert core.iteration == 2
        assert core.rejected_messages == 3

    def test_stop_mid_batch_rejects_the_rest(self, model):
        core = make_core(model, max_iterations=3)
        token = core.register_device(1)
        acks = core.handle_checkins([
            checkin(1, token, np.zeros(6)) for _ in range(5)
        ])
        assert [a is not None for a in acks] == [True, True, True, False, False]
        assert core.stopped
        assert core.rejected_messages == 2

    def test_target_error_stop_mid_batch(self, model):
        core = make_core(model, max_iterations=10**6, target_error=0.2,
                         min_samples_for_error_stop=20)
        token = core.register_device(1)
        acks = core.handle_checkins([
            checkin(1, token, np.zeros(6), num_samples=10, errors=1)
            for _ in range(5)
        ])
        # After 2 check-ins: 20 samples, estimate 0.1 <= 0.2 -> stop.
        assert [a is not None for a in acks] == [True, True, False, False, False]
        assert core.stopping_decision().reason.value == "target_error"

    def test_accountant_charged_per_applied_checkin(self, model):
        acct = PrivacyAccountant()
        core = make_core(model, accountant=acct)
        token = core.register_device(1)
        releases = (ReleaseRecord(epsilon=0.5, mechanism="laplace"),
                    ReleaseRecord(epsilon=0.1, mechanism="discrete"),
                    ReleaseRecord(epsilon=0.1, mechanism="discrete"))
        core.handle_checkins([
            checkin(1, token, np.zeros(6), releases=releases),
            checkin(1, "forged", np.zeros(6), releases=releases),
        ])
        spend = acct.spend()
        assert spend.num_releases == 3  # rejected check-in never charged
        assert spend.per_sample_epsilon == pytest.approx(0.7)


class TestServeRound:
    def test_fused_round_checkout_then_checkin(self, model):
        core = make_core(model)
        token = core.register_device(1)
        request = CheckoutRequest(1, token, 0.0)

        def complete(response):
            assert np.array_equal(response.parameters, np.zeros(6))
            return checkin(1, token, np.ones(6),
                           checkout_iteration=response.server_iteration)

        outcome = core.serve_round([request], complete)
        assert isinstance(outcome, RoundOutcome)
        assert outcome.acks[0].server_iteration == 1
        assert outcome.messages[0].checkout_iteration == 0
        assert core.checkouts_served == 1
        assert not outcome.stop.stopped

    def test_round_applies_before_next_request(self, model):
        """Request i+1 must see the update applied by request i."""
        core = make_core(model)
        tokens = {d: core.register_device(d) for d in (1, 2)}
        seen_iterations = []

        def complete(response):
            seen_iterations.append(response.server_iteration)
            return checkin(response.device_id, tokens[response.device_id],
                           np.ones(6))

        outcome = core.serve_round(
            [CheckoutRequest(1, tokens[1], 0.0), CheckoutRequest(2, tokens[2], 0.0)],
            complete,
        )
        assert seen_iterations == [0, 1]
        assert [a.server_iteration for a in outcome.acks] == [1, 2]

    def test_complete_args_are_forwarded(self, model):
        core = make_core(model)
        token = core.register_device(1)
        captured = []

        def complete(response, tag):
            captured.append(tag)
            return None

        core.serve_round([CheckoutRequest(1, token, 0.0)], complete, ("extra",))
        assert captured == ["extra"]

    def test_auth_failure_skips_complete(self, model):
        core = make_core(model)
        calls = []
        outcome = core.serve_round(
            [CheckoutRequest(9, "bogus", 0.0)],
            lambda response: calls.append(response),
        )
        assert outcome.responses == (None,)
        assert outcome.acks == (None,)
        assert calls == []
        assert core.rejected_messages == 1

    def test_none_from_complete_skips_checkin(self, model):
        core = make_core(model)
        token = core.register_device(1)
        outcome = core.serve_round(
            [CheckoutRequest(1, token, 0.0)], lambda response: None,
        )
        assert outcome.responses[0] is not None
        assert outcome.messages == (None,)
        assert outcome.acks == (None,)
        assert core.iteration == 0

    def test_stopped_core_rejects_requests(self, model):
        core = make_core(model, max_iterations=1)
        token = core.register_device(1)
        core.handle_checkin(checkin(1, token, np.zeros(6)))
        assert core.stopped
        outcome = core.serve_round(
            [CheckoutRequest(1, token, 0.0)],
            lambda response: checkin(1, token, np.zeros(6)),
        )
        assert outcome.responses == (None,)
        assert outcome.stop.stopped

    def test_round_stop_decision_reported(self, model):
        core = make_core(model, max_iterations=2)
        token = core.register_device(1)

        def complete(response):
            return checkin(1, token, np.zeros(6))

        outcome = core.serve_round(
            [CheckoutRequest(1, token, 0.0), CheckoutRequest(1, token, 0.0)],
            complete,
        )
        assert outcome.stop.stopped
        assert outcome.stop.reason.value == "max_iterations"


class TestSingleMessageSemantics:
    """The raise-on-reject wire semantics are preserved on the core."""

    def test_checkout_raises_for_unknown_device(self, model):
        core = make_core(model)
        with pytest.raises(AuthenticationError):
            core.handle_checkout(CheckoutRequest(9, "x", 0.0))

    def test_checkin_raises_once_stopped(self, model):
        core = make_core(model, max_iterations=1)
        token = core.register_device(1)
        core.handle_checkin(checkin(1, token, np.zeros(6)))
        with pytest.raises(ProtocolError):
            core.handle_checkin(checkin(1, token, np.zeros(6)))

    def test_stop_cache_tracks_updates(self, model):
        core = make_core(model, max_iterations=2)
        token = core.register_device(1)
        assert core.stopping_decision() is core.stopping_decision()  # cached
        core.handle_checkin(checkin(1, token, np.zeros(6)))
        assert not core.stopped
        core.handle_checkin(checkin(1, token, np.zeros(6)))
        assert core.stopped


class TestShim:
    def test_crowd_ml_server_delegates_to_core(self, model):
        from repro.core import CrowdMLServer

        server = CrowdMLServer(model, config=ServerConfig(max_iterations=10))
        token = server.register_device(0)
        response = server.handle_checkout(CheckoutRequest(0, token, 0.0))
        ack = server.handle_checkin(
            checkin(0, token, np.zeros(6),
                    checkout_iteration=response.server_iteration)
        )
        assert ack.server_iteration == 1
        assert server.core.iteration == server.iteration == 1
        assert server.core.checkouts_served == server.checkouts_served == 1
