"""Tests for the Web-portal substrate (Section V-A)."""

import math

import numpy as np
import pytest

from repro.core import CrowdMLServer, Device, ServerConfig
from repro.core.protocol import CheckoutRequest
from repro.models import MulticlassLogisticRegression
from repro.portal import Dashboard, Portal, TaskDescriptor, ascii_bar_chart, sparkline
from repro.privacy import split_budget
from repro.utils.exceptions import AuthenticationError, ConfigurationError


def make_task(task_id="activity", epsilon=1.0, batch_size=5, num_classes=3):
    return TaskDescriptor(
        task_id=task_id,
        name="Activity recognition",
        objective="Recognize Still / On Foot / In Vehicle from accelerometer",
        sensors=("accelerometer",),
        labels=tuple(f"class{i}" for i in range(num_classes)),
        algorithm="multiclass logistic regression (Table I)",
        batch_size=batch_size,
        budget=split_budget(epsilon, num_classes),
    )


def make_server(num_classes=3, num_features=4):
    model = MulticlassLogisticRegression(num_features, num_classes)
    return CrowdMLServer(model, config=ServerConfig(max_iterations=1000))


class TestTaskDescriptor:
    def test_describe_mentions_everything(self):
        text = make_task().describe()
        assert "accelerometer" in text
        assert "logistic regression" in text
        assert "epsilon" in text

    def test_privacy_summary_non_private(self):
        task = make_task(epsilon=math.inf)
        assert "epsilon = inf" in task.privacy_summary

    def test_privacy_summary_discloses_split(self):
        summary = make_task(epsilon=1.0).privacy_summary
        assert "gradient" in summary
        assert "label count" in summary

    def test_rejects_label_budget_mismatch(self):
        with pytest.raises(ConfigurationError):
            TaskDescriptor(
                task_id="x", name="x", objective="x", sensors=(),
                labels=("a", "b"), algorithm="lr", batch_size=1,
                budget=split_budget(1.0, 3),
            )


class TestPortalLifecycle:
    def test_publish_and_browse(self):
        portal = Portal()
        portal.publish(make_task(), make_server())
        assert len(portal.tasks()) == 1
        assert "Activity recognition" in portal.render_index()

    def test_duplicate_publish_rejected(self):
        portal = Portal()
        portal.publish(make_task(), make_server())
        with pytest.raises(ConfigurationError):
            portal.publish(make_task(), make_server())

    def test_class_mismatch_rejected(self):
        portal = Portal()
        with pytest.raises(ConfigurationError):
            portal.publish(make_task(num_classes=3), make_server(num_classes=5))

    def test_join_assigns_sequential_ids(self):
        portal = Portal()
        portal.publish(make_task(), make_server())
        a = portal.join("activity")
        b = portal.join("activity")
        assert (a.device_id, b.device_id) == (0, 1)
        assert a.token != b.token

    def test_enrollment_config_matches_task(self):
        portal = Portal()
        task = make_task(batch_size=7, epsilon=2.0)
        portal.publish(task, make_server())
        enrollment = portal.join("activity")
        assert enrollment.device_config.batch_size == 7
        assert enrollment.device_config.budget.total_epsilon == pytest.approx(2.0)

    def test_unknown_task_rejected(self):
        with pytest.raises(ConfigurationError):
            Portal().join("nope")

    def test_leave_revokes_access(self):
        portal = Portal()
        server = make_server()
        portal.publish(make_task(), server)
        enrollment = portal.join("activity")
        portal.leave("activity", enrollment.device_id)
        with pytest.raises(AuthenticationError):
            server.handle_checkout(
                CheckoutRequest(enrollment.device_id, enrollment.token, 0.0)
            )

    def test_enrolled_device_can_run_protocol(self, rng):
        """The portal's enrollment is sufficient to drive Algorithm 1."""
        portal = Portal()
        server = make_server()
        portal.publish(make_task(batch_size=1), server)
        enrollment = portal.join("activity")
        model = server.model
        device = Device(
            enrollment.device_id, model, enrollment.device_config,
            enrollment.token, rng,
        )
        x = rng.normal(size=4)
        x /= np.abs(x).sum()
        assert device.observe(x, 1)
        device.mark_checkout_requested()
        response = server.handle_checkout(
            CheckoutRequest(enrollment.device_id, enrollment.token, 0.0)
        )
        result = device.complete_checkout(response.parameters, 0)
        ack = server.handle_checkin(result.message)
        assert ack.server_iteration == 1


class TestDashboard:
    def test_render_contains_dp_stats(self):
        portal = Portal()
        server = make_server()
        portal.publish(make_task(), server)
        server.monitor.record(0, 10, 2, np.array([4, 3, 3]))
        text = portal.dashboard("activity").render()
        assert "error estimate   : 0.200" in text
        assert "class0" in text

    def test_snapshot_builds_trend(self):
        monitor_server = make_server()
        dashboard = Dashboard(monitor_server.monitor, ["a", "b", "c"])
        monitor_server.monitor.record(0, 10, 8, np.array([4, 3, 3]))
        dashboard.snapshot()
        monitor_server.monitor.record(0, 90, 2, np.array([30, 30, 30]))
        dashboard.snapshot()
        assert len(dashboard.error_history) == 2
        assert "error trend" in dashboard.render()

    def test_label_name_count_enforced(self):
        server = make_server()
        with pytest.raises(ValueError):
            Dashboard(server.monitor, ["only-two", "names"])


class TestRenderingHelpers:
    def test_bar_chart_proportions(self):
        chart = ascii_bar_chart([1.0, 0.5], ["long", "short"], width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_bar_chart_all_zero(self):
        chart = ascii_bar_chart([0.0, 0.0], ["a", "b"], width=5)
        assert "#" not in chart

    def test_bar_chart_validates(self):
        with pytest.raises(ValueError):
            ascii_bar_chart([1.0], ["a", "b"])

    def test_sparkline_monotone(self):
        line = sparkline([0.0, 0.5, 1.0])
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_sparkline_constant_and_empty(self):
        assert sparkline([]) == ""
        assert sparkline([0.3, 0.3]) == "▁▁"
