"""Tests for the server runtime (Algorithm 2)."""

import numpy as np
import pytest

from repro.core import (
    CheckinMessage,
    CheckoutRequest,
    CrowdMLServer,
    ServerConfig,
)
from repro.models import MulticlassLogisticRegression
from repro.optim import SGD, ConstantRate
from repro.utils.exceptions import AuthenticationError, ProtocolError


@pytest.fixture
def model():
    return MulticlassLogisticRegression(num_features=3, num_classes=2)


@pytest.fixture
def server(model):
    return CrowdMLServer(
        model,
        optimizer=SGD(model.init_parameters(), schedule=ConstantRate(0.1)),
        config=ServerConfig(max_iterations=100),
    )


def checkin(device_id, token, gradient, num_samples=1, errors=0, labels=(1, 0),
            checkout_iteration=0):
    return CheckinMessage(
        device_id=device_id,
        token=token,
        gradient=np.asarray(gradient, dtype=np.float64),
        num_samples=num_samples,
        noisy_error_count=errors,
        noisy_label_counts=np.asarray(labels, dtype=np.int64),
        checkout_iteration=checkout_iteration,
    )


class TestCheckout:
    def test_serves_current_parameters(self, server):
        token = server.register_device(1)
        response = server.handle_checkout(CheckoutRequest(1, token, 0.0))
        assert np.array_equal(response.parameters, np.zeros(6))
        assert response.server_iteration == 0

    def test_rejects_unknown_device(self, server):
        with pytest.raises(AuthenticationError):
            server.handle_checkout(CheckoutRequest(9, "x", 0.0))
        assert server.rejected_messages == 1

    def test_rejects_bad_token(self, server):
        server.register_device(1)
        with pytest.raises(AuthenticationError):
            server.handle_checkout(CheckoutRequest(1, "forged", 0.0))

    def test_counts_checkouts(self, server):
        token = server.register_device(1)
        for _ in range(3):
            server.handle_checkout(CheckoutRequest(1, token, 0.0))
        assert server.checkouts_served == 3


class TestCheckin:
    def test_applies_sgd_update(self, server):
        token = server.register_device(1)
        gradient = np.ones(6)
        server.handle_checkin(checkin(1, token, gradient))
        # w <- w - 0.1 * g.
        assert np.allclose(server.parameters, -0.1)
        assert server.iteration == 1

    def test_iteration_advances_per_checkin(self, server):
        token = server.register_device(1)
        for _ in range(5):
            server.handle_checkin(checkin(1, token, np.zeros(6)))
        assert server.iteration == 5

    def test_monitor_accumulates(self, server):
        token = server.register_device(1)
        server.handle_checkin(checkin(1, token, np.zeros(6), num_samples=10,
                                      errors=3, labels=(6, 4)))
        assert server.monitor.total_samples == 10
        assert server.monitor.error_estimate() == pytest.approx(0.3)

    def test_rejects_wrong_gradient_length(self, server):
        token = server.register_device(1)
        with pytest.raises(ProtocolError):
            server.handle_checkin(checkin(1, token, np.zeros(4)))

    def test_rejects_unauthenticated(self, server):
        with pytest.raises(AuthenticationError):
            server.handle_checkin(checkin(2, "x", np.zeros(6)))

    def test_ack_reports_iteration(self, server):
        token = server.register_device(1)
        ack = server.handle_checkin(checkin(1, token, np.zeros(6)))
        assert ack.server_iteration == 1


class TestStopping:
    def test_stops_at_max_iterations(self, model):
        server = CrowdMLServer(
            model,
            optimizer=SGD(model.init_parameters()),
            config=ServerConfig(max_iterations=2),
        )
        token = server.register_device(1)
        server.handle_checkin(checkin(1, token, np.zeros(6)))
        assert not server.stopped
        server.handle_checkin(checkin(1, token, np.zeros(6)))
        assert server.stopped
        with pytest.raises(ProtocolError):
            server.handle_checkin(checkin(1, token, np.zeros(6)))
        with pytest.raises(ProtocolError):
            server.handle_checkout(CheckoutRequest(1, token, 0.0))

    def test_stops_at_target_error(self, model):
        server = CrowdMLServer(
            model,
            optimizer=SGD(model.init_parameters()),
            config=ServerConfig(
                max_iterations=10**6, target_error=0.2,
                min_samples_for_error_stop=50,
            ),
        )
        token = server.register_device(1)
        # 100 samples at 10% error -> estimate 0.1 <= rho once min samples hit.
        for _ in range(10):
            if server.stopped:
                break
            server.handle_checkin(
                checkin(1, token, np.zeros(6), num_samples=10, errors=1)
            )
        assert server.stopped
        assert server.stopping_decision().reason.value == "target_error"

    def test_error_stop_respects_min_samples(self, model):
        server = CrowdMLServer(
            model,
            optimizer=SGD(model.init_parameters()),
            config=ServerConfig(
                max_iterations=10**6, target_error=0.5,
                min_samples_for_error_stop=1000,
            ),
        )
        token = server.register_device(1)
        server.handle_checkin(checkin(1, token, np.zeros(6), num_samples=10, errors=0))
        assert not server.stopped


class TestAsynchrony:
    def test_stale_gradients_accepted(self, server):
        """A check-in computed against an old w still applies (Fig. 2:
        devices work asynchronously)."""
        token = server.register_device(1)
        old_iteration = server.iteration
        for _ in range(5):
            server.handle_checkin(checkin(1, token, np.ones(6) * 0.01))
        # Message claims it used iteration-0 parameters; still applied.
        ack = server.handle_checkin(
            checkin(1, token, np.ones(6) * 0.01, checkout_iteration=old_iteration)
        )
        assert ack.server_iteration == 6

    def test_interleaved_devices(self, server):
        tokens = {d: server.register_device(d) for d in (1, 2, 3)}
        for d in (1, 2, 3, 2, 1):
            server.handle_checkin(checkin(d, tokens[d], np.zeros(6)))
        assert server.iteration == 5
        assert server.monitor.num_devices_seen == 3


class TestOptimizerMismatch:
    def test_wrong_optimizer_length_rejected(self, model):
        with pytest.raises(ProtocolError):
            CrowdMLServer(model, optimizer=SGD(np.zeros(4)))
