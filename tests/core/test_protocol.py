"""Tests for the wire-protocol messages."""

import numpy as np
import pytest

from repro.core import CheckinAck, CheckinMessage, CheckoutRequest, CheckoutResponse
from repro.utils.exceptions import ProtocolError


class TestCheckoutMessages:
    def test_request_has_no_payload(self):
        request = CheckoutRequest(device_id=1, token="t", request_time=0.0)
        assert request.payload_floats == 0

    def test_response_payload_is_parameter_count(self):
        response = CheckoutResponse(
            device_id=1, parameters=np.zeros(12), server_iteration=5, issued_time=1.0
        )
        assert response.payload_floats == 12

    def test_response_rejects_matrix_parameters(self):
        with pytest.raises(ProtocolError):
            CheckoutResponse(1, np.zeros((3, 4)), 0, 0.0)


class TestCheckinMessage:
    def _message(self, **overrides):
        kwargs = dict(
            device_id=1,
            token="t",
            gradient=np.zeros(10),
            num_samples=5,
            noisy_error_count=2,
            noisy_label_counts=np.array([3, 2, 0]),
            checkout_iteration=7,
        )
        kwargs.update(overrides)
        return CheckinMessage(**kwargs)

    def test_payload_accounting(self):
        message = self._message()
        # gradient (10) + label counts (3) + n_s + n_e.
        assert message.payload_floats == 15

    def test_negative_noisy_counts_allowed(self):
        """DP noise can push counts negative (Appendix B Remark 2)."""
        message = self._message(noisy_error_count=-1,
                                noisy_label_counts=np.array([-2, 1, 0]))
        assert message.noisy_error_count == -1

    def test_rejects_nonpositive_num_samples(self):
        with pytest.raises(ProtocolError):
            self._message(num_samples=0)

    def test_rejects_matrix_gradient(self):
        with pytest.raises(ProtocolError):
            self._message(gradient=np.zeros((2, 5)))

    def test_rejects_2d_label_counts(self):
        with pytest.raises(ProtocolError):
            self._message(noisy_label_counts=np.zeros((2, 2), dtype=int))

    def test_immutable(self):
        message = self._message()
        with pytest.raises(Exception):
            message.num_samples = 10

    def test_ack_payload(self):
        assert CheckinAck(device_id=1, server_iteration=3).payload_floats == 1


class TestCommunicationReduction:
    def test_minibatch_reduces_uplink_by_factor_b(self):
        """Section IV-B2: crowd sends N/b gradients instead of N samples —
        uplink volume per sample shrinks linearly in b."""
        dim = 500

        def uplink_per_sample(b):
            message = CheckinMessage(
                device_id=0,
                token="t",
                gradient=np.zeros(dim),
                num_samples=b,
                noisy_error_count=0,
                noisy_label_counts=np.zeros(10, dtype=int),
                checkout_iteration=0,
            )
            return message.payload_floats / b

        assert uplink_per_sample(20) == pytest.approx(uplink_per_sample(1) / 20)
