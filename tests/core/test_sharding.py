"""Shard math: stable hashing and cross-shard merges."""

import pytest

from repro.core.sharding import (
    ShardMergeError,
    merge_counters,
    merge_status_counts,
    stable_device_hash,
)


class TestStableDeviceHash:
    def test_deterministic(self):
        assert stable_device_hash(7) == stable_device_hash(7)

    def test_known_value(self):
        # Pinned: a changed constant would silently re-shard every
        # deployed state dir.
        assert stable_device_hash(1) == 2654435761 & 0xFFFFFFFF
        assert stable_device_hash(0) == 0

    def test_fits_32_bits(self):
        for device_id in (1, 12345, 2**31 - 1, 2**40):
            assert 0 <= stable_device_hash(device_id) < 2**32

    def test_spreads_sequential_ids(self):
        # Sequential ids must not all land in one residue class.
        shards = {stable_device_hash(d) % 4 for d in range(64)}
        assert shards == {0, 1, 2, 3}


def counters(checkouts=0, rejected=0, dups=0, seqs=None):
    return {
        "checkouts_served": checkouts,
        "rejected_messages": rejected,
        "duplicates_suppressed": dups,
        "applied_seqs": seqs or {},
    }


class TestMergeCounters:
    def test_sums_and_unions(self):
        merged = merge_counters([
            counters(checkouts=3, rejected=1, dups=2, seqs={"0": [4, 10]}),
            counters(checkouts=5, dups=1, seqs={"3": [2, 7]}),
        ])
        assert merged["checkouts_served"] == 8
        assert merged["rejected_messages"] == 1
        assert merged["duplicates_suppressed"] == 3
        assert merged["applied_seqs"] == {"0": [4, 10], "3": [2, 7]}

    def test_ledger_collision_raises(self):
        with pytest.raises(ShardMergeError, match="more than one shard"):
            merge_counters([
                counters(seqs={"5": [1, 1]}),
                counters(seqs={"5": [2, 2]}),
            ])

    def test_empty_input_is_zero(self):
        merged = merge_counters([])
        assert merged["checkouts_served"] == 0
        assert merged["applied_seqs"] == {}


def status(iteration=0, stopped=False, reason="running", devices=0,
           num_parameters=8, dups=0):
    return {
        "iteration": iteration,
        "stopped": stopped,
        "stop_reason": reason,
        "checkouts_served": iteration,
        "rejected_messages": 0,
        "registered_devices": devices,
        "num_parameters": num_parameters,
        "duplicates_suppressed": dups,
    }


class TestMergeStatusCounts:
    def test_counters_sum(self):
        merged = merge_status_counts([
            status(iteration=10, devices=2, dups=1),
            status(iteration=7, devices=3, dups=4),
        ])
        assert merged["iteration"] == 17
        assert merged["registered_devices"] == 5
        assert merged["duplicates_suppressed"] == 5
        assert merged["num_parameters"] == 8

    def test_running_while_any_shard_lives(self):
        merged = merge_status_counts([
            status(stopped=True, reason="max_iterations"),
            status(stopped=False),
        ])
        assert merged["stopped"] is False
        assert merged["stop_reason"] == "running"

    def test_stopped_only_when_all_stopped(self):
        merged = merge_status_counts([
            status(stopped=True, reason="target_error"),
            status(stopped=True, reason="max_iterations"),
        ])
        assert merged["stopped"] is True
        assert merged["stop_reason"] == "target_error"  # first stopped wins

    def test_shape_disagreement_raises(self):
        with pytest.raises(ShardMergeError, match="num_parameters"):
            merge_status_counts([
                status(num_parameters=8), status(num_parameters=9),
            ])

    def test_empty_raises(self):
        with pytest.raises(ShardMergeError, match="empty"):
            merge_status_counts([])
