"""ShardRouter: policies, splitting, and merge discipline."""

import pytest

from repro.core.sharding import stable_device_hash
from repro.registry import SHARD_ROUTING
from repro.shard import ShardRouter, ShardRoutingError


class TestRegistryPolicies:
    def test_builtins_registered(self):
        assert "stable_hash" in SHARD_ROUTING.names()
        assert "modulo" in SHARD_ROUTING.names()

    def test_stable_hash_matches_core_hash(self):
        router = ShardRouter(5, policy="stable_hash")
        for device_id in range(50):
            assert router.shard_of(device_id) == stable_device_hash(device_id) % 5

    def test_modulo_policy(self):
        router = ShardRouter(3, policy="modulo")
        assert [router.shard_of(d) for d in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_callable_policy(self):
        router = ShardRouter(4, policy=lambda device_id, n: device_id % n)
        assert router.shard_of(7) == 3

    def test_unknown_policy_raises(self):
        with pytest.raises(Exception):
            ShardRouter(2, policy="no-such-policy")


class TestShardOf:
    def test_stable_across_instances(self):
        a, b = ShardRouter(8), ShardRouter(8)
        assert all(a.shard_of(d) == b.shard_of(d) for d in range(100))

    def test_all_shards_reachable(self):
        router = ShardRouter(4)
        assert {router.shard_of(d) for d in range(64)} == {0, 1, 2, 3}

    def test_single_shard(self):
        router = ShardRouter(1)
        assert all(router.shard_of(d) == 0 for d in range(10))

    def test_bad_num_shards(self):
        with pytest.raises(ValueError):
            ShardRouter(0)

    def test_out_of_range_policy_caught(self):
        router = ShardRouter(2, policy=lambda device_id, n: 5)
        with pytest.raises(ShardRoutingError, match="outside"):
            router.shard_of(1)


class TestSplitMerge:
    def test_split_preserves_order_and_indices(self):
        router = ShardRouter(2, policy="modulo")
        items = [{"device_id": d} for d in (0, 1, 2, 3, 4)]
        groups = router.split(items)
        assert groups[0] == [(0, items[0]), (2, items[2]), (4, items[4])]
        assert groups[1] == [(1, items[1]), (3, items[3])]

    def test_split_custom_key(self):
        router = ShardRouter(2, policy="modulo")
        groups = router.split([10, 11], device_id_of=lambda x: x)
        assert set(groups) == {0, 1}

    def test_merge_restores_original_order(self):
        router = ShardRouter(2, policy="modulo")
        items = [{"device_id": d} for d in (0, 1, 2, 3)]
        groups = router.split(items)
        answers = {
            shard: [f"ack-{item['device_id']}" for _, item in entries]
            for shard, entries in groups.items()
        }
        merged = ShardRouter.merge(groups, answers, len(items))
        assert merged == ["ack-0", "ack-1", "ack-2", "ack-3"]

    def test_merge_length_mismatch_raises(self):
        router = ShardRouter(2, policy="modulo")
        groups = router.split([{"device_id": 0}, {"device_id": 2}])
        with pytest.raises(ShardRoutingError, match="answered"):
            ShardRouter.merge(groups, {0: ["only-one"]}, 2)
