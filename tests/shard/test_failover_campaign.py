"""The sharded-tier acceptance campaign.

A seeded chaos run against a real 3-worker tier: clients drive traffic
through a lossy proxy (dropped acks force replays) into the front end,
while a :class:`WorkerKiller` SIGKILLs workers mid-campaign and the
supervisor fails the shards over.  The gates:

* every driven check-in is eventually acked (clients retry through it),
* the front end returns **zero** internal errors,
* replays are suppressed exactly-once (``duplicates_suppressed > 0``
  and the dedupe ledger answers replays with the original ack),
* each shard's final durable parameters are **bit-identical** to an
  uninterrupted in-process reference fed the same messages in the same
  order.
"""

import json
import urllib.request

import numpy as np
import pytest

from repro.core.auth import DeviceRegistry
from repro.core.protocol import CheckinMessage
from repro.obs.metrics import MetricsRegistry
from repro.persist import FaultyProxy, SnapshotStore, WorkerKiller, restore_core
from repro.serve.client import ServiceClient
from repro.shard import ShardFrontEnd, ShardRouter

from tests.persist.conftest import CLASSES, make_model
from tests.shard.conftest import SERVER_KEY, make_core, start_supervised_tier

NUM_SHARDS = 3
DEVICES = list(range(6))
ROUNDS = 5
KILL_EVERY = 8
MAX_KILLS = 2
NUM_PARAMETERS = make_model().num_parameters


def build_message(device_id: int, token: str, seq: int,
                  rng: np.random.Generator) -> CheckinMessage:
    """Deterministic traffic; checkout_iteration pinned so the reference
    replay constructs byte-identical messages."""
    return CheckinMessage(
        device_id=device_id,
        token=token,
        gradient=rng.normal(size=NUM_PARAMETERS),
        num_samples=int(rng.integers(1, 6)),
        noisy_error_count=int(rng.integers(0, 4)),
        noisy_label_counts=rng.integers(0, 5, size=CLASSES),
        checkout_iteration=0,
        checkin_seq=seq,
    )


def scrape_metrics(url: str) -> dict:
    """One front-end metrics scrape; raises if the endpoint errors."""
    with urllib.request.urlopen(f"{url}/v1/metrics?format=json",
                                timeout=15.0) as response:
        assert response.status == 200
        return json.loads(response.read())


def counter_total(snapshot: dict, name: str) -> int:
    return sum(c["value"] for c in snapshot["counters"] if c["name"] == name)


@pytest.mark.slow
def test_failover_campaign_keeps_each_shard_bit_identical(tmp_path):
    # Observed tier: workers run with --metrics, the parent process
    # shares one registry between supervisor and front end, and the
    # campaign scrapes the aggregate every round (zero scrape errors is
    # itself a gate — PR 9's acceptance criterion).
    tier_metrics = MetricsRegistry("campaign")
    supervisor = start_supervised_tier(tmp_path, num_shards=NUM_SHARDS,
                                       extra=("--metrics",),
                                       metrics=tier_metrics)
    router = ShardRouter(NUM_SHARDS)
    frontend = ShardFrontEnd(router, supervisor, metrics=tier_metrics).start()
    proxy = FaultyProxy(frontend.url, seed=7, drop_response=0.2).start()
    killer = WorkerKiller(supervisor, every=KILL_EVERY, seed=3,
                          max_kills=MAX_KILLS)
    client = ServiceClient(proxy.url, timeout=15.0, retries=16,
                           backoff=0.02, backoff_max=0.5,
                           retry_rng=20260808)
    reference_registry = make_core(
        registry=DeviceRegistry(server_key=SERVER_KEY)
    )
    sent = []  # (device_id, message) in ack order — the replay script
    try:
        tokens = {}
        for device_id in DEVICES:
            tokens[device_id] = client.join(device_id)
            assert tokens[device_id] == reference_registry.register_device(device_id)

        rng = np.random.default_rng(20260808)
        for round_index in range(ROUNDS):
            for device_id in DEVICES:
                message = build_message(
                    device_id, tokens[device_id], seq=round_index, rng=rng
                )
                result = client.checkins([message])
                assert result.acks[0] is not None, (
                    f"round {round_index} device {device_id} never acked"
                )
                sent.append((device_id, message))
                killer.after_batch()
            # Mid-campaign scrape, straight at the front end (not the
            # lossy proxy): must answer 200 every round, kills or not.
            scrape_metrics(frontend.url)

        # The campaign actually injected chaos.
        assert killer.kills == MAX_KILLS, killer.killed_shards
        assert proxy.stats()["responses_dropped"] > 0

        # Deterministic replay probe: re-send an already-applied message;
        # the ledger must answer with the original ack, not re-apply.
        probe_device, probe_message = sent[-1]
        replay = client.checkins([probe_message])
        assert replay.acks[0] is not None
        assert replay.acks[0].duplicate is True
        replayed_ack_iteration = replay.acks[0].server_iteration

        status = client.status()
        assert status.duplicates_suppressed > 0
        total_iterations = status.iteration

        # Zero unhandled server errors at the front end: retryable 503s
        # during failover windows are fine, 500s are not.
        assert frontend.errors_returned.get("internal", 0) == 0

        # -- the aggregate scrape is non-vacuous after the chaos -------- #
        final = scrape_metrics(frontend.url)
        assert final["enabled"] is True
        # Failovers: the supervisor's mirrored counters recorded every
        # kill the campaign injected.
        assert counter_total(
            final, "shard_supervisor_failovers_total"
        ) == MAX_KILLS
        assert counter_total(
            final, "shard_supervisor_process_exit_failovers_total"
        ) >= 1
        # Duplicates: dropped acks forced replays, and every worker's
        # ledger counted the suppressions (summed across shard labels).
        assert counter_total(final, "core_duplicates_suppressed_total") > 0
        # Fencing: a replacement incarnation advanced some shard's
        # fence epoch past the seed incarnation's 0.
        fence_epochs = {
            g["labels"].get("shard"): g["value"]
            for g in final["gauges"] if g["name"] == "shard_fence_epoch"
        }
        assert fence_epochs, "no fence-epoch gauges in the aggregate"
        assert max(fence_epochs.values()) >= 1
        # Per-shard worker series really made it through the merge: the
        # check-in latency histogram exists for every shard label, with
        # a live bucket count.
        shard_hists = {
            h["labels"].get("shard"): h
            for h in final["histograms"]
            if h["name"] == "service_request_seconds"
            and h["labels"].get("endpoint") == "checkins"
        }
        assert set(shard_hists) == {str(s) for s in range(NUM_SHARDS)}
        # A killed worker's in-process counters die with it (the ledger
        # is what's durable), so the merged counts cover at least the
        # traffic since each shard's last failover — non-zero for all.
        for shard, hist in shard_hists.items():
            assert hist["count"] > 0, f"shard {shard} scrape was vacuous"
    finally:
        proxy.stop()
        frontend.stop()
        exit_codes = supervisor.stop(graceful=True)

    assert all(code == 0 for code in exit_codes.values()), exit_codes

    # -- per-shard bit-parity against an uninterrupted reference -------- #
    references = {}
    for shard in range(NUM_SHARDS):
        core = make_core(registry=DeviceRegistry(server_key=SERVER_KEY))
        for device_id in DEVICES:
            if router.shard_of(device_id) == shard:
                core.register_device(device_id)
        references[shard] = core
    for device_id, message in sent:
        references[router.shard_of(device_id)].handle_checkins([message])

    assert sum(core.iteration for core in references.values()) == len(sent)
    assert total_iterations == len(sent)  # exactly-once despite the chaos

    probe_shard = router.shard_of(probe_device)
    probe_ledger = references[probe_shard].counters_state()["applied_seqs"]
    assert replayed_ack_iteration == probe_ledger[str(probe_device)][1]

    for shard in range(NUM_SHARDS):
        store = SnapshotStore(str(tmp_path / f"shard-{shard}"))
        snapshot, _ = store.load_latest()
        restored = restore_core(snapshot, make_model())
        reference = references[shard]
        assert restored.iteration == reference.iteration, f"shard {shard}"
        np.testing.assert_array_equal(
            restored.parameters, reference.parameters,
            err_msg=f"shard {shard} diverged from the uninterrupted run",
        )
        assert (restored.counters_state()["applied_seqs"]
                == reference.counters_state()["applied_seqs"]), f"shard {shard}"
