"""The sharded-tier acceptance campaign.

A seeded chaos run against a real 3-worker tier: clients drive traffic
through a lossy proxy (dropped acks force replays) into the front end,
while a :class:`WorkerKiller` SIGKILLs workers mid-campaign and the
supervisor fails the shards over.  The gates:

* every driven check-in is eventually acked (clients retry through it),
* the front end returns **zero** internal errors,
* replays are suppressed exactly-once (``duplicates_suppressed > 0``
  and the dedupe ledger answers replays with the original ack),
* each shard's final durable parameters are **bit-identical** to an
  uninterrupted in-process reference fed the same messages in the same
  order.
"""

import numpy as np
import pytest

from repro.core.auth import DeviceRegistry
from repro.core.protocol import CheckinMessage
from repro.persist import FaultyProxy, SnapshotStore, WorkerKiller, restore_core
from repro.serve.client import ServiceClient
from repro.shard import ShardFrontEnd, ShardRouter

from tests.persist.conftest import CLASSES, make_model
from tests.shard.conftest import SERVER_KEY, make_core, start_supervised_tier

NUM_SHARDS = 3
DEVICES = list(range(6))
ROUNDS = 5
KILL_EVERY = 8
MAX_KILLS = 2
NUM_PARAMETERS = make_model().num_parameters


def build_message(device_id: int, token: str, seq: int,
                  rng: np.random.Generator) -> CheckinMessage:
    """Deterministic traffic; checkout_iteration pinned so the reference
    replay constructs byte-identical messages."""
    return CheckinMessage(
        device_id=device_id,
        token=token,
        gradient=rng.normal(size=NUM_PARAMETERS),
        num_samples=int(rng.integers(1, 6)),
        noisy_error_count=int(rng.integers(0, 4)),
        noisy_label_counts=rng.integers(0, 5, size=CLASSES),
        checkout_iteration=0,
        checkin_seq=seq,
    )


@pytest.mark.slow
def test_failover_campaign_keeps_each_shard_bit_identical(tmp_path):
    supervisor = start_supervised_tier(tmp_path, num_shards=NUM_SHARDS)
    router = ShardRouter(NUM_SHARDS)
    frontend = ShardFrontEnd(router, supervisor).start()
    proxy = FaultyProxy(frontend.url, seed=7, drop_response=0.2).start()
    killer = WorkerKiller(supervisor, every=KILL_EVERY, seed=3,
                          max_kills=MAX_KILLS)
    client = ServiceClient(proxy.url, timeout=15.0, retries=16,
                           backoff=0.02, backoff_max=0.5,
                           retry_rng=20260808)
    reference_registry = make_core(
        registry=DeviceRegistry(server_key=SERVER_KEY)
    )
    sent = []  # (device_id, message) in ack order — the replay script
    try:
        tokens = {}
        for device_id in DEVICES:
            tokens[device_id] = client.join(device_id)
            assert tokens[device_id] == reference_registry.register_device(device_id)

        rng = np.random.default_rng(20260808)
        for round_index in range(ROUNDS):
            for device_id in DEVICES:
                message = build_message(
                    device_id, tokens[device_id], seq=round_index, rng=rng
                )
                result = client.checkins([message])
                assert result.acks[0] is not None, (
                    f"round {round_index} device {device_id} never acked"
                )
                sent.append((device_id, message))
                killer.after_batch()

        # The campaign actually injected chaos.
        assert killer.kills == MAX_KILLS, killer.killed_shards
        assert proxy.stats()["responses_dropped"] > 0

        # Deterministic replay probe: re-send an already-applied message;
        # the ledger must answer with the original ack, not re-apply.
        probe_device, probe_message = sent[-1]
        replay = client.checkins([probe_message])
        assert replay.acks[0] is not None
        assert replay.acks[0].duplicate is True
        replayed_ack_iteration = replay.acks[0].server_iteration

        status = client.status()
        assert status.duplicates_suppressed > 0
        total_iterations = status.iteration

        # Zero unhandled server errors at the front end: retryable 503s
        # during failover windows are fine, 500s are not.
        assert frontend.errors_returned.get("internal", 0) == 0
    finally:
        proxy.stop()
        frontend.stop()
        exit_codes = supervisor.stop(graceful=True)

    assert all(code == 0 for code in exit_codes.values()), exit_codes

    # -- per-shard bit-parity against an uninterrupted reference -------- #
    references = {}
    for shard in range(NUM_SHARDS):
        core = make_core(registry=DeviceRegistry(server_key=SERVER_KEY))
        for device_id in DEVICES:
            if router.shard_of(device_id) == shard:
                core.register_device(device_id)
        references[shard] = core
    for device_id, message in sent:
        references[router.shard_of(device_id)].handle_checkins([message])

    assert sum(core.iteration for core in references.values()) == len(sent)
    assert total_iterations == len(sent)  # exactly-once despite the chaos

    probe_shard = router.shard_of(probe_device)
    probe_ledger = references[probe_shard].counters_state()["applied_seqs"]
    assert replayed_ack_iteration == probe_ledger[str(probe_device)][1]

    for shard in range(NUM_SHARDS):
        store = SnapshotStore(str(tmp_path / f"shard-{shard}"))
        snapshot, _ = store.load_latest()
        restored = restore_core(snapshot, make_model())
        reference = references[shard]
        assert restored.iteration == reference.iteration, f"shard {shard}"
        np.testing.assert_array_equal(
            restored.parameters, reference.parameters,
            err_msg=f"shard {shard} diverged from the uninterrupted run",
        )
        assert (restored.counters_state()["applied_seqs"]
                == reference.counters_state()["applied_seqs"]), f"shard {shard}"
