"""Front-end ``/v1/metrics``: per-shard scrapes merge into one document."""

import json
import urllib.request

import pytest

from repro.core.auth import DeviceRegistry
from repro.obs.metrics import MetricsRegistry
from repro.serve.client import ServiceClient
from repro.serve.service import CrowdService
from repro.shard import ShardFrontEnd, ShardRouter, StaticEndpoints

from tests.persist.conftest import make_message, traffic_rng  # noqa: F401
from tests.shard.conftest import SERVER_KEY, make_core, owned_devices


class ObservedTier:
    """Two observed CrowdService workers behind an observed front end."""

    def __init__(self, num_shards=2):
        self.router = ShardRouter(num_shards)
        self.registries = [
            MetricsRegistry(f"worker-{shard}") for shard in range(num_shards)
        ]
        self.services = [
            CrowdService(
                make_core(registry=DeviceRegistry(server_key=SERVER_KEY)),
                port=0, shard_epoch=0, metrics=registry,
            ).start()
            for registry in self.registries
        ]
        self.endpoints = StaticEndpoints({
            shard: (service.url, 0)
            for shard, service in enumerate(self.services)
        })
        self.frontend_registry = MetricsRegistry("frontend")
        self.frontend = ShardFrontEnd(
            self.router, self.endpoints, metrics=self.frontend_registry
        ).start()

    def close(self):
        self.frontend.stop()
        for service in self.services:
            service.stop()


@pytest.fixture
def observed_tier():
    tier = ObservedTier()
    yield tier
    tier.close()


def drive(tier, rng, per_shard=3):
    client = ServiceClient(tier.frontend.url)
    for shard in range(2):
        device = owned_devices(tier.router, shard)[0]
        token = client.join(device)
        for _ in range(per_shard):
            core = tier.services[shard].core
            client.checkins([make_message(core, device, token, rng)])
    client.status()
    # Workers ack before recording their counters; quiesce so the next
    # scrape sees every series at its final value.
    for service in tier.services:
        assert service.drain()
    return client


def scrape(url, fmt="json"):
    with urllib.request.urlopen(f"{url}/v1/metrics?format={fmt}") as response:
        body = response.read()
    return json.loads(body) if fmt == "json" else body.decode()


class TestFrontEndAggregation:
    def test_merged_scrape_has_per_shard_series(self, observed_tier, traffic_rng):
        drive(observed_tier, traffic_rng)
        merged = scrape(observed_tier.frontend.url)
        assert merged["enabled"] is True
        batches = {
            c["labels"].get("shard"): c["value"]
            for c in merged["counters"]
            if c["name"] == "core_checkin_batches_total"
        }
        assert batches == {"0": 3, "1": 3}
        # Front-end-side series ride along in the same document.
        frontend_counts = {
            c["labels"].get("endpoint"): c["value"]
            for c in merged["counters"]
            if c["name"] == "frontend_requests_total" and c["value"]
        }
        assert frontend_counts.get("checkins") == 6

    def test_merged_histograms_add_bucketwise(self, observed_tier, traffic_rng):
        drive(observed_tier, traffic_rng)
        merged = scrape(observed_tier.frontend.url)
        per_shard = [
            h for h in merged["histograms"]
            if h["name"] == "service_request_seconds"
            and h["labels"].get("endpoint") == "checkins"
        ]
        assert {h["labels"]["shard"] for h in per_shard} == {"0", "1"}
        for hist in per_shard:
            assert hist["count"] == 3
            assert hist["cumulative"][-1] <= hist["count"]

    def test_prometheus_text_from_frontend(self, observed_tier, traffic_rng):
        drive(observed_tier, traffic_rng)
        text = scrape(observed_tier.frontend.url, fmt="text")
        assert 'core_checkin_batches_total{shard="0"} 3' in text
        assert 'core_checkin_batches_total{shard="1"} 3' in text
        assert "# TYPE frontend_request_seconds histogram" in text

    def test_scrape_counts_and_skips_dead_worker(self, observed_tier, traffic_rng):
        drive(observed_tier, traffic_rng)
        observed_tier.services[1].stop()
        scrape(observed_tier.frontend.url)  # failure recorded during this one
        # The frontend's own registry is snapshotted before the worker
        # scrapes, so the failure counter lands in the *next* document.
        merged = scrape(observed_tier.frontend.url)
        shards_present = {
            c["labels"].get("shard")
            for c in merged["counters"]
            if c["name"] == "core_checkin_batches_total"
        }
        assert shards_present == {"0"}
        failures = [
            c["value"] for c in merged["counters"]
            if c["name"] == "frontend_metrics_scrape_failures_total"
        ]
        assert failures and failures[0] >= 1

    def test_aggregated_status_rows_carry_uptime_and_pid(
        self, observed_tier, traffic_rng
    ):
        drive(observed_tier, traffic_rng)
        with urllib.request.urlopen(
            observed_tier.frontend.url + "/v1/status"
        ) as response:
            status = json.loads(response.read())["body"]
        assert status["uptime_seconds"] >= 0.0
        assert status["pid"] > 0
        assert len(status["shards"]) == 2
        for row in status["shards"]:
            assert row["uptime_seconds"] >= 0.0
            assert row["pid"] > 0


class TestDisabledFrontEnd:
    def test_disabled_frontend_still_merges_enabled_workers(self, traffic_rng):
        tier = ObservedTier()
        try:
            # Swap in a front end with no registry of its own.
            tier.frontend.stop()
            tier.frontend = ShardFrontEnd(tier.router, tier.endpoints).start()
            drive(tier, traffic_rng)
            merged = scrape(tier.frontend.url)
            assert merged["enabled"] is True  # worker scrapes were live
            assert any(
                c["name"] == "core_checkin_batches_total"
                for c in merged["counters"]
            )
        finally:
            tier.close()
