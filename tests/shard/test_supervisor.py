"""ShardSupervisor over real worker processes: health, failover, fencing.

These tests spawn actual ``repro-serve`` subprocesses and kill/wedge
them; timings use the conftest's tight health intervals so a failover
completes in a couple of seconds.
"""

import time

import pytest

from repro.persist import SnapshotStore
from repro.serve.client import RemoteServiceError, ServiceClient

from tests.shard.conftest import make_client, start_supervised_tier


def wait_until(predicate, timeout: float = 20.0, interval: float = 0.1):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


@pytest.fixture
def tier2(tmp_path):
    supervisor = start_supervised_tier(tmp_path, num_shards=2)
    yield supervisor
    supervisor.stop(graceful=False)


class TestStartup:
    def test_every_shard_routed_at_epoch_zero(self, tier2):
        endpoints = tier2.endpoints()
        assert sorted(endpoints) == [0, 1]
        for shard, (url, epoch) in endpoints.items():
            assert epoch == 0
            status = ServiceClient(url, timeout=10.0).status()
            assert status.epoch == 0

    def test_fence_files_match(self, tier2, tmp_path):
        for shard in (0, 1):
            store = SnapshotStore(str(tmp_path / f"shard-{shard}"))
            assert store.fence_epoch() == 0

    def test_graceful_stop_is_clean(self, tmp_path):
        supervisor = start_supervised_tier(tmp_path, num_shards=2)
        codes = supervisor.stop(graceful=True)
        assert codes == {0: 0, 1: 0}


class TestCrashFailover:
    def test_sigkill_respawns_at_next_epoch(self, tier2, tmp_path):
        old_url, old_epoch = tier2.endpoints()[0]
        tier2.workers[0].sigkill()
        assert wait_until(
            lambda: tier2.endpoints().get(0, (None, -1))[1] == old_epoch + 1
        ), f"no failover: {tier2.stats()}"
        new_url, new_epoch = tier2.endpoints()[0]
        assert new_epoch == 1
        # The replacement answers, stamped with the new epoch.
        assert make_client(new_url).status().epoch == 1
        stats = tier2.stats()
        assert stats["failovers"] == 1
        assert stats["process_exit_failovers"] == 1
        assert SnapshotStore(str(tmp_path / "shard-0")).fence_epoch() == 1

    def test_untouched_shard_unaffected(self, tier2):
        sibling_url, _ = tier2.endpoints()[1]
        tier2.workers[0].sigkill()
        assert wait_until(lambda: 0 in tier2.endpoints()
                          and tier2.endpoints()[0][1] == 1)
        assert tier2.endpoints()[1][0] == sibling_url
        assert tier2.workers[1].spawns == 1


class TestZombieFencing:
    @pytest.fixture
    def zombie_tier(self, tmp_path):
        # kill_zombies=False: the wedged incarnation is left running so
        # refusal — not the kill — is what protects the shard.  Devices
        # 0..3 are pre-registered (a zombie's *join* would also be
        # refused, since registrations checkpoint too — here the
        # check-in path is the one under test).
        supervisor = start_supervised_tier(
            tmp_path, num_shards=2, kill_zombies=False,
            heartbeat_timeout=0.5, extra=("--register", "4"),
        )
        yield supervisor
        supervisor.stop(graceful=False)

    def test_wedged_worker_fails_over_to_sibling_and_is_fenced(
        self, zombie_tier, tmp_path
    ):
        zombie_url, _ = zombie_tier.endpoints()[0]
        zombie_tier.workers[0].suspend()  # SIGSTOP: alive but silent
        assert wait_until(
            lambda: zombie_tier.endpoints().get(0, (None, -1))[1] == 1,
            timeout=30.0,
        ), f"no heartbeat failover: {zombie_tier.stats()}"
        stats = zombie_tier.stats()
        assert stats["heartbeat_failovers"] >= 1
        # The zombie still holds its socket, so the shard landed on a
        # sibling slot at a fresh address.
        new_url, _ = zombie_tier.endpoints()[0]
        assert new_url != zombie_url
        assert stats["sibling_failovers"] >= 1
        assert zombie_tier.workers[0].orphans  # disowned, not killed

        # The zombie wakes up... and its late writes are refused: a
        # check-in that must checkpoint write-ahead fails instead of
        # forking the shard's durable state.
        assert zombie_tier.workers[0].wake_orphans() == 1
        zombie = ServiceClient(zombie_url, timeout=10.0)
        assert zombie.status().epoch == 0  # stale stamp, refusable upstream
        from repro.core.auth import DeviceRegistry
        from tests.shard.conftest import SERVER_KEY, make_core, make_message
        import numpy as np

        reference = make_core(registry=DeviceRegistry(server_key=SERVER_KEY))
        token = reference.register_device(0)  # device 0 is shard 0's
        message = make_message(
            reference, 0, token, np.random.default_rng(0), seq=0
        )
        with pytest.raises(RemoteServiceError) as excinfo:
            zombie.checkins([message])
        assert excinfo.value.http_status == 500  # fenced write → internal

        # Meanwhile the current incarnation serves the shard normally.
        replacement = make_client(zombie_tier.endpoints()[0][0])
        assert replacement.status().epoch == 1
