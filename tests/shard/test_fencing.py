"""Epoch fencing on the SnapshotStore: the zombie-write firewall."""

import json
import os

import pytest

from repro.persist import FencedWriteError, SnapshotStore, snapshot_core
from repro.serve.cli import build_parser, build_service
from repro.utils.exceptions import ReproError

from tests.shard.conftest import make_core


def snapshot(iteration: int = 0) -> dict:
    snap = snapshot_core(make_core())
    snap["optimizer"]["iteration"] = iteration
    return snap


class TestFenceFile:
    def test_unfenced_dir_reads_minus_one(self, tmp_path):
        assert SnapshotStore(str(tmp_path)).fence_epoch() == -1

    def test_advance_is_monotonic(self, tmp_path):
        store = SnapshotStore(str(tmp_path))
        assert [store.advance_fence() for _ in range(3)] == [0, 1, 2]
        assert store.fence_epoch() == 2

    def test_garbled_fence_reads_minus_one(self, tmp_path):
        store = SnapshotStore(str(tmp_path))
        (tmp_path / "epoch.json").write_text("{not json")
        assert store.fence_epoch() == -1
        (tmp_path / "epoch.json").write_text('{"epoch": "nope"}')
        assert store.fence_epoch() == -1

    def test_bad_epoch_argument(self, tmp_path):
        with pytest.raises(ValueError):
            SnapshotStore(str(tmp_path), epoch=-2)


class TestFencedWrites:
    def test_fenced_store_stamps_payload_epoch(self, tmp_path):
        store = SnapshotStore(str(tmp_path), epoch=3)
        path = store.write(snapshot())
        payload = json.loads(open(path).read())
        assert payload["epoch"] == 3
        # The stamp lives outside the checksummed body: the snapshot
        # itself stays bit-comparable across incarnations.
        assert "epoch" not in payload["snapshot"]

    def test_unfenced_store_omits_epoch(self, tmp_path):
        path = SnapshotStore(str(tmp_path)).write(snapshot())
        assert "epoch" not in json.loads(open(path).read())

    def test_write_at_current_epoch_allowed(self, tmp_path):
        fence = SnapshotStore(str(tmp_path)).advance_fence()
        store = SnapshotStore(str(tmp_path), epoch=fence)
        store.write(snapshot())  # does not raise

    def test_write_refused_once_fence_passes(self, tmp_path):
        setup = SnapshotStore(str(tmp_path))
        epoch = setup.advance_fence()
        zombie = SnapshotStore(str(tmp_path), epoch=epoch)
        zombie.write(snapshot(1))
        setup.advance_fence()  # the supervisor fences the takeover
        with pytest.raises(FencedWriteError, match="fenced at epoch"):
            zombie.write(snapshot(2))
        # The refused write left nothing behind.
        newest, _ = zombie.load_latest()
        assert newest["optimizer"]["iteration"] == 1

    def test_unfenced_writer_ignores_fence(self, tmp_path):
        # epoch=None is the single-process mode; a fence file present in
        # the dir (e.g. copied state) must not brick it.
        SnapshotStore(str(tmp_path)).advance_fence()
        SnapshotStore(str(tmp_path)).write(snapshot())

    def test_reads_never_fenced(self, tmp_path):
        store = SnapshotStore(str(tmp_path), epoch=0)
        store.write(snapshot(5))
        SnapshotStore(str(tmp_path)).advance_fence()
        snap, _ = store.load_latest()  # fenced writer may still read
        assert snap["optimizer"]["iteration"] == 5


class TestWorkerStartupFence:
    def args(self, tmp_path, epoch: int):
        return build_parser().parse_args([
            "--num-features", "4", "--num-classes", "3", "--port", "0",
            "--state-dir", str(tmp_path),
            "--shard-index", "0", "--shard-count", "2",
            "--shard-epoch", str(epoch),
        ])

    def test_superseded_incarnation_refuses_to_start(self, tmp_path):
        store = SnapshotStore(str(tmp_path))
        store.advance_fence()
        store.advance_fence()  # fence now 1
        with pytest.raises(ReproError, match="superseded"):
            build_service(self.args(tmp_path, epoch=0))

    def test_current_incarnation_starts(self, tmp_path):
        epoch = SnapshotStore(str(tmp_path)).advance_fence()
        service = build_service(self.args(tmp_path, epoch=epoch))
        try:
            assert service.core is not None
        finally:
            service.stop()

    def test_bad_shard_index_rejected(self, tmp_path):
        args = build_parser().parse_args([
            "--num-features", "4", "--num-classes", "3", "--port", "0",
            "--shard-index", "3", "--shard-count", "2",
        ])
        with pytest.raises(ReproError, match="shard-index"):
            build_service(args)
