"""ShardFrontEnd against in-process CrowdService workers.

Everything here runs on loopback threads: routing, split/merge of mixed
batches, status aggregation, and the unavailable/stale-epoch refusals.
Process-death failover lives in ``test_supervisor`` and the campaign.
"""

import numpy as np
import pytest

from repro.core.auth import DeviceRegistry
from repro.serve import wire
from repro.serve.client import RemoteServiceError, ServiceClient
from repro.serve.service import CrowdService
from repro.shard import ShardFrontEnd, ShardRouter, StaticEndpoints

from tests.shard.conftest import (
    SERVER_KEY,
    InProcessTier,
    make_core,
    make_message,
    owned_devices,
    tier,  # noqa: F401  (fixture)
    traffic_rng,  # noqa: F401  (fixture)
)


def fast_client(url: str) -> ServiceClient:
    return ServiceClient(url, timeout=10.0, retries=0)


def join_all(client, device_ids):
    return {d: client.join(d) for d in device_ids}


class TestRouting:
    def test_join_lands_on_owning_shard(self, tier):
        client = fast_client(tier.frontend.url)
        per_shard = [owned_devices(tier.router, k)[:2] for k in (0, 1)]
        reference = make_core(registry=DeviceRegistry(server_key=SERVER_KEY))
        for devices in per_shard:
            for device_id in devices:
                # Same token a direct worker join would mint.
                assert client.join(device_id) == reference.register_device(device_id)
        for shard, devices in enumerate(per_shard):
            status = wire.decode_status(
                client.call_raw("GET", f"/v1/status?shard={shard}")
            )
            assert status.registered_devices == len(devices)

    def test_checkout_and_checkin_roundtrip(self, tier, traffic_rng):
        client = fast_client(tier.frontend.url)
        device_id = owned_devices(tier.router, 1)[0]
        token = client.join(device_id)
        from repro.core.protocol import CheckoutRequest

        out = client.checkout(CheckoutRequest(
            device_id=device_id, token=token, request_time=0.0
        ))
        assert out.parameters.shape == tier.cores[1].parameters.shape
        message = make_message(tier.cores[1], device_id, token, traffic_rng, seq=0)
        result = client.checkins([message])
        assert result.acks[0] is not None
        assert result.acks[0].device_id == device_id
        assert tier.cores[1].iteration == 1
        assert tier.cores[0].iteration == 0
        # Single-shard batch rode the verbatim fast path.
        assert tier.frontend.split_batches == 0
        # The worker's epoch stamp survives the passthrough.
        assert result.epoch == tier.epochs[1]


class TestMixedBatch:
    def test_split_merge_preserves_order(self, tier, traffic_rng):
        client = fast_client(tier.frontend.url)
        devices = owned_devices(tier.router, 0)[:2] + owned_devices(tier.router, 1)[:2]
        devices = [devices[0], devices[2], devices[1], devices[3]]  # interleave
        tokens = join_all(client, devices)
        messages = [
            make_message(tier.cores[tier.router.shard_of(d)], d, tokens[d],
                         traffic_rng, seq=0)
            for d in devices
        ]
        result = client.checkins(messages)
        assert tier.frontend.split_batches == 1
        assert [ack.device_id for ack in result.acks] == devices
        assert all(ack is not None for ack in result.acks)
        # Merged iteration is the tier total (2 updates per shard).
        assert result.server_iteration == (
            tier.cores[0].iteration + tier.cores[1].iteration
        ) == 4
        assert result.stopped is False

    def test_stopped_shard_refuses_only_its_half(self, traffic_rng):
        # Shard 0 stops after one update; shard 1 keeps running.
        router = ShardRouter(2)
        cores = [
            make_core(max_iterations=1,
                      registry=DeviceRegistry(server_key=SERVER_KEY)),
            make_core(registry=DeviceRegistry(server_key=SERVER_KEY)),
        ]
        services = [CrowdService(core, port=0).start() for core in cores]
        frontend = ShardFrontEnd(router, StaticEndpoints({
            0: services[0].url, 1: services[1].url,
        })).start()
        try:
            client = fast_client(frontend.url)
            d0 = owned_devices(router, 0)[0]
            d1 = owned_devices(router, 1)[0]
            tokens = join_all(client, [d0, d1])
            first = client.checkins([
                make_message(cores[0], d0, tokens[d0], traffic_rng, seq=0),
                make_message(cores[1], d1, tokens[d1], traffic_rng, seq=0),
            ])
            assert all(ack is not None for ack in first.acks)
            assert cores[0].stopped  # max_iterations=1 reached
            second = client.checkins([
                make_message(cores[0], d0, tokens[d0], traffic_rng, seq=1),
                make_message(cores[1], d1, tokens[d1], traffic_rng, seq=1),
            ])
            assert second.acks[0] is None  # stopped shard's half
            assert second.acks[1] is not None
            assert second.stopped is False  # shard 1 still live
            assert second.stop_reason == "running"
        finally:
            frontend.stop()
            for service in services:
                service.stop()


class TestStatus:
    def test_aggregated_counters_sum(self, tier, traffic_rng):
        client = fast_client(tier.frontend.url)
        devices = owned_devices(tier.router, 0)[:1] + owned_devices(tier.router, 1)[:2]
        tokens = join_all(client, devices)
        client.checkins([
            make_message(tier.cores[tier.router.shard_of(d)], d, tokens[d],
                         traffic_rng, seq=0)
            for d in devices
        ])
        status = client.status()
        assert status.iteration == 3
        assert status.registered_devices == 3
        assert status.stopped is False
        assert status.shards is not None and len(status.shards) == 2
        assert [row["shard"] for row in status.shards] == [0, 1]
        assert all(row["epoch"] == tier.epochs[row["shard"]]
                   for row in status.shards)

    def test_per_shard_passthrough_with_parameters(self, tier):
        client = fast_client(tier.frontend.url)
        status = wire.decode_status(
            client.call_raw("GET", "/v1/status?shard=0&parameters=1")
        )
        assert status.parameters is not None
        np.testing.assert_array_equal(status.parameters, tier.cores[0].parameters)

    def test_parameters_without_shard_rejected(self, tier):
        client = fast_client(tier.frontend.url)
        with pytest.raises(RemoteServiceError) as excinfo:
            client.call_raw("GET", "/v1/status?parameters=1")
        assert excinfo.value.code == wire.ErrorCode.MALFORMED

    def test_unknown_shard_rejected(self, tier):
        client = fast_client(tier.frontend.url)
        with pytest.raises(RemoteServiceError) as excinfo:
            client.call_raw("GET", "/v1/status?shard=9")
        assert excinfo.value.code == wire.ErrorCode.NOT_FOUND


class TestRefusals:
    def test_unrouted_shard_answers_retryable_503(self, tier):
        client = fast_client(tier.frontend.url)
        device_id = owned_devices(tier.router, 0)[0]
        tier.endpoints.set(0, None)
        with pytest.raises(RemoteServiceError) as excinfo:
            client.join(device_id)
        assert excinfo.value.code == wire.ErrorCode.UNAVAILABLE
        assert excinfo.value.http_status == 503
        # Retryable by contract: a client with retries would ride it out.
        other = owned_devices(tier.router, 1)[0]
        assert client.join(other)  # the live shard still serves

    def test_stale_epoch_answer_refused(self, tier, traffic_rng):
        client = fast_client(tier.frontend.url)
        device_id = owned_devices(tier.router, 0)[0]
        token = client.join(device_id)
        # Simulate a completed failover the worker missed: the table
        # says epoch 5, the (zombie) worker still answers epoch 0.
        tier.endpoints.set(0, tier.services[0].url, epoch=5)
        with pytest.raises(RemoteServiceError) as excinfo:
            client.checkins([
                make_message(tier.cores[0], device_id, token, traffic_rng, seq=0)
            ])
        assert excinfo.value.code == wire.ErrorCode.UNAVAILABLE
        assert tier.frontend.stale_epoch_rejections == 1

    def test_worker_error_counts_are_tracked(self, tier):
        client = fast_client(tier.frontend.url)
        tier.endpoints.set(1, None)
        with pytest.raises(RemoteServiceError):
            client.join(owned_devices(tier.router, 1)[0])
        assert tier.frontend.errors_returned.get(wire.ErrorCode.UNAVAILABLE) == 1
        assert tier.frontend.total_errors == 1
