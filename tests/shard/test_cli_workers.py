"""``repro-serve --workers N``: the CLI front door of the sharded tier."""

import os
import signal
import subprocess
import sys

import pytest

from repro.serve.cli import main

from tests.shard.conftest import DIM, CLASSES, make_client, serve_env


class TestArgValidation:
    def test_workers_requires_state_dir(self, capsys):
        assert main([
            "--num-features", "4", "--num-classes", "3", "--workers", "2",
        ]) == 2
        assert "--state-dir" in capsys.readouterr().err

    def test_workers_excludes_shard_index(self, tmp_path, capsys):
        assert main([
            "--num-features", "4", "--num-classes", "3", "--workers", "2",
            "--state-dir", str(tmp_path), "--shard-index", "0",
        ]) == 2
        assert "mutually exclusive" in capsys.readouterr().err


@pytest.mark.slow
def test_sharded_cli_tier_serves_and_shuts_down_cleanly(tmp_path):
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.serve.cli",
         "--num-features", str(DIM), "--num-classes", str(CLASSES),
         "--learning-rate-constant", "0.5", "--projection-radius", "10.0",
         "--port", "0", "--workers", "2", "--state-dir", str(tmp_path)],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True, env=serve_env(),
    )
    try:
        announce = process.stdout.readline()
        assert announce.startswith("serving on ")
        url = announce.split("serving on ", 1)[1].strip()
        banner = process.stdout.readline()
        assert "sharded tier: 2 workers" in banner

        client = make_client(url)
        token = client.join(0)
        assert token
        status = client.status()
        assert status.registered_devices == 1
        assert status.shards is not None and len(status.shards) == 2

        # Per-shard state landed in shard-<k>/ subdirs.
        assert sorted(
            name for name in os.listdir(tmp_path) if name.startswith("shard-")
        ) == ["shard-0", "shard-1"]
        assert (tmp_path / "shard-0" / "epoch.json").is_file()

        process.send_signal(signal.SIGTERM)
        assert process.wait(timeout=60) == 0
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=30)
