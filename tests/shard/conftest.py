"""Shared builders for the sharded-serving tests.

Two tiers are built here:

* an **in-process** tier — real :class:`CrowdService` workers on
  loopback threads behind a :class:`ShardFrontEnd` with
  :class:`StaticEndpoints` — fast enough for routing/merge/epoch tests;
* a **subprocess** tier — real ``repro-serve`` workers under a
  :class:`ShardSupervisor` — for failover and campaign tests, where the
  deaths must be real process deaths.

The task is the persist suite's tiny fixed one (d=4, C=3, paper SGD at
lr-constant 0.5, radius 10), so per-shard reference cores built with
``tests.persist.conftest.make_core`` are bit-comparable with worker
state.
"""

from __future__ import annotations

import os

import pytest

from repro.core.auth import DeviceRegistry
from repro.serve.client import ServiceClient
from repro.serve.service import CrowdService
from repro.shard import ShardFrontEnd, ShardRouter, ShardSupervisor, ShardWorker, StaticEndpoints

from tests.persist.conftest import DIM, CLASSES, make_core, make_message  # noqa: F401
from tests.persist.conftest import traffic_rng  # noqa: F401

SERVER_KEY = "shard-test-key"


def serve_env() -> dict:
    env = dict(os.environ)
    repo_src = os.path.join(
        os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
        "src",
    )
    env["PYTHONPATH"] = repo_src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def worker_base_args(shard_index: int, shard_count: int,
                     extra=()) -> list:
    """``repro-serve`` worker-mode args for the tiny fixed task."""
    return [
        "--num-features", str(DIM),
        "--num-classes", str(CLASSES),
        "--learning-rate-constant", "0.5",
        "--projection-radius", "10.0",
        "--server-key", SERVER_KEY,
        "--checkpoint-every", "1",
        "--shard-index", str(shard_index),
        "--shard-count", str(shard_count),
        *extra,
    ]


def make_workers(state_dir, num_shards: int, extra=()) -> list:
    return [
        ShardWorker(
            shard,
            os.path.join(str(state_dir), f"shard-{shard}"),
            worker_base_args(shard, num_shards, extra=extra),
            env=serve_env(),
        )
        for shard in range(num_shards)
    ]


def owned_devices(router: ShardRouter, shard: int, universe=range(32)) -> list:
    """Device ids from ``universe`` the router assigns to ``shard``."""
    return [d for d in universe if router.shard_of(d) == shard]


def make_client(url: str, **kwargs) -> ServiceClient:
    kwargs.setdefault("timeout", 15.0)
    kwargs.setdefault("retries", 8)
    kwargs.setdefault("backoff", 0.02)
    kwargs.setdefault("backoff_max", 0.2)
    return ServiceClient(url, **kwargs)


class InProcessTier:
    """N CrowdService workers + front end, all on loopback threads."""

    def __init__(self, num_shards: int = 2, epochs=None, **frontend_kwargs):
        self.router = ShardRouter(num_shards)
        self.cores = [make_core(registry=DeviceRegistry(server_key=SERVER_KEY))
                      for _ in range(num_shards)]
        self.epochs = list(epochs) if epochs is not None else [0] * num_shards
        self.services = [
            CrowdService(core, port=0, shard_epoch=epoch).start()
            for core, epoch in zip(self.cores, self.epochs)
        ]
        self.endpoints = StaticEndpoints({
            shard: (service.url, epoch)
            for shard, (service, epoch)
            in enumerate(zip(self.services, self.epochs))
        })
        self.frontend = ShardFrontEnd(
            self.router, self.endpoints, **frontend_kwargs
        ).start()

    def close(self):
        self.frontend.stop()
        for service in self.services:
            service.stop()


@pytest.fixture
def tier():
    built = InProcessTier(num_shards=2)
    yield built
    built.close()


def start_supervised_tier(state_dir, num_shards: int, extra=(), **kwargs):
    workers = make_workers(state_dir, num_shards, extra=extra)
    kwargs.setdefault("health_interval", 0.15)
    kwargs.setdefault("heartbeat_timeout", 1.0)
    kwargs.setdefault("heartbeat_misses", 2)
    supervisor = ShardSupervisor(workers, **kwargs)
    supervisor.start()
    return supervisor
