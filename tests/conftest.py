"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.models import MulticlassLogisticRegression


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for test randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_model() -> MulticlassLogisticRegression:
    """A tiny 3-class logistic model (D=4)."""
    return MulticlassLogisticRegression(num_features=4, num_classes=3)


@pytest.fixture
def small_dataset(rng) -> Dataset:
    """A small, linearly-structured 3-class dataset with ‖x‖₁ ≤ 1."""
    num = 90
    labels = np.arange(num) % 3
    centers = np.array(
        [
            [0.8, 0.1, 0.05, 0.05],
            [0.05, 0.8, 0.1, 0.05],
            [0.05, 0.1, 0.05, 0.8],
        ]
    )
    features = centers[labels] + rng.normal(0, 0.05, size=(num, 4))
    norms = np.sum(np.abs(features), axis=1, keepdims=True)
    features = features / np.maximum(norms, 1.0)
    return Dataset(features, labels.astype(np.int64), num_classes=3)
