"""EdgeGateway pre-splitting uplink batches per shard.

A shard-aware gateway sends one uplink batch per owning shard, so every
batch the front end receives is single-shard and takes its verbatim
passthrough path — the split happens once, at the edge.
"""

import pytest

from repro.gateway.edge import EdgeGateway

from tests.shard.conftest import (
    InProcessTier,
    make_client,
    make_message,
    owned_devices,
    traffic_rng,  # noqa: F401  (fixture)
)


@pytest.fixture
def tier():
    built = InProcessTier(num_shards=2)
    yield built
    built.close()


def test_mixed_flush_splits_per_shard(tier, traffic_rng):
    client = make_client(tier.frontend.url, retries=0)
    devices = owned_devices(tier.router, 0)[:2] + owned_devices(tier.router, 1)[:2]
    tokens = {d: client.join(d) for d in devices}
    gateway = EdgeGateway(client, flush_size=len(devices),
                          shard_router=tier.router)
    acks = {}
    for device_id in devices:
        message = make_message(
            tier.cores[tier.router.shard_of(device_id)],
            device_id, tokens[device_id], traffic_rng, seq=0,
        )
        gateway.add(message, on_ack=lambda ack, d=device_id: acks.__setitem__(d, ack))
    assert gateway.pending == 0  # flush_size trigger fired
    assert gateway.shard_splits == 1
    # The front end saw only single-shard batches: no split there.
    assert tier.frontend.split_batches == 0
    assert set(acks) == set(devices)
    assert all(ack is not None for ack in acks.values())
    assert tier.cores[0].iteration == 2
    assert tier.cores[1].iteration == 2
    # Merged last_result reflects the whole flush.
    assert gateway.last_result is not None
    assert gateway.last_result.server_iteration == 4
    assert gateway.last_result.stopped is False


def test_single_shard_flush_goes_whole(tier, traffic_rng):
    client = make_client(tier.frontend.url, retries=0)
    devices = owned_devices(tier.router, 0)[:2]
    tokens = {d: client.join(d) for d in devices}
    gateway = EdgeGateway(client, flush_size=2, shard_router=tier.router)
    for device_id in devices:
        gateway.add(make_message(
            tier.cores[0], device_id, tokens[device_id], traffic_rng, seq=0,
        ))
    assert gateway.shard_splits == 0  # one owning shard → one batch
    assert tier.cores[0].iteration == 2


def test_routerless_gateway_unchanged(tier, traffic_rng):
    # Default construction: no router, whole flush goes up as one batch
    # and the front end does the splitting.
    client = make_client(tier.frontend.url, retries=0)
    devices = owned_devices(tier.router, 0)[:1] + owned_devices(tier.router, 1)[:1]
    tokens = {d: client.join(d) for d in devices}
    gateway = EdgeGateway(client, flush_size=2)
    for device_id in devices:
        gateway.add(make_message(
            tier.cores[tier.router.shard_of(device_id)],
            device_id, tokens[device_id], traffic_rng, seq=0,
        ))
    assert gateway.shard_splits == 0
    assert tier.frontend.split_batches == 1
