"""Simulator integration for the gateway tier.

The headline contract: a **transparent** gateway tier (pass-through
flushing, zero delays, reliable hops) is bit-identical to no gateway at
all — pinned here both against a plain ``SimulatedTransport`` run and
against the recorded golden traces (no regeneration).  On top of that,
the tier's own behaviours: batching, deadline flushing, backhaul drops,
stall windows with capacity overflow, and the end-of-run drain.
"""

import numpy as np
import pytest

from repro.data import iid_partition, make_mnist_like
from repro.evaluation import assert_traces_identical
from repro.gateway import GatewayProfile, TwoTierTopology
from repro.models import MulticlassLogisticRegression
from repro.network.latency import LinkDelays
from repro.network.outage import BernoulliOutage
from repro.simulation import CrowdSimulator, SimulationConfig
from repro.utils.exceptions import ConfigurationError

from tests.simulation import _golden as golden_mod

CONFIG_CASES = golden_mod.make_config_cases()
#: The cases whose recorded traces a transparent gateway must reproduce:
#: everything without link delays or outages (those knobs are illegal in
#: gateway mode — per-hop properties live in the profiles instead).
ZERO_DELAY_CASES = sorted(
    name
    for name, overrides in CONFIG_CASES.items()
    if "link_delays" not in overrides and "outage" not in overrides
)

TRANSPARENT = TwoTierTopology(
    num_gateways=3, profile=GatewayProfile.pass_through()
)


def _make_checkin(device_id=0):
    from repro.core.protocol import CheckinMessage

    return CheckinMessage(
        device_id, "t", np.zeros(2), 1, 0.0, np.zeros(2, dtype=np.int64), 0
    )


@pytest.fixture(scope="module")
def data():
    return golden_mod.make_data()


@pytest.fixture(scope="module")
def small():
    train, test = make_mnist_like(num_train=120, num_test=30, seed=1)
    parts = iid_partition(train, 6, np.random.default_rng(1))
    return parts, test


def _run(parts, test, topo, seed=5, **config):
    simulator = CrowdSimulator(
        MulticlassLogisticRegression(50, 10), parts, test,
        SimulationConfig(num_devices=len(parts), gateways=topo, **config),
        seed=seed,
    )
    return simulator, simulator.run()


class TestGoldenParity:
    """Acceptance gate: zero-delay gateway configs reproduce the recorded
    golden traces exactly — the same file, no regeneration."""

    @pytest.mark.parametrize("name", ZERO_DELAY_CASES)
    def test_transparent_gateway_reproduces_golden(self, data, name):
        golden = golden_mod.load_golden()
        assert name in golden, f"golden trace missing for {name!r}"
        trace, _ = golden_mod.run_case(
            data, CONFIG_CASES[name], gateways=TRANSPARENT
        )
        problems = golden_mod.compare_fingerprint(
            name, golden_mod.trace_fingerprint(trace), golden[name]
        )
        assert not problems, "\n".join(problems)


class TestTransparentEquivalence:
    def test_trace_identical_to_plain_simulated(self, small):
        parts, test = small
        plain = CrowdSimulator(
            MulticlassLogisticRegression(50, 10), parts, test,
            SimulationConfig(num_devices=6, transport="simulated"),
            seed=5,
        ).run()
        for assignment in ("round_robin", "block", "hash"):
            topo = TwoTierTopology(
                num_gateways=3, assignment=assignment,
                profile=GatewayProfile.pass_through(),
            )
            _, gw = _run(parts, test, topo)
            assert_traces_identical(plain, gw, context=assignment)

    def test_bernoulli_device_outage_matches_plain_outage(self, small):
        """A Bernoulli edge-hop outage draws the device's network stream
        in exactly the plain transport's order, so the whole lossy run is
        bit-identical to ``outage=BernoulliOutage(p)`` without a tier."""
        parts, test = small
        p = 0.2
        plain = CrowdSimulator(
            MulticlassLogisticRegression(50, 10), parts, test,
            SimulationConfig(
                num_devices=6, transport="simulated",
                outage=BernoulliOutage(p),
            ),
            seed=5,
        ).run()
        topo = TwoTierTopology(
            num_gateways=2,
            profile=GatewayProfile(
                flush_size=1, device_outage=BernoulliOutage(p)
            ),
        )
        _, gw = _run(parts, test, topo)
        assert_traces_identical(plain, gw, context="bernoulli")


class TestBatching:
    def test_size_batching_consumes_everything(self, small):
        parts, test = small
        total = sum(len(p) for p in parts)
        topo = TwoTierTopology(
            num_gateways=2, profile=GatewayProfile(flush_size=8)
        )
        simulator, trace = _run(parts, test, topo)
        assert trace.total_samples_consumed == total
        assert simulator.gateway.pending_checkins == 0
        stats = [node.aggregator.stats for node in simulator.gateway.nodes]
        assert sum(s.messages_flushed for s in stats) == total
        assert max(s.largest_flush for s in stats) > 1

    def test_deadline_flush_unstrands_a_trickle(self, small):
        """flush_size far above the crowd's rate: only the deadline (and
        the final drain) moves check-ins upstream."""
        parts, test = small
        total = sum(len(p) for p in parts)
        topo = TwoTierTopology(
            num_gateways=2,
            profile=GatewayProfile(flush_size=10_000, flush_deadline=3.0),
        )
        simulator, trace = _run(parts, test, topo)
        assert trace.total_samples_consumed == total
        assert simulator.gateway.pending_checkins == 0
        stats = [node.aggregator.stats for node in simulator.gateway.nodes]
        assert sum(s.deadline_flushes for s in stats) > 0
        assert all(s.size_flushes == 0 for s in stats)

    def test_final_drain_flushes_without_any_deadline(self, small):
        """No deadline and an unreachable flush_size: the end-of-run drain
        is the only trigger, and nothing is stranded."""
        parts, test = small
        total = sum(len(p) for p in parts)
        topo = TwoTierTopology(
            num_gateways=3, profile=GatewayProfile(flush_size=10_000)
        )
        simulator, trace = _run(parts, test, topo)
        assert trace.total_samples_consumed == total
        assert simulator.gateway.pending_checkins == 0


class TestFailureModes:
    def test_backhaul_drop_loses_whole_batches(self, small):
        parts, test = small
        total = sum(len(p) for p in parts)
        topo = TwoTierTopology(
            num_gateways=2,
            profile=GatewayProfile(
                flush_size=4, server_outage=BernoulliOutage(0.5)
            ),
        )
        simulator, trace = _run(parts, test, topo)
        lost = simulator.gateway.checkins_lost
        assert lost > 0
        assert trace.total_samples_consumed < total
        # Lost batches land in the run's communication accounting.
        assert trace.communication.messages_dropped >= lost

    def test_stall_survives_a_full_run(self, small):
        """A mid-run backhaul stall delays but never loses check-ins: the
        run still consumes every sample (the devices' adaptive batching
        absorbs the held rounds into larger messages)."""
        parts, test = small
        total = sum(len(p) for p in parts)
        stalled = GatewayProfile(
            flush_size=4, stall_windows=((0.0, 50.0),)
        )
        topo = TwoTierTopology(
            num_gateways=2, profiles={0: stalled},
            profile=GatewayProfile(flush_size=4),
        )
        simulator, trace = _run(parts, test, topo)
        assert trace.total_samples_consumed == total
        assert simulator.gateway.pending_checkins == 0
        assert simulator.gateway.nodes[0].capacity_drops == 0


class TestStallGeometry:
    """Event-queue-level stall semantics, observed delivery by delivery."""

    def _tier(self, profile, num_devices=2):
        from repro.gateway.transport import GatewayTransport
        from repro.network.events import EventQueue
        from repro.utils.rng import RngFactory

        queue = EventQueue()
        deliveries = []
        transport = GatewayTransport(
            queue,
            TwoTierTopology(num_gateways=1, profiles={0: profile}),
            num_devices,
            lambda messages: deliveries.append((queue.now, len(messages))),
            RngFactory(0),
        )
        links = [
            transport.connect(d, np.random.default_rng(d))
            for d in range(num_devices)
        ]
        return queue, transport, links, deliveries

    def test_checkins_inside_a_stall_burst_at_release(self):
        profile = GatewayProfile(flush_size=2, stall_windows=((1.0, 10.0),))
        queue, transport, links, deliveries = self._tier(profile)

        def send(link):
            link.checkin.send(lambda *a: None, args=(None, _make_checkin()))

        for at, link in ((2.0, links[0]), (3.0, links[1]), (4.0, links[0])):
            queue.schedule(at, send, args=(link,))
        while queue.step():
            pass
        # Three check-ins pooled during the stall (past flush_size): no
        # delivery until the release, then one burst with all of them.
        assert deliveries == [(10.0, 3)]
        assert transport.pending_checkins == 0
        assert transport.nodes[0].capacity_drops == 0

    def test_capacity_overflow_during_stall_drops_at_the_edge(self):
        profile = GatewayProfile(
            flush_size=2, capacity=2, stall_windows=((1.0, 100.0),)
        )
        queue, transport, links, deliveries = self._tier(profile)

        def send(link):
            link.checkin.send(lambda *a: None, args=(None, _make_checkin()))

        for at in (2.0, 3.0, 4.0, 5.0):
            queue.schedule(at, send, args=(links[0],))
        while queue.step():
            pass
        node = transport.nodes[0]
        # Two fit the stalled buffer; the overflow died at the edge and
        # was charged to the originating device's check-in leg.
        assert node.capacity_drops == 2
        assert links[0].checkin.stats.messages_dropped == 2
        assert deliveries == [(100.0, 2)]


class TestConfigWiring:
    def test_gateway_mode_resolves_and_exposes_the_tier(self, small):
        parts, test = small
        config = SimulationConfig(num_devices=6, gateways=TRANSPARENT)
        assert config.resolved_transport() == "gateway"
        simulator = CrowdSimulator(
            MulticlassLogisticRegression(50, 10), parts, test, config, seed=0
        )
        assert simulator.gateway is not None
        assert len(simulator.gateway.nodes) == 3
        assert simulator.gateway.assignment.shape == (6,)
        assert not simulator.transport.synchronous

    def test_gateways_exclude_flat_link_knobs(self):
        with pytest.raises(ConfigurationError, match="gateway"):
            SimulationConfig(
                num_devices=4, gateways=TRANSPARENT,
                link_delays=LinkDelays.uniform(0.5),
            )
        with pytest.raises(ConfigurationError, match="gateway"):
            SimulationConfig(
                num_devices=4, gateways=TRANSPARENT,
                outage=BernoulliOutage(0.1),
            )

    def test_gateways_exclude_other_transports(self):
        for transport in ("direct", "http"):
            with pytest.raises(ConfigurationError, match="transport"):
                SimulationConfig(
                    num_devices=4, gateways=TRANSPARENT, transport=transport,
                )
