"""Unit tests for :class:`repro.gateway.aggregator.GatewayAggregator`.

The aggregator is the engine of the gateway tier: these tests pin the
trigger precedence (capacity > size > deadline), the custody contract on
upstream failure (the batched Remark 1), the ack-routing callbacks, and
the suspend/resume stall protocol — all against a manual clock, no event
queue or HTTP involved.
"""

import numpy as np
import pytest

from repro.core.protocol import CheckinAck, CheckinMessage
from repro.gateway import GatewayAggregator
from repro.utils.exceptions import ConfigurationError


def _msg(device_id=0):
    return CheckinMessage(
        device_id, "t", np.zeros(2), 1, 0.0, np.zeros(2, dtype=np.int64), 0
    )


def _ack(device_id=0):
    return CheckinAck(device_id=device_id, server_iteration=1)


class ManualClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class CollectingUpstream:
    """Synchronous upstream recording batches; acks one per message."""

    def __init__(self):
        self.batches = []

    def __call__(self, messages):
        self.batches.append(list(messages))
        return [_ack(m.device_id) for m in messages]


class TestSizeFlush:
    def test_flushes_exactly_at_threshold(self):
        upstream = CollectingUpstream()
        agg = GatewayAggregator(upstream, flush_size=3)
        assert agg.add(_msg(0)) is None
        assert agg.add(_msg(1)) is None
        acks = agg.add(_msg(2))
        assert [a.device_id for a in acks] == [0, 1, 2]
        assert [len(b) for b in upstream.batches] == [3]
        assert agg.pending == 0
        assert agg.stats.size_flushes == 1
        assert agg.stats.checkins_added == 3

    def test_acks_route_to_per_message_callbacks_in_order(self):
        agg = GatewayAggregator(CollectingUpstream(), flush_size=2)
        seen = []
        agg.add(_msg(7), on_ack=lambda a: seen.append(("first", a.device_id)))
        agg.add(_msg(8), on_ack=lambda a: seen.append(("second", a.device_id)))
        assert seen == [("first", 7), ("second", 8)]

    def test_async_upstream_returns_none(self):
        agg = GatewayAggregator(lambda ms: None, flush_size=2)
        agg.add(_msg())
        assert agg.add(_msg()) is None  # flushed, acks unknown
        assert agg.pending == 0
        assert agg.stats.flushes == 1

    def test_flush_on_empty_buffer_is_a_noop(self):
        upstream = CollectingUpstream()
        agg = GatewayAggregator(upstream, flush_size=4)
        assert agg.flush() == []
        assert upstream.batches == []
        assert agg.stats.flushes == 0


class TestDeadlineFlush:
    def test_deadline_arms_on_first_message_only(self):
        clock = ManualClock()
        agg = GatewayAggregator(
            CollectingUpstream(), flush_size=100, flush_deadline=5.0,
            clock=clock,
        )
        assert agg.deadline_at is None
        clock.now = 2.0
        agg.add(_msg())
        assert agg.deadline_at == 7.0
        clock.now = 4.0
        agg.add(_msg())  # later adds never extend the deadline
        assert agg.deadline_at == 7.0

    def test_flush_if_due_respects_the_deadline(self):
        clock = ManualClock()
        upstream = CollectingUpstream()
        agg = GatewayAggregator(
            upstream, flush_size=100, flush_deadline=5.0, clock=clock
        )
        agg.add(_msg())
        clock.now = 4.9
        assert agg.flush_if_due() is None
        clock.now = 5.0
        acks = agg.flush_if_due()
        assert len(acks) == 1
        assert agg.stats.deadline_flushes == 1
        assert agg.deadline_at is None  # disarmed by the flush

    def test_late_add_past_deadline_flushes_inline(self):
        clock = ManualClock()
        agg = GatewayAggregator(
            CollectingUpstream(), flush_size=100, flush_deadline=1.0,
            clock=clock,
        )
        agg.add(_msg())
        clock.now = 3.0
        acks = agg.add(_msg())
        assert len(acks) == 2
        assert agg.stats.deadline_flushes == 1


class TestCapacity:
    def test_capacity_bounds_batches_below_flush_size(self):
        upstream = CollectingUpstream()
        agg = GatewayAggregator(upstream, flush_size=10, capacity=3)
        for _ in range(7):
            agg.add(_msg())
        assert [len(b) for b in upstream.batches] == [3, 3]
        assert agg.pending == 1
        assert agg.stats.capacity_flushes == 2
        assert agg.stats.largest_flush == 3


class TestSuspendResume:
    def test_suspended_aggregator_buffers_past_every_trigger(self):
        clock = ManualClock()
        upstream = CollectingUpstream()
        agg = GatewayAggregator(
            upstream, flush_size=2, flush_deadline=1.0, clock=clock
        )
        agg.suspend()
        for _ in range(5):
            agg.add(_msg())
        clock.now = 10.0
        assert agg.flush_if_due() is None
        assert upstream.batches == []
        assert agg.pending == 5

    def test_resume_flushes_a_warranting_backlog(self):
        upstream = CollectingUpstream()
        agg = GatewayAggregator(upstream, flush_size=2)
        agg.suspend()
        agg.add(_msg())
        agg.add(_msg())
        agg.add(_msg())
        acks = agg.resume()
        assert len(acks) == 3
        assert not agg.suspended
        assert agg.stats.size_flushes == 1

    def test_resume_with_small_backlog_keeps_buffering(self):
        agg = GatewayAggregator(CollectingUpstream(), flush_size=5)
        agg.suspend()
        agg.add(_msg())
        assert agg.resume() is None
        assert agg.pending == 1


class TestUpstreamFailure:
    def test_failed_flush_keeps_custody_and_order(self):
        """The batched Remark 1: a raising upstream loses nothing, and the
        retried batch leads anything added in the meantime."""
        calls = {"n": 0}
        delivered = []

        def flaky(messages):
            calls["n"] += 1
            if calls["n"] == 1:
                raise OSError("synthetic blip")
            delivered.extend(m.device_id for m in messages)
            return [_ack(m.device_id) for m in messages]

        clock = ManualClock()
        agg = GatewayAggregator(
            flaky, flush_size=2, flush_deadline=4.0, clock=clock
        )
        seen = []
        agg.add(_msg(0), on_ack=lambda a: seen.append(a.device_id))
        with pytest.raises(OSError):
            agg.add(_msg(1), on_ack=lambda a: seen.append(a.device_id))
        assert agg.pending == 2  # both messages back in the buffer
        assert agg.deadline_at == 4.0  # deadline re-armed for the retry
        assert agg.stats.flushes == 0
        agg.add(_msg(2), on_ack=lambda a: seen.append(a.device_id))
        assert delivered == [0, 1, 2]  # original order, new add behind
        assert seen == [0, 1, 2]  # callbacks survived the failed flush


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"flush_size": 0},
            {"flush_deadline": -1.0},
            {"capacity": 0},
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            GatewayAggregator(lambda ms: None, **kwargs)

    def test_mean_flush_size(self):
        agg = GatewayAggregator(lambda ms: None, flush_size=2)
        assert agg.stats.mean_flush_size == 0.0
        for _ in range(4):
            agg.add(_msg())
        assert agg.stats.mean_flush_size == 2.0
