"""Unit tests for :mod:`repro.gateway.topology` and the assignment registry."""

import numpy as np
import pytest

from repro.gateway import GatewayProfile, TwoTierTopology
from repro.network.latency import LinkDelays
from repro.network.outage import BernoulliOutage, NoOutage, WindowedOutage
from repro.registry import GATEWAY_ASSIGNMENTS
from repro.utils.exceptions import ConfigurationError


class TestAssignmentPolicies:
    @pytest.mark.parametrize("name", ["round_robin", "block", "hash"])
    def test_policies_cover_and_stay_in_range(self, name):
        topo = TwoTierTopology(num_gateways=4, assignment=name)
        mapping = topo.assign(37)
        assert mapping.shape == (37,)
        assert mapping.min() >= 0 and mapping.max() < 4
        # Deterministic: the same topology always resolves the same map.
        assert np.array_equal(mapping, topo.assign(37))

    def test_round_robin_interleaves(self):
        assert TwoTierTopology(num_gateways=3).assign(7).tolist() == [
            0, 1, 2, 0, 1, 2, 0,
        ]

    def test_block_is_contiguous(self):
        mapping = TwoTierTopology(num_gateways=2, assignment="block").assign(6)
        assert mapping.tolist() == [0, 0, 0, 1, 1, 1]

    def test_registry_lists_builtin_policies(self):
        for name in ("round_robin", "block", "hash"):
            assert name in GATEWAY_ASSIGNMENTS.names()

    def test_explicit_map(self):
        topo = TwoTierTopology(num_gateways=2, assignment=(1, 0, 1))
        assert topo.assign(3).tolist() == [1, 0, 1]

    def test_explicit_map_wrong_length_rejected(self):
        topo = TwoTierTopology(num_gateways=2, assignment=(0, 1))
        with pytest.raises(ConfigurationError, match="covers"):
            topo.assign(3)

    def test_explicit_map_out_of_range_rejected(self):
        topo = TwoTierTopology(num_gateways=2, assignment=(0, 2))
        with pytest.raises(ConfigurationError, match="outside"):
            topo.assign(2)

    def test_num_gateways_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            TwoTierTopology(num_gateways=0)


class TestGatewayProfile:
    def test_pass_through_is_transparent(self):
        assert GatewayProfile.pass_through().is_transparent

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"flush_size": 2},
            {"capacity": 5},
            {"device_delays": LinkDelays.uniform(0.1)},
            {"server_outage": BernoulliOutage(0.1)},
            {"stall_windows": ((1.0, 2.0),)},
        ],
    )
    def test_any_observable_knob_breaks_transparency(self, kwargs):
        profile = GatewayProfile(flush_size=kwargs.pop("flush_size", 1), **kwargs)
        assert not profile.is_transparent

    def test_stall_geometry_is_half_open(self):
        profile = GatewayProfile(stall_windows=((5.0, 7.0), (1.0, 2.0)))
        assert profile.stall_windows == ((1.0, 2.0), (5.0, 7.0))  # sorted
        assert profile.in_stall(1.0) and not profile.in_stall(2.0)
        assert profile.stall_release(6.0) == 7.0
        assert profile.stall_release(3.0) == 3.0  # outside: identity

    def test_overlapping_windows_rejected(self):
        with pytest.raises(ConfigurationError, match="overlap"):
            GatewayProfile(stall_windows=((1.0, 3.0), (2.0, 4.0)))

    def test_degenerate_window_rejected(self):
        with pytest.raises(ConfigurationError, match="exceed"):
            GatewayProfile(stall_windows=((2.0, 2.0),))


class TestProfileOverrides:
    def test_profile_for_prefers_the_override(self):
        special = GatewayProfile(flush_size=99)
        topo = TwoTierTopology(num_gateways=3, profiles={1: special})
        assert topo.profile_for(1) is special
        assert topo.profile_for(0) is topo.profile
        assert not topo.is_transparent  # the override is not transparent

    def test_override_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError, match="out of range"):
            TwoTierTopology(num_gateways=2, profiles={5: GatewayProfile()})


class TestJsonForm:
    def test_round_trip(self):
        topo = TwoTierTopology.from_dict({
            "num_gateways": 4,
            "assignment": "block",
            "flush_size": 8,
            "flush_deadline": 1.5,
            "capacity": 64,
            "device_delay": 0.25,
            "server_delay": 2.0,
            "device_drop": 0.05,
            "server_drop": 0.1,
            "stall_windows": [[3.0, 4.0]],
        })
        # Delay/outage models compare by identity, so round-trip equality
        # is checked on the canonical JSON form.
        assert TwoTierTopology.from_dict(topo.to_dict()).to_dict() == topo.to_dict()
        assert topo.profile.flush_size == 8
        assert topo.profile.capacity == 64
        assert topo.profile.device_outage.drop_probability == 0.05
        assert topo.profile.server_delays.checkin.maximum == 2.0
        assert topo.profile.stall_windows == ((3.0, 4.0),)

    def test_delay_scale_converts_delta_multiples(self):
        data = {"num_gateways": 2, "server_delay": 2.0, "flush_deadline": 1.5,
                "stall_windows": [[1.0, 3.0]]}
        topo = TwoTierTopology.from_dict(data, delay_scale=0.1)
        assert topo.profile.server_delays.checkin.maximum == pytest.approx(0.2)
        assert topo.profile.flush_deadline == pytest.approx(0.15)
        assert topo.profile.stall_windows[0] == pytest.approx((0.1, 0.3))
        # Drop probabilities are dimensionless: never scaled.
        repinned = TwoTierTopology.from_dict(
            {"num_gateways": 2, "device_drop": 0.2}, delay_scale=0.1
        )
        assert repinned.profile.device_outage.drop_probability == 0.2

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            TwoTierTopology.from_dict({"num_gateways": 1, "flsh_size": 2})

    def test_unserializable_forms_raise(self):
        with pytest.raises(ConfigurationError, match="no JSON spec form"):
            TwoTierTopology(
                num_gateways=2, profiles={0: GatewayProfile(flush_size=2)}
            ).to_dict()
        with pytest.raises(ConfigurationError, match="Bernoulli"):
            TwoTierTopology(
                num_gateways=2,
                profile=GatewayProfile(
                    server_outage=WindowedOutage(((0.0, 1.0),))
                ),
            ).to_dict()

    def test_defaults_round_trip_minimal(self):
        topo = TwoTierTopology(num_gateways=3)
        assert topo.to_dict() == {"num_gateways": 3}
        rebuilt = TwoTierTopology.from_dict({"num_gateways": 3})
        assert rebuilt.to_dict() == {"num_gateways": 3}
        assert rebuilt.is_transparent is False  # default flush_size is 32
