"""Recorded-trace regression for *non-transparent* gateway configs.

Nonzero hop delays plus deadline-triggered flushing give the gateway
tier its own arrival orderings — deterministic, but not reducible to any
flat-topology run.  These fingerprints live in their **own** golden file
(``tests/data/golden_gateway_traces.json``); the flat-topology goldens
in ``golden_traces.json`` are untouched by this suite.

Regenerate after an intentional trace change with::

    REPRO_REGEN_GATEWAY_GOLDEN=1 python -m pytest tests/gateway/test_golden_deadline.py
"""

import json
import os
import pathlib

import pytest

from repro.gateway import GatewayProfile, TwoTierTopology
from repro.network.latency import LinkDelays
from repro.network.outage import BernoulliOutage

from tests.simulation import _golden as golden_mod

GOLDEN_PATH = (
    pathlib.Path(__file__).resolve().parent.parent
    / "data" / "golden_gateway_traces.json"
)
REGENERATE = os.environ.get("REPRO_REGEN_GATEWAY_GOLDEN", "") not in ("", "0")

#: Named gateway topologies whose traces are pinned.  All exercise the
#: deadline trigger at nonzero delay — the ordering regime the
#: transparent-parity suite cannot reach.
CASES = {
    "deadline_trickle": TwoTierTopology(
        num_gateways=3,
        profile=GatewayProfile(
            flush_size=10_000,  # unreachable: the deadline does the work
            flush_deadline=0.4,
            device_delays=LinkDelays.uniform(0.05),
            server_delays=LinkDelays.uniform(0.2),
        ),
    ),
    "deadline_vs_size": TwoTierTopology(
        num_gateways=2,
        assignment="block",
        profile=GatewayProfile(
            flush_size=4,
            flush_deadline=0.6,
            server_delays=LinkDelays.uniform(0.3),
        ),
    ),
    "stalled_segment": TwoTierTopology(
        num_gateways=2,
        profiles={
            0: GatewayProfile(
                flush_size=4,
                flush_deadline=0.5,
                server_delays=LinkDelays.uniform(0.1),
                stall_windows=((2.0, 6.0),),
            ),
        },
        profile=GatewayProfile(
            flush_size=4,
            flush_deadline=0.5,
            server_delays=LinkDelays.uniform(0.1),
        ),
    ),
    "lossy_backhaul_deadline": TwoTierTopology(
        num_gateways=2,
        profile=GatewayProfile(
            flush_size=6,
            flush_deadline=0.8,
            device_delays=LinkDelays.uniform(0.1),
            server_delays=LinkDelays.uniform(0.2),
            server_outage=BernoulliOutage(0.2),
        ),
    ),
}


def _load():
    if not GOLDEN_PATH.exists():
        return {}
    return json.loads(GOLDEN_PATH.read_text())


def _save(golden):
    GOLDEN_PATH.write_text(json.dumps(golden, indent=2, sort_keys=True) + "\n")


@pytest.fixture(scope="module")
def data():
    return golden_mod.make_data()


@pytest.fixture(scope="module")
def golden():
    return {} if REGENERATE else _load()


@pytest.mark.parametrize("name", sorted(CASES))
def test_deadline_flush_ordering_matches_golden(data, golden, name):
    trace, _ = golden_mod.run_case(data, {}, gateways=CASES[name])
    fingerprint = golden_mod.trace_fingerprint(trace)
    if REGENERATE:
        stored = _load()
        stored[name] = fingerprint
        _save(stored)
        return
    assert name in golden, (
        f"no gateway golden recorded for {name!r}; run with "
        "REPRO_REGEN_GATEWAY_GOLDEN=1"
    )
    problems = golden_mod.compare_fingerprint(name, fingerprint, golden[name])
    assert not problems, "\n".join(problems)


@pytest.mark.parametrize("name", sorted(CASES))
def test_cases_are_deterministic(data, name):
    """Two fresh runs of the same topology produce one fingerprint —
    deadline timers and stall bookkeeping leak no hidden state."""
    first, _ = golden_mod.run_case(data, {}, gateways=CASES[name])
    second, _ = golden_mod.run_case(data, {}, gateways=CASES[name])
    assert golden_mod.trace_fingerprint(first) == golden_mod.trace_fingerprint(
        second
    )
