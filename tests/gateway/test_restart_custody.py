"""Edge-gateway retry custody across a server restart.

A gateway whose flush fails transiently keeps custody of the buffered
batch (the batched Remark 1).  With a durable server, that custody
composes with crash-resume: a batch buffered while the server bounces
lands exactly once on the restored instance, and a replayed batch —
one whose acks were lost — is answered from the restored dedupe ledger
instead of double-counted.
"""

from __future__ import annotations

import socket

import numpy as np
import pytest

from repro.core.config import ServerConfig
from repro.core.protocol import CheckinMessage
from repro.core.server_core import ServerCore
from repro.gateway.edge import EdgeGateway
from repro.models import MulticlassLogisticRegression
from repro.optim import paper_sgd
from repro.persist import Checkpointer, SnapshotStore, restore_core
from repro.serve.client import RemoteServiceError, ServiceClient
from repro.serve.service import CrowdService

DIM, CLASSES = 4, 3


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def make_model():
    return MulticlassLogisticRegression(num_features=DIM, num_classes=CLASSES)


def make_core() -> ServerCore:
    model = make_model()
    return ServerCore(
        model,
        paper_sgd(model.init_parameters(), learning_rate_constant=0.5,
                  projection_radius=10.0),
        config=ServerConfig(max_iterations=10_000),
    )


def make_message(model, device_id, token, rng, seq):
    return CheckinMessage(
        device_id=device_id,
        token=token,
        gradient=rng.normal(size=model.num_parameters),
        num_samples=int(rng.integers(1, 6)),
        noisy_error_count=int(rng.integers(0, 4)),
        noisy_label_counts=rng.integers(0, 5, size=model.num_classes),
        checkout_iteration=0,
        checkin_seq=seq,
    )


def test_buffered_batch_survives_server_bounce(tmp_path):
    rng = np.random.default_rng(42)
    port = free_port()
    state_dir = str(tmp_path / "state")
    store = SnapshotStore(state_dir)
    service = CrowdService(
        make_core(), port=port, checkpointer=Checkpointer(store)
    ).start()
    url = service.url
    model = make_model()
    # Short timeout: the mid-bounce flush should fail fast, not linger.
    client = ServiceClient(url, timeout=1.0)
    # flush_size larger than the batch: check-ins stay in the gateway's
    # buffer until an explicit flush.
    gateway = EdgeGateway(client, flush_size=100)
    token, _ = client.join_info(0)

    messages = [make_message(model, 0, token, rng, seq) for seq in range(3)]
    acks = []
    for message in messages:
        gateway.add(message, on_ack=acks.append)
    assert gateway.pending == 3

    # The server bounces (graceful here; the SIGKILL variant is covered
    # by tests/persist) while the batch is still in gateway custody.
    # Closing the pooled socket severs the last link to the old
    # instance — in-process shutdown leaves kept-alive handler threads
    # running, which a real process exit would not.
    service.stop()
    client.close()
    with pytest.raises(RemoteServiceError):
        gateway.flush()
    assert gateway.pending == 3  # custody kept, nothing lost
    assert acks == []

    # Restore from the state dir onto the same port.
    loaded, _ = store.load_latest()
    core2 = restore_core(loaded, make_model())
    service2 = CrowdService(
        core2, port=port, checkpointer=Checkpointer(store)
    ).start()
    try:
        flushed = gateway.flush()
        assert gateway.pending == 0
        assert len(flushed) == 3
        assert all(ack is not None and not ack.duplicate for ack in flushed)
        assert [ack.checkin_seq for ack in acks] == [0, 1, 2]
        assert core2.iteration == 3
        assert core2.duplicates_suppressed == 0
    finally:
        service2.stop()

    # Reference: the same messages against an in-process core, applied
    # once — the bounced run must match it bit for bit.
    reference = make_core()
    reference.register_device(0)
    for message in messages:
        reference.handle_checkin(message)
    assert np.array_equal(core2.parameters, reference.parameters)


def test_replayed_batch_not_double_counted_after_restart(tmp_path):
    rng = np.random.default_rng(43)
    port = free_port()
    state_dir = str(tmp_path / "state")
    store = SnapshotStore(state_dir)
    service = CrowdService(
        make_core(), port=port, checkpointer=Checkpointer(store)
    ).start()
    model = make_model()
    client = ServiceClient(service.url, timeout=5.0)
    gateway = EdgeGateway(client, flush_size=100)
    token, _ = client.join_info(0)

    # The batch lands and is made durable — but pretend the acks never
    # reached the devices (the drop_response trap), so the whole batch
    # is re-submitted after the server bounces.
    messages = [make_message(model, 0, token, rng, seq) for seq in range(3)]
    for message in messages:
        gateway.add(message)
    gateway.flush()
    assert service.core.iteration == 3
    service.stop()
    client.close()  # sever the kept-alive socket to the old instance

    loaded, _ = store.load_latest()
    core2 = restore_core(loaded, make_model())
    service2 = CrowdService(
        core2, port=port, checkpointer=Checkpointer(store)
    ).start()
    try:
        replays = []
        fresh = make_message(model, 0, token, rng, seq=3)
        for message in messages:
            gateway.add(message, on_ack=replays.append)
        gateway.add(fresh, on_ack=replays.append)
        gateway.flush()
        # The restored ledger recognizes all three replays; only the
        # fresh message advances the iteration.
        assert [ack.duplicate for ack in replays] == [True, True, True, False]
        assert core2.iteration == 4
        assert core2.duplicates_suppressed == 3
    finally:
        service2.stop()

    reference = make_core()
    reference.register_device(0)
    for message in messages + [fresh]:
        reference.handle_checkin(message)
    assert np.array_equal(core2.parameters, reference.parameters)
