"""Unit tests for the metrics primitives and the snapshot algebra."""

import json

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    default_latency_buckets,
    default_size_buckets,
    label_snapshot,
    merge_snapshots,
    render_prometheus,
)


class TestInstruments:
    def test_counter_inc_and_value(self):
        counter = Counter("c", {})
        counter.inc()
        counter.inc(41)
        assert counter.value == 42

    def test_counter_refuses_negative(self):
        with pytest.raises(ValueError):
            Counter("c", {}).inc(-1)

    def test_gauge_set_inc_dec(self):
        gauge = Gauge("g", {})
        gauge.set(3.5)
        gauge.inc(2.0)
        gauge.dec(0.5)
        assert gauge.value == 5.0

    def test_histogram_count_sum_min_max(self):
        hist = Histogram("h", {}, buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 8.0):
            hist.observe(value)
        state = hist._state()
        assert state["count"] == 4
        assert state["sum"] == pytest.approx(13.0)
        assert state["min"] == 0.5
        assert state["max"] == 8.0
        # cumulative counts per bound: <=1: 1, <=2: 2, <=4: 3 (+Inf = count)
        assert state["cumulative"] == [1, 2, 3]

    def test_histogram_bucket_edges_are_le(self):
        hist = Histogram("h", {}, buckets=(1.0, 2.0))
        hist.observe(1.0)  # exactly on a bound lands in that bucket
        assert hist._state()["cumulative"] == [1, 1]

    def test_histogram_exact_percentiles_over_window(self):
        # Nearest-rank over the sorted window: with values 0..99 the
        # q-th percentile is exactly round(q/100 * 99).
        hist = Histogram("h", {}, buckets=(1e6,), window=1000)
        for value in range(100):
            hist.observe(float(value))
        assert hist.percentile(50) == 50.0
        assert hist.percentile(95) == 94.0
        state = hist._state()
        assert state["percentiles"]["p50"] == 50.0
        assert state["percentiles"]["p99"] == 98.0

    def test_histogram_window_bounds_memory(self):
        hist = Histogram("h", {}, buckets=(1e6,), window=8)
        for value in range(100):
            hist.observe(float(value))
        # Count is lifetime-exact, the percentile window holds the tail.
        assert hist.count == 100
        assert hist.percentile(0) == 92.0

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", {}, buckets=(2.0, 1.0))

    def test_default_buckets_are_strictly_increasing(self):
        for bounds in (default_latency_buckets(), default_size_buckets()):
            assert list(bounds) == sorted(bounds)
            assert len(set(bounds)) == len(bounds)


class TestRegistry:
    def test_get_or_create_same_identity_same_object(self):
        registry = MetricsRegistry("t")
        assert registry.counter("a") is registry.counter("a")
        assert registry.counter("a", x="1") is registry.counter("a", x="1")
        assert registry.counter("a", x="1") is not registry.counter("a", x="2")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry("t")
        registry.counter("a")
        with pytest.raises(TypeError):
            registry.gauge("a")

    def test_snapshot_is_json_clean(self):
        registry = MetricsRegistry("t")
        registry.counter("c", endpoint="join").inc(3)
        registry.gauge("g").set(1.5)
        registry.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        snapshot = json.loads(json.dumps(registry.snapshot()))
        assert snapshot["enabled"] is True
        assert snapshot["registry"] == "t"
        [counter] = snapshot["counters"]
        assert counter == {
            "name": "c", "labels": {"endpoint": "join"}, "value": 3,
        }
        [hist] = snapshot["histograms"]
        assert hist["count"] == 1
        assert hist["cumulative"] == [1, 1]

    def test_null_registry_shared_singletons(self):
        assert NULL_REGISTRY.counter("a") is NULL_REGISTRY.counter("b")
        assert NULL_REGISTRY.gauge("a") is NULL_REGISTRY.gauge("b")
        assert NULL_REGISTRY.histogram("a") is NULL_REGISTRY.histogram("b")
        assert NULL_REGISTRY.enabled is False
        assert NULL_REGISTRY.snapshot()["enabled"] is False


class TestSnapshotAlgebra:
    def _snapshot(self, name, counter_value, observations):
        registry = MetricsRegistry(name)
        registry.counter("requests_total").inc(counter_value)
        registry.gauge("uptime").set(counter_value)
        hist = registry.histogram("latency", buckets=(1.0, 2.0, 4.0))
        for value in observations:
            hist.observe(value)
        return registry.snapshot()

    def test_label_snapshot_stamps_every_entry(self):
        stamped = label_snapshot(self._snapshot("w", 2, [0.5]), shard="3")
        for kind in ("counters", "gauges", "histograms"):
            for entry in stamped[kind]:
                assert entry["labels"]["shard"] == "3"

    def test_merge_adds_counters_and_buckets(self):
        a = self._snapshot("a", 2, [0.5, 1.5])
        b = self._snapshot("b", 3, [3.0])
        merged = merge_snapshots([a, b])
        [counter] = [
            c for c in merged["counters"] if c["name"] == "requests_total"
        ]
        assert counter["value"] == 5
        [hist] = [h for h in merged["histograms"] if h["name"] == "latency"]
        assert hist["count"] == 3
        assert hist["cumulative"] == [1, 2, 3]
        assert hist["min"] == 0.5 and hist["max"] == 3.0
        # Merged percentiles are bucket-upper-bound estimates.
        assert hist["percentiles"]["p50"] == 2.0

    def test_merge_keeps_distinct_labels_separate(self):
        a = label_snapshot(self._snapshot("a", 2, []), shard="0")
        b = label_snapshot(self._snapshot("b", 3, []), shard="1")
        merged = merge_snapshots([a, b])
        values = {
            c["labels"]["shard"]: c["value"]
            for c in merged["counters"] if c["name"] == "requests_total"
        }
        assert values == {"0": 2, "1": 3}

    def test_merge_refuses_mismatched_bounds(self):
        registry = MetricsRegistry("x")
        registry.histogram("latency", buckets=(1.0,)).observe(0.5)
        with pytest.raises(ValueError):
            merge_snapshots([self._snapshot("a", 1, [0.5]),
                             registry.snapshot()])

    def test_render_prometheus_format(self):
        text = render_prometheus(self._snapshot("a", 2, [0.5, 1.5, 3.0]))
        assert "# TYPE requests_total counter" in text
        assert "requests_total 2" in text
        assert "# TYPE latency histogram" in text
        assert 'latency_bucket{le="1.0"} 1' in text
        assert 'latency_bucket{le="+Inf"} 3' in text
        assert "latency_count 3" in text
        assert 'latency{quantile="0.5"}' in text
        assert text.endswith("\n")

    def test_render_prometheus_escapes_nothing_exotic_in_labels(self):
        registry = MetricsRegistry("t")
        registry.counter("c", endpoint="checkins").inc()
        assert 'c{endpoint="checkins"} 1' in render_prometheus(
            registry.snapshot()
        )
