"""``repro-obs`` CLI: show (table/json/prometheus) and diff."""

import json

import pytest

from repro.obs import cli
from repro.obs.metrics import MetricsRegistry


def snapshot_file(tmp_path, name, counter_value, observations=()):
    registry = MetricsRegistry(name)
    registry.counter("requests_total", endpoint="checkins").inc(counter_value)
    hist = registry.histogram("latency", buckets=(1.0, 2.0, 4.0))
    for value in observations:
        hist.observe(value)
    path = tmp_path / f"{name}.json"
    path.write_text(registry.render_json())
    return str(path)


class TestLoadSnapshot:
    def test_loads_file(self, tmp_path):
        path = snapshot_file(tmp_path, "a", 3)
        snapshot = cli.load_snapshot(path)
        assert snapshot["registry"] == "a"

    def test_bare_url_gets_metrics_path(self, monkeypatch):
        seen = {}

        class _Response:
            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

            def read(self):
                return b'{"enabled": true}'

        def fake_urlopen(url, timeout=10.0):
            seen["url"] = url
            return _Response()

        monkeypatch.setattr(cli.urllib.request, "urlopen", fake_urlopen)
        cli.load_snapshot("http://127.0.0.1:1/")
        assert seen["url"] == "http://127.0.0.1:1/v1/metrics?format=json"
        cli.load_snapshot("http://127.0.0.1:1/v1/metrics")
        assert seen["url"] == "http://127.0.0.1:1/v1/metrics?format=json"


class TestShow:
    def test_table(self, tmp_path, capsys):
        path = snapshot_file(tmp_path, "a", 3, [0.5, 1.5])
        assert cli.main(["show", path]) == 0
        out = capsys.readouterr().out
        assert "registry: a" in out
        assert "requests_total{endpoint=checkins}  3" in out
        assert "histograms:" in out

    def test_json_roundtrips(self, tmp_path, capsys):
        path = snapshot_file(tmp_path, "a", 3)
        assert cli.main(["show", path, "--json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["counters"][0]["value"] == 3

    def test_prometheus(self, tmp_path, capsys):
        path = snapshot_file(tmp_path, "a", 3, [0.5])
        assert cli.main(["show", path, "--prometheus"]) == 0
        out = capsys.readouterr().out
        assert 'requests_total{endpoint="checkins"} 3' in out
        assert 'latency_bucket{le="+Inf"} 1' in out

    def test_json_and_prometheus_are_exclusive(self, tmp_path):
        path = snapshot_file(tmp_path, "a", 1)
        with pytest.raises(SystemExit):
            cli.main(["show", path, "--json", "--prometheus"])


class TestDiff:
    def test_counter_and_histogram_deltas(self, tmp_path, capsys):
        before = snapshot_file(tmp_path, "before", 3, [0.5])
        after = snapshot_file(tmp_path, "after", 10, [0.5, 1.5, 3.0])
        assert cli.main(["diff", before, after]) == 0
        out = capsys.readouterr().out
        assert "requests_total{endpoint=checkins}  +7" in out
        assert "histogram deltas" in out
        assert "+2" in out  # two new latency observations

    def test_no_change(self, tmp_path, capsys):
        path = snapshot_file(tmp_path, "same", 3)
        assert cli.main(["diff", path, path]) == 0
        assert "no counter or histogram changes" in capsys.readouterr().out


class TestErrors:
    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert cli.main(["show", str(tmp_path / "nope.json")]) == 2
        assert "repro-obs:" in capsys.readouterr().err

    def test_garbage_json_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        assert cli.main(["show", str(path)]) == 2
        assert "repro-obs:" in capsys.readouterr().err
