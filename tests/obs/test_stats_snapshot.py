"""Uniform ``stats_snapshot()`` across the client-side surfaces.

Every traffic-touching component exposes the same idiom — a plain dict
of JSON-clean counters — so operators (and ``repro-obs``) can inspect
any of them without knowing its private stats shape.
"""

import json

import numpy as np
import pytest

from repro.core.protocol import CheckinMessage
from repro.gateway.aggregator import GatewayAggregator
from repro.gateway.edge import EdgeGateway
from repro.persist.faults import FaultyProxy
from repro.serve.client import ServiceClient

from tests.persist.conftest import CLASSES, make_core


def _message(seq=0):
    model = make_core().model
    return CheckinMessage(
        device_id=0, token="t",
        gradient=np.zeros(model.num_parameters),
        num_samples=1, noisy_error_count=0,
        noisy_label_counts=np.zeros(CLASSES, dtype=np.int64),
        checkout_iteration=0, checkin_seq=seq,
    )


def assert_uniform(snapshot):
    """The shared contract: a JSON-clean flat dict of numeric counters
    (nested dicts allowed one level down, e.g. per-error-code maps)."""
    assert isinstance(snapshot, dict)
    json.dumps(snapshot)  # JSON-clean
    for key, value in snapshot.items():
        assert isinstance(key, str)
        assert isinstance(value, (int, float, dict)), (key, value)


class TestUniformSnapshots:
    def test_aggregator(self):
        aggregator = GatewayAggregator(lambda ms: [None] * len(ms),
                                       flush_size=2)
        aggregator.add(_message(0))
        aggregator.add(_message(1))
        snapshot = aggregator.stats_snapshot()
        assert_uniform(snapshot)
        assert snapshot["checkins_added"] == 2
        assert snapshot["flushes"] == 1
        assert snapshot["mean_flush_size"] == 2.0
        assert snapshot["custody_requeues"] == 0

    def test_aggregator_counts_custody_requeues(self):
        calls = []

        def upstream(messages):
            calls.append(len(messages))
            if len(calls) == 1:
                raise OSError("link down")
            return [None] * len(messages)

        aggregator = GatewayAggregator(upstream, flush_size=1)
        with pytest.raises(OSError):
            aggregator.add(_message(0))
        assert aggregator.stats_snapshot()["custody_requeues"] == 1
        aggregator.flush()
        assert aggregator.stats_snapshot()["custody_requeues"] == 1

    def test_client(self):
        client = ServiceClient("http://127.0.0.1:1")
        snapshot = client.stats_snapshot()
        assert_uniform(snapshot)
        for key in ("requests_sent", "connections_opened", "reconnects",
                    "retries_used", "reuse_ratio"):
            assert key in snapshot

    def test_edge_gateway(self):
        gateway = EdgeGateway("http://127.0.0.1:1", flush_size=4)
        snapshot = gateway.stats_snapshot()
        assert_uniform(snapshot)
        for key in ("checkins_added", "flushes", "requests_made",
                    "shard_splits", "pending"):
            assert key in snapshot

    def test_faulty_proxy(self):
        proxy = FaultyProxy("http://127.0.0.1:1", seed=0)
        snapshot = proxy.stats_snapshot()
        assert_uniform(snapshot)
        assert snapshot == proxy.stats()

    def test_live_client_counts(self):
        from repro.serve.service import CrowdService

        with CrowdService(make_core()) as service:
            client = ServiceClient(service.url)
            client.status()
            client.status()
            snapshot = client.stats_snapshot()
        assert_uniform(snapshot)
        assert snapshot["requests_sent"] == 2
        assert snapshot["connections_opened"] >= 1
        assert snapshot["reuse_ratio"] >= 1.0
