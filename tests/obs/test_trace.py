"""Unit tests for per-request tracing: phases, retention, spooling."""

import json
import os
import time

from repro.obs.trace import NULL_TRACER, NullTraceRecorder, TraceRecorder


class TestActiveTrace:
    def test_phases_and_finish(self):
        recorder = TraceRecorder(capacity=8)
        trace = recorder.begin("POST /v1/checkins")
        with trace.phase("decode"):
            pass
        with trace.phase("core_apply"):
            time.sleep(0.002)
        trace.add_phase("lock_wait", 0.5)
        trace.finish(200)
        [record] = recorder.snapshot()
        assert record["trace"] == "POST /v1/checkins"
        assert record["status"] == 200
        assert record["duration_ms"] >= 2.0
        assert set(record["phases"]) == {"decode", "core_apply", "lock_wait"}
        assert record["phases"]["lock_wait"] == 500.0
        assert record["phases"]["core_apply"] >= 2.0
        assert record["start"] > 0

    def test_name_is_settable_mid_flight(self):
        recorder = TraceRecorder(capacity=8)
        trace = recorder.begin("pending")
        trace.name = "GET /v1/status"
        trace.finish(200)
        assert recorder.snapshot()[0]["trace"] == "GET /v1/status"


class TestRecorder:
    def test_ring_buffer_retains_newest(self):
        recorder = TraceRecorder(capacity=3)
        for index in range(10):
            recorder.begin(f"op-{index}").finish(index)
        records = recorder.snapshot()
        assert [r["trace"] for r in records] == ["op-7", "op-8", "op-9"]
        assert recorder.records_total == 10

    def test_jsonl_spool_one_record_per_line(self, tmp_path):
        recorder = TraceRecorder(capacity=4, trace_dir=str(tmp_path), name="t")
        recorder.begin("a").finish(200)
        recorder.begin("b").finish(500)
        recorder.close()
        assert recorder.path == os.path.join(
            str(tmp_path), f"trace-t-{os.getpid()}.jsonl"
        )
        lines = [
            json.loads(line)
            for line in open(recorder.path).read().splitlines()
        ]
        assert [line["trace"] for line in lines] == ["a", "b"]
        for line in lines:
            assert set(line) == {
                "trace", "start", "duration_ms", "status", "phases",
            }

    def test_spool_write_failure_never_raises(self, tmp_path):
        recorder = TraceRecorder(capacity=4, trace_dir=str(tmp_path))
        recorder.close()
        recorder._file = open(os.devnull)  # read-only: writes fail
        recorder.begin("a").finish(200)  # must not raise
        assert recorder.records_total == 1
        recorder._file.close()
        recorder._file = None


class TestNullTracer:
    def test_null_handles_are_shared(self):
        assert NULL_TRACER.begin("a") is NULL_TRACER.begin("b")
        phase = NULL_TRACER.begin("a").phase("decode")
        assert phase is NULL_TRACER.begin("b").phase("encode")

    def test_null_tracer_records_nothing(self):
        trace = NULL_TRACER.begin("a")
        with trace.phase("decode"):
            pass
        trace.add_phase("x", 1.0)
        trace.finish(200)
        assert NULL_TRACER.snapshot() == []
        assert NULL_TRACER.records_total == 0
        assert NULL_TRACER.path is None
        assert isinstance(NULL_TRACER, NullTraceRecorder)
