"""Concurrency and overhead guarantees of the metrics layer.

Two properties the whole subsystem leans on:

* **exactness under threads** — counters and histogram counts are
  lock-protected, so N threads hammering one registry produce the exact
  arithmetic totals (no lost updates), and cumulative bucket counts stay
  monotone;
* **free when off** — the null instruments allocate nothing, so the
  check-in hot path pays only no-op method calls when observability is
  disabled.
"""

import gc
import sys
import threading

from repro.core.auth import DeviceRegistry
from repro.obs.metrics import (
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
)
from repro.obs.trace import NULL_TRACER

from tests.persist.conftest import make_core, make_message

THREADS = 8
ITERATIONS = 2_000


class TestThreadStress:
    def test_counter_totals_are_exact(self):
        registry = MetricsRegistry("stress")
        barrier = threading.Barrier(THREADS)

        def hammer(index):
            barrier.wait()
            for _ in range(ITERATIONS):
                # Re-look up every time: get-or-create must be safe too.
                registry.counter("shared_total").inc()
                registry.counter("per_thread_total", thread=str(index)).inc(2)

        threads = [
            threading.Thread(target=hammer, args=(i,)) for i in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.counter("shared_total").value == THREADS * ITERATIONS
        for index in range(THREADS):
            counter = registry.counter("per_thread_total", thread=str(index))
            assert counter.value == 2 * ITERATIONS

    def test_histogram_counts_exact_and_buckets_monotone(self):
        registry = MetricsRegistry("stress")
        hist = registry.histogram("latency", buckets=(1.0, 2.0, 4.0, 8.0))
        barrier = threading.Barrier(THREADS)
        stop = threading.Event()
        monotone_ok = []

        def hammer():
            barrier.wait()
            for step in range(ITERATIONS):
                hist.observe(float(step % 8))

        def watch():
            # Concurrent snapshots must always see internally consistent
            # (monotone, capped-by-count) cumulative buckets.
            ok = True
            while not stop.is_set():
                state = hist._state()
                cumulative = state["cumulative"]
                if cumulative != sorted(cumulative):
                    ok = False
                if cumulative and cumulative[-1] > state["count"]:
                    ok = False
                if state["count"] > THREADS * ITERATIONS:
                    ok = False
            monotone_ok.append(ok)

        watcher = threading.Thread(target=watch)
        watcher.start()
        threads = [threading.Thread(target=hammer) for _ in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stop.set()
        watcher.join()
        assert monotone_ok == [True]
        state = hist._state()
        assert state["count"] == THREADS * ITERATIONS
        assert state["cumulative"][-1] <= state["count"]
        # Every observation below the top bound: +Inf overflow is empty.
        assert state["cumulative"][-1] == state["count"]

    def test_gauge_last_writer_wins_is_a_written_value(self):
        registry = MetricsRegistry("stress")
        gauge = registry.gauge("level")
        written = {float(v) for v in range(THREADS)}

        def hammer(value):
            for _ in range(ITERATIONS):
                gauge.set(value)

        threads = [
            threading.Thread(target=hammer, args=(float(i),))
            for i in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert gauge.value in written


class TestNoOpMode:
    def test_core_without_metrics_binds_null_singletons(self):
        core = make_core()
        assert core._m_batches is NULL_REGISTRY.counter("x")
        assert core._m_duplicates is NULL_REGISTRY.counter("x")
        assert core._m_batch_size is NULL_REGISTRY.histogram("x")
        assert core._m_stopped is NULL_REGISTRY.gauge("x")

    def test_null_instruments_allocate_nothing(self):
        counter = NULL_REGISTRY.counter("x")
        gauge = NULL_REGISTRY.gauge("x")
        hist = NULL_REGISTRY.histogram("x")
        trace = NULL_TRACER.begin("warm")
        value = 1.5

        def spin():
            for _ in range(512):
                counter.inc()
                counter.inc(3)
                gauge.set(value)
                gauge.inc()
                gauge.dec()
                hist.observe(value)
                NULL_REGISTRY.counter("y")
                NULL_TRACER.begin("op")
                with trace.phase("decode"):
                    pass
                trace.add_phase("lock_wait", value)
                trace.finish(200)

        spin()  # warm: any lazy interning happens here
        gc.disable()
        try:
            gc.collect()
            # Interpreter-internal churn (free-list growth, caches) can
            # move the block count by a few either way; a path that is
            # genuinely allocation-free shows a zero delta on at least
            # one trial, while a single real allocation per iteration
            # would show +512 on every trial.
            deltas = []
            for _ in range(5):
                before = sys.getallocatedblocks()
                spin()
                deltas.append(sys.getallocatedblocks() - before)
        finally:
            gc.enable()
        assert min(deltas) <= 0, deltas

    def test_checkin_hot_path_is_uninstrumented_when_disabled(self):
        """Disabled mode must not add per-message work to check-ins.

        The per-batch boundary instruments are null singletons (pinned
        above); here the whole handle_checkins path runs under a
        disabled registry and the null instruments observe no calls —
        i.e. nothing on the per-message path even *reaches* a metric.
        """
        import numpy as np

        registry = DeviceRegistry(server_key="obs-test")
        core = make_core(registry=registry)
        assert isinstance(core._metrics, NullRegistry)
        rng = np.random.default_rng(7)
        token = core.register_device(0)
        messages = [
            make_message(core, 0, token, rng, seq=seq) for seq in range(16)
        ]
        acks = core.handle_checkins(messages)
        assert sum(ack is not None for ack in acks) == 16
        # The shared null singletons report zero forever — no hidden
        # real instruments were constructed by the disabled path.
        assert NULL_REGISTRY.counter("x").value == 0
        assert NULL_REGISTRY.histogram("x").count == 0
