"""Unit tests for the tolerance-tiered golden-trace comparison."""

import numpy as np
import pytest

from tests.simulation import _golden as golden_mod


def make_fingerprint(**overrides):
    """A small synthetic fingerprint with every recorded field."""
    parameters = np.array([0.5, -1.25, 3.0])
    fingerprint = {
        "curve_iterations": [10, 20],
        "curve_errors": [0.5.hex(), 0.25.hex()],
        "online_errors": golden_mod._array_digest(np.array([True, False])),
        "online_error_count": 1,
        "final_parameters": golden_mod._array_digest(parameters),
        "final_parameters_values": [float(v).hex() for v in parameters],
        "staleness": golden_mod._array_digest(np.array([0, 1], dtype=np.int64)),
        "staleness_sum": 1,
        "total_samples_consumed": 20,
        "server_iterations": 20,
        "per_sample_epsilon": 0.0.hex(),
        "stop_reason": "data_exhausted",
        "communication": {"checkout_requests": 20},
    }
    fingerprint.update(overrides)
    return fingerprint


class TestFieldPartition:
    def test_every_fingerprint_field_has_a_tier(self):
        """A new fingerprint field must be assigned to a tier explicitly —
        checked against the *recorded* goldens, not a synthetic copy."""
        assert set(make_fingerprint()) == set(golden_mod.TIERED_FIELDS)
        for name, fingerprint in golden_mod.load_golden().items():
            assert set(fingerprint) == set(golden_mod.TIERED_FIELDS), name

    def test_untiered_field_fails_tier_two(self):
        """A field outside the tier partition is never silently excused."""
        drifted = make_fingerprint(novel_metric=42)
        problems = golden_mod.compare_fingerprint(
            "case", drifted, make_fingerprint(), atol=1.0)
        assert problems and "no comparison tier" in problems[0]
        # ... whichever side carries it.
        problems = golden_mod.compare_fingerprint(
            "case", make_fingerprint(), drifted, atol=1.0)
        assert problems and "no comparison tier" in problems[0]

    def test_recorded_goldens_carry_value_fields(self):
        golden = golden_mod.load_golden()
        assert golden, "golden file is empty"
        for name, fingerprint in golden.items():
            values = fingerprint["final_parameters_values"]
            digest = fingerprint["final_parameters"]
            assert len(values) == digest["shape"][0], name
            # The hex values decode to the exact recorded bits.
            decoded = np.array([float.fromhex(v) for v in values])
            assert golden_mod._array_digest(decoded)["sha256"] == digest["sha256"], name


class TestCompareFingerprint:
    def test_exact_match_passes_silently(self):
        fingerprint = make_fingerprint()
        import warnings
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert golden_mod.compare_fingerprint(
                "case", fingerprint, make_fingerprint()) == []

    def test_float_drift_within_atol_warns_and_passes(self):
        drifted = make_fingerprint(
            curve_errors=[(0.5 + 1e-9).hex(), 0.25.hex()],
            # Digests drift alongside on a real foreign platform.
            online_errors=golden_mod._array_digest(np.array([False, True])),
            online_error_count=2,
        )
        with pytest.warns(UserWarning, match="atol"):
            problems = golden_mod.compare_fingerprint(
                "case", drifted, make_fingerprint(), atol=1e-6)
        assert problems == []

    def test_drift_beyond_atol_fails(self):
        drifted = make_fingerprint(
            final_parameters_values=[0.5.hex(), (-1.25 + 1e-3).hex(), 3.0.hex()])
        problems = golden_mod.compare_fingerprint(
            "case", drifted, make_fingerprint(), atol=1e-6)
        assert problems and "final_parameters_values" in problems[0]

    def test_discrete_mismatch_fails_regardless_of_atol(self):
        drifted = make_fingerprint(server_iterations=21)
        problems = golden_mod.compare_fingerprint(
            "case", drifted, make_fingerprint(), atol=1e6)
        assert problems and "server_iterations" in problems[0]

    def test_stop_reason_mismatch_fails(self):
        drifted = make_fingerprint(stop_reason="max_iterations")
        assert golden_mod.compare_fingerprint(
            "case", drifted, make_fingerprint(), atol=1.0)

    def test_signed_zero_representation_drift_still_warns(self):
        """-0.0 vs +0.0 is zero measured drift but IS a float-field
        difference (real BLAS signature) — tier 2 must excuse it."""
        drifted = make_fingerprint(
            final_parameters_values=[(-0.0).hex(), (-1.25).hex(), 3.0.hex()])
        expected = make_fingerprint(
            final_parameters_values=[0.0.hex(), (-1.25).hex(), 3.0.hex()])
        with pytest.warns(UserWarning, match="atol"):
            assert golden_mod.compare_fingerprint(
                "case", drifted, expected, atol=1e-6) == []

    def test_bit_level_only_mismatch_with_zero_drift_fails(self):
        """An online-errors-only change with bit-exact floats is a real
        regression, not BLAS drift — tier 2 must not excuse it."""
        drifted = make_fingerprint(online_error_count=2)
        problems = golden_mod.compare_fingerprint(
            "case", drifted, make_fingerprint(), atol=1e-6)
        assert problems and "regression" in problems[0]

    def test_staleness_is_exact_in_every_tier(self):
        """Staleness is schedule-derived: BLAS drift cannot excuse it."""
        drifted = make_fingerprint(staleness_sum=2)
        problems = golden_mod.compare_fingerprint(
            "case", drifted, make_fingerprint(), atol=1e6)
        assert problems and "staleness_sum" in problems[0]

    def test_atol_zero_disables_tier_two(self):
        drifted = make_fingerprint(
            curve_errors=[(0.5 + 1e-12).hex(), 0.25.hex()])
        problems = golden_mod.compare_fingerprint(
            "case", drifted, make_fingerprint(), atol=0.0)
        assert problems and "disabled" in problems[0]

    def test_length_mismatch_fails(self):
        drifted = make_fingerprint(curve_errors=[0.5.hex()])
        problems = golden_mod.compare_fingerprint(
            "case", drifted, make_fingerprint(), atol=1.0)
        assert problems

    def test_env_var_controls_default_atol(self, monkeypatch):
        monkeypatch.setenv(golden_mod.GOLDEN_ATOL_ENV, "0.5")
        assert golden_mod.golden_atol() == 0.5
        monkeypatch.delenv(golden_mod.GOLDEN_ATOL_ENV)
        assert golden_mod.golden_atol() == golden_mod.DEFAULT_GOLDEN_ATOL
