"""Cross-path equivalence: batch arrivals vs. legacy per-sample events.

The batch-arrival scheduler must produce **bit-identical** traces to the
legacy per-sample scheduler — exact float equality on curves, online
errors, parameters, staleness, communication counters, and privacy spend.
The configurations below mirror the knobs the paper's figures exercise
(Figs. 3-9): zero and uniform delays, minibatch sizes, privacy levels,
holdouts, outages, churn, adaptive batch policies, buffer pressure, and
both stopping rules.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.adaptive import StalenessAdaptiveBatch
from repro.data import iid_partition, make_mnist_like
from repro.evaluation import assert_traces_identical
from repro.models import MulticlassLogisticRegression
from repro.network.latency import ConstantDelay, LinkDelays
from repro.network.outage import BernoulliOutage, BurstyOutage, WindowedOutage
from repro.simulation import ChurnSchedule, CrowdSimulator, SimulationConfig


@pytest.fixture(scope="module")
def data():
    return make_mnist_like(num_train=400, num_test=80, seed=0)


def _churn(num_devices: int) -> ChurnSchedule:
    return ChurnSchedule.random_sessions(
        num_devices, horizon=20.0, mean_session=12.0,
        rng=np.random.default_rng(5),
    )


# One entry per figure-level knob combination.  Keys are test ids; values
# are SimulationConfig kwargs (num_devices/num_snapshots get defaults).
CONFIG_CASES = {
    # Figs. 4/7: no delay, no privacy, pure SGD (b = 1).
    "fig4_zero_delay_b1": dict(batch_size=1),
    # Fig. 5/8: minibatching without delay.
    "fig5_minibatch_b10": dict(batch_size=10),
    # Fig. 5/8: finite privacy budget (noise draws share the device RNG
    # stream with holdout draws — ordering must survive batching).
    "fig5_privacy_eps1": dict(batch_size=5, epsilon=1.0),
    # Figs. 6/9: uniform link delays, b = 1 and b > 1.
    "fig6_uniform_delay_b1": dict(
        batch_size=1, link_delays=LinkDelays.uniform(0.37)),
    "fig6_uniform_delay_b5": dict(
        batch_size=5, link_delays=LinkDelays.uniform(0.7)),
    # Remark 2 holdout, with and without privacy noise.
    "holdout": dict(batch_size=5, holdout_fraction=0.3),
    "holdout_privacy": dict(
        batch_size=4, holdout_fraction=0.85, epsilon=2.0,
        link_delays=LinkDelays.uniform(0.3)),
    # Remark 1 outages: memoryless, scheduled windows, bursty.
    "outage_bernoulli": dict(
        batch_size=5, link_delays=LinkDelays.uniform(0.7),
        outage=BernoulliOutage(0.25)),
    "outage_windowed": dict(
        batch_size=4, link_delays=LinkDelays.uniform(0.31),
        outage=WindowedOutage([(3.0, 9.0), (20.0, 26.0)])),
    "outage_bursty": dict(
        batch_size=4, link_delays=LinkDelays.uniform(0.31),
        outage=BurstyOutage(8.0, 3.0, seed=3)),
    # Fig. 2 churn (join/leave mid-run), with and without delays.
    "churn_uniform_delay": dict(
        batch_size=3, churn=_churn(10), link_delays=LinkDelays.uniform(0.41)),
    "churn_zero_delay": dict(batch_size=2, churn=_churn(10)),
    # §IV-B3 adaptive minibatch policy (b changes between check-outs).
    "adaptive_batch": dict(
        batch_size=2, link_delays=LinkDelays.uniform(0.9),
        batch_policy_factory=lambda: StalenessAdaptiveBatch(
            target_staleness=4, max_batch=16)),
    # Buffer capacity pressure: long flights overflow B and drop samples.
    "buffer_pressure": dict(
        batch_size=3, buffer_factor=2, link_delays=LinkDelays.uniform(5.0)),
    "buffer_pressure_outage": dict(
        batch_size=3, buffer_factor=1, link_delays=LinkDelays.uniform(5.0),
        outage=BernoulliOutage(0.3)),
    # Both Algorithm 2 stopping rules.
    "stop_max_iterations": dict(batch_size=2, max_iterations=30),
    "stop_target_error": dict(batch_size=2, target_error=0.88),
    # Multiple passes re-shuffle the local stream per pass.
    "multi_pass": dict(
        batch_size=4, num_passes=3, link_delays=LinkDelays.uniform(0.53)),
    # Deterministic delays are fine as long as they are not exact float
    # multiples of the sampling period (see SimulationConfig.arrival_mode).
    "constant_delay": dict(
        batch_size=3,
        link_delays=LinkDelays(
            ConstantDelay(0.37), ConstantDelay(0.61), ConstantDelay(0.23))),
}


def _run(data, mode: str, overrides: dict, num_devices: int = 10):
    train, test = data
    config = SimulationConfig(
        num_devices=num_devices, num_snapshots=8, arrival_mode=mode,
        **overrides,
    )
    parts = iid_partition(train, num_devices, np.random.default_rng(0))
    simulator = CrowdSimulator(
        MulticlassLogisticRegression(50, 10), parts, test, config, seed=7,
    )
    return simulator.run(), simulator.events_fired


@pytest.mark.parametrize("name", sorted(CONFIG_CASES))
def test_bit_identical_traces(data, name):
    overrides = CONFIG_CASES[name]
    fast, fast_events = _run(data, "batch", overrides)
    legacy, legacy_events = _run(data, "per_sample", overrides)
    assert_traces_identical(fast, legacy, context=name)
    # The whole point: strictly fewer heap events on the fast path.
    assert fast_events < legacy_events


def test_single_device(data):
    overrides = dict(batch_size=5, link_delays=LinkDelays.uniform(0.2))
    fast, _ = _run(data, "batch", overrides, num_devices=1)
    legacy, _ = _run(data, "per_sample", overrides, num_devices=1)
    assert_traces_identical(fast, legacy, context="single_device")


def test_seed_sensitivity_preserved(data):
    """Different seeds still give different runs on the fast path."""
    train, test = data
    config = SimulationConfig(num_devices=10, batch_size=5, num_snapshots=8,
                              link_delays=LinkDelays.uniform(0.5))
    parts = iid_partition(train, 10, np.random.default_rng(0))
    traces = [
        CrowdSimulator(MulticlassLogisticRegression(50, 10), parts, test,
                       config, seed=seed).run()
        for seed in (0, 1)
    ]
    assert not np.array_equal(traces[0].final_parameters,
                              traces[1].final_parameters)


def test_empty_device_dataset(data):
    """A device with no local data stays silent in both modes."""
    train, test = data
    config_kwargs = dict(num_devices=3, batch_size=2, num_snapshots=4)
    parts = iid_partition(train, 2, np.random.default_rng(0))
    empty = dataclasses.replace(
        parts[0],
        features=parts[0].features[:0],
        labels=parts[0].labels[:0],
    )
    traces = []
    for mode in ("batch", "per_sample"):
        config = SimulationConfig(arrival_mode=mode, **config_kwargs)
        simulator = CrowdSimulator(
            MulticlassLogisticRegression(50, 10),
            [parts[0], empty, parts[1]], test, config, seed=3,
        )
        traces.append(simulator.run())
    assert_traces_identical(traces[0], traces[1], context="empty_device")
