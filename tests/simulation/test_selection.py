"""Tests for Section V-C hyperparameter selection."""

import numpy as np
import pytest

from repro.data import make_mnist_like
from repro.models import MulticlassLogisticRegression
from repro.simulation import SimulationConfig, select_hyperparameters
from repro.utils.exceptions import ConfigurationError


@pytest.fixture(scope="module")
def data():
    return make_mnist_like(num_train=400, num_test=200, seed=0)


def builder(l2: float):
    return MulticlassLogisticRegression(50, 10, l2_regularization=l2)


@pytest.fixture(scope="module")
def result(data):
    train, validation = data
    config = SimulationConfig(num_devices=10, num_passes=2)
    return select_hyperparameters(
        builder, train, validation, config,
        l2_grid=[0.0, 1e-3],
        learning_rate_grid=[0.01, 30.0],
        num_trials=1,
    )


class TestSelection:
    def test_scores_cover_full_grid(self, result):
        assert len(result.scores) == 4

    def test_best_is_grid_minimum(self, result):
        assert result.best_error == min(result.scores.values())
        assert result.scores[(result.best_l2, result.best_learning_rate)] == (
            result.best_error
        )

    def test_sensible_rate_wins(self, result):
        """c = 0.01 barely moves the model; c = 30 must win on this task."""
        assert result.best_learning_rate == 30.0

    def test_format_table_marks_best(self, result):
        table = result.format_table()
        assert "<-- best" in table
        assert table.count("\n") == 4  # header + 4 grid rows

    def test_rejects_empty_grid(self, data):
        train, validation = data
        config = SimulationConfig(num_devices=10)
        with pytest.raises(ConfigurationError):
            select_hyperparameters(builder, train, validation, config, [], [1.0])

    def test_deterministic(self, data, result):
        train, validation = data
        config = SimulationConfig(num_devices=10, num_passes=2)
        again = select_hyperparameters(
            builder, train, validation, config,
            l2_grid=[0.0, 1e-3],
            learning_rate_grid=[0.01, 30.0],
            num_trials=1,
        )
        assert again.scores == result.scores
