"""Tests for the event-driven crowd simulator."""

import math

import numpy as np
import pytest

from repro.data import iid_partition, make_mnist_like
from repro.models import MulticlassLogisticRegression
from repro.network import BernoulliOutage, LinkDelays
from repro.simulation import CrowdSimulator, SimulationConfig
from repro.utils.exceptions import ConfigurationError


@pytest.fixture(scope="module")
def data():
    return make_mnist_like(num_train=400, num_test=200, seed=0)


def build(data, config, seed=0):
    train, test = data
    parts = iid_partition(train, config.num_devices, np.random.default_rng(seed))
    model = MulticlassLogisticRegression(50, 10)
    return CrowdSimulator(model, parts, test, config, seed=seed)


class TestBasicRun:
    def test_consumes_all_data(self, data):
        config = SimulationConfig(num_devices=10, learning_rate_constant=30.0)
        trace = build(data, config).run()
        assert trace.total_samples_consumed == 400
        assert trace.stop_reason == "data_exhausted"

    def test_num_passes_multiplies_samples(self, data):
        config = SimulationConfig(num_devices=10, num_passes=3,
                                  learning_rate_constant=30.0)
        trace = build(data, config).run()
        assert trace.total_samples_consumed == 1200

    def test_learning_happens(self, data):
        config = SimulationConfig(num_devices=10, num_passes=3,
                                  learning_rate_constant=30.0)
        trace = build(data, config).run()
        assert trace.curve.final_error < trace.curve.errors[0]
        assert trace.curve.final_error < 0.4

    def test_batch_size_divides_updates(self, data):
        config = SimulationConfig(num_devices=10, batch_size=4,
                                  learning_rate_constant=30.0)
        trace = build(data, config).run()
        assert trace.server_iterations == 400 // 4

    def test_curve_monotone_x_axis(self, data):
        config = SimulationConfig(num_devices=10, learning_rate_constant=30.0)
        trace = build(data, config).run()
        assert np.all(np.diff(trace.curve.iterations) > 0)

    def test_online_errors_length(self, data):
        config = SimulationConfig(num_devices=10, learning_rate_constant=30.0)
        trace = build(data, config).run()
        assert trace.online_errors.shape[0] == 400

    def test_device_count_mismatch_rejected(self, data):
        train, test = data
        parts = iid_partition(train, 5, np.random.default_rng(0))
        config = SimulationConfig(num_devices=10)
        with pytest.raises(ConfigurationError):
            CrowdSimulator(MulticlassLogisticRegression(50, 10), parts, test, config)


class TestDeterminism:
    def test_same_seed_same_trace(self, data):
        config = SimulationConfig(num_devices=10, epsilon=1.0,
                                  link_delays=LinkDelays.uniform(0.5),
                                  learning_rate_constant=30.0)
        a = build(data, config, seed=3).run()
        b = build(data, config, seed=3).run()
        assert np.array_equal(a.curve.errors, b.curve.errors)
        assert np.array_equal(a.final_parameters, b.final_parameters)

    def test_different_seed_different_trace(self, data):
        config = SimulationConfig(num_devices=10, epsilon=1.0,
                                  learning_rate_constant=30.0)
        a = build(data, config, seed=1).run()
        b = build(data, config, seed=2).run()
        assert not np.array_equal(a.final_parameters, b.final_parameters)


class TestPrivacyIntegration:
    def test_per_sample_epsilon_reported(self, data):
        config = SimulationConfig(num_devices=10, epsilon=2.0,
                                  learning_rate_constant=30.0)
        trace = build(data, config).run()
        assert trace.per_sample_epsilon == pytest.approx(2.0)

    def test_non_private_run_spends_nothing(self, data):
        config = SimulationConfig(num_devices=10, epsilon=math.inf,
                                  learning_rate_constant=30.0)
        trace = build(data, config).run()
        assert trace.per_sample_epsilon == 0.0


class TestDelays:
    def test_delayed_run_completes(self, data):
        config = SimulationConfig(
            num_devices=10,
            link_delays=LinkDelays.uniform(5.0),
            learning_rate_constant=30.0,
        )
        trace = build(data, config).run()
        # In-flight round trips at stream end may strand < b·M samples.
        assert trace.total_samples_consumed >= 350

    def test_delay_changes_event_interleaving(self, data):
        no_delay = SimulationConfig(num_devices=10, learning_rate_constant=30.0)
        delayed = SimulationConfig(
            num_devices=10,
            link_delays=LinkDelays.uniform(20.0),
            learning_rate_constant=30.0,
        )
        a = build(data, no_delay).run()
        b = build(data, delayed).run()
        assert not np.array_equal(a.final_parameters, b.final_parameters)


class TestOutages:
    def test_drops_counted_and_run_survives(self, data):
        config = SimulationConfig(
            num_devices=10,
            outage=BernoulliOutage(0.2),
            learning_rate_constant=30.0,
        )
        trace = build(data, config).run()
        assert trace.communication.messages_dropped > 0
        # Remark 1: learning still progresses despite failures.
        assert trace.server_iterations > 100
        assert trace.curve.final_error < 0.5


class TestCommunicationAccounting:
    def test_minibatch_reduces_message_count(self, data):
        small = build(data, SimulationConfig(num_devices=10, batch_size=1,
                                             learning_rate_constant=30.0)).run()
        large = build(data, SimulationConfig(num_devices=10, batch_size=10,
                                             learning_rate_constant=30.0)).run()
        assert large.communication.checkins_delivered == pytest.approx(
            small.communication.checkins_delivered / 10, rel=0.05
        )

    def test_uplink_volume_scales_inversely_with_b(self, data):
        small = build(data, SimulationConfig(num_devices=10, batch_size=1,
                                             learning_rate_constant=30.0)).run()
        large = build(data, SimulationConfig(num_devices=10, batch_size=10,
                                             learning_rate_constant=30.0)).run()
        assert large.communication.uplink_floats < small.communication.uplink_floats / 5


class TestStoppingCriteria:
    def test_max_iterations_stops_early(self, data):
        config = SimulationConfig(num_devices=10, max_iterations=50,
                                  learning_rate_constant=30.0)
        trace = build(data, config).run()
        assert trace.server_iterations == 50
        assert trace.stop_reason == "max_iterations"

    def test_target_error_stop(self, data):
        config = SimulationConfig(num_devices=10, num_passes=5, target_error=0.9,
                                  learning_rate_constant=30.0)
        trace = build(data, config).run()
        assert trace.stop_reason == "target_error"
        assert trace.total_samples_consumed < 2000


class TestSnapshots:
    def test_subsample_changes_curve_but_not_dynamics(self, data):
        full = build(data, SimulationConfig(num_devices=5, batch_size=2)).run()
        sub = build(
            data,
            SimulationConfig(num_devices=5, batch_size=2, snapshot_subsample=10),
        ).run()
        # Learning is untouched — snapshots are pure observation.
        assert np.array_equal(full.final_parameters, sub.final_parameters)
        assert np.array_equal(full.curve.iterations, sub.curve.iterations)
        assert full.total_samples_consumed == sub.total_samples_consumed
        # The error estimates themselves come from 10 examples now.
        assert not np.array_equal(full.curve.errors, sub.curve.errors)

    def test_subsample_is_deterministic(self, data):
        config = SimulationConfig(num_devices=5, batch_size=2,
                                  snapshot_subsample=10)
        a = build(data, config).run()
        b = build(data, config).run()
        assert np.array_equal(a.curve.errors, b.curve.errors)

    def test_snapshot_memoization_counts(self, data):
        """One big check-in crossing several grid points evaluates the
        forward pass once, not once per grid point."""
        simulator = build(
            data,
            SimulationConfig(num_devices=5, batch_size=20, num_snapshots=40),
        )
        trace = simulator.run()
        evaluator = simulator._snapshot_eval
        assert evaluator.hits > 0
        # Parameters only change per applied update, so at most one miss
        # per server iteration (plus the final snapshot) — every repeat
        # within a multi-grid-point check-in must come from the cache.
        assert evaluator.misses <= trace.server_iterations + 1
        assert evaluator.hits + evaluator.misses >= trace.curve.iterations.size

    def test_rejects_bad_subsample(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(num_devices=2, snapshot_subsample=0)
