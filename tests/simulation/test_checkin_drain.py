"""Same-timestamp check-in batch drain: bit-identical to event dispatch.

With τ > 0 several check-ins can land on the same arrival timestamp; the
simulator drains such a contiguous run from the heap and applies it via
``ServerCore.handle_checkins`` segments.  These tests prove the drained
path reproduces the sequential per-event path *exactly* — including
snapshot placement, staleness bookkeeping, the max-iterations guard, and
ρ-target stops — plus end-to-end queue behaviour (contiguity, ordering
around interleaved events, the ``coalesce_checkins`` switch).
"""

import numpy as np
import pytest

from repro.core.protocol import CheckinMessage
from repro.data import iid_partition, make_mnist_like
from repro.evaluation import assert_traces_identical
from repro.models import MulticlassLogisticRegression
from repro.network.latency import ConstantDelay, LinkDelays
from repro.simulation import CrowdSimulator, SimulationConfig

NUM_DEVICES = 6
DIM, CLASSES = 50, 10


@pytest.fixture(scope="module")
def data():
    train, test = make_mnist_like(num_train=180, num_test=50, seed=0)
    return iid_partition(train, NUM_DEVICES, np.random.default_rng(0)), test


def make_sim(data, coalesce, **config_extra):
    parts, test = data
    config = SimulationConfig(
        num_devices=NUM_DEVICES,
        batch_size=3,
        num_snapshots=6,
        link_delays=LinkDelays.uniform(0.4),
        transport="simulated",
        coalesce_checkins=coalesce,
        **config_extra,
    )
    return CrowdSimulator(
        MulticlassLogisticRegression(DIM, CLASSES), parts, test, config, seed=11,
    )


def craft_messages(sim, count, num_samples=2, rng_seed=5):
    """Valid check-in messages for ``sim``'s registered devices."""
    rng = np.random.default_rng(rng_seed)
    num_parameters = sim._model.num_parameters
    messages = []
    for k in range(count):
        actor = sim._actors[k % NUM_DEVICES]
        messages.append(CheckinMessage(
            device_id=actor.device.device_id,
            token=actor.device.token,
            gradient=rng.normal(size=num_parameters),
            num_samples=num_samples,
            noisy_error_count=int(rng.integers(0, num_samples + 1)),
            noisy_label_counts=rng.integers(
                0, num_samples + 1, size=CLASSES).astype(np.int64),
            checkout_iteration=0,
        ))
    return messages


def drained_state(sim):
    """Everything the check-in path mutates (devices are untouched)."""
    return {
        "parameters": sim._core.parameters,
        "iteration": sim._core.iteration,
        "rejected": sim._core.rejected_messages,
        "staleness": list(sim._staleness),
        "checkins_delivered": sim._comm.checkins_delivered,
        "samples_consumed": sim._samples_consumed,
        "snapshot_iters": list(sim._snapshot_iters),
        "snapshot_errors": list(sim._snapshot_errors),
        "grid_pos": sim._grid_pos,
        "stopped_reason": sim._stopped_reason,
    }


def assert_same_state(batched, sequential):
    got, want = drained_state(batched), drained_state(sequential)
    assert np.array_equal(got.pop("parameters"), want.pop("parameters"))
    assert got == want


class TestApplyRunEquivalence:
    """White-box: _apply_checkin_run vs one _on_checkin_arrival per message."""

    def apply_both_ways(self, data, messages, **config_extra):
        batched = make_sim(data, coalesce=True, **config_extra)
        sequential = make_sim(data, coalesce=False, **config_extra)
        batched._apply_checkin_run(messages)
        for message in messages:
            sequential._on_checkin_arrival(None, message)
        assert_same_state(batched, sequential)
        return batched

    def test_plain_run_single_segment(self, data):
        self.apply_both_ways(data, [])
        batched = self.apply_both_ways(
            data, craft_messages(make_sim(data, True), 8))
        assert batched._core.iteration == 8

    def test_snapshot_crossings_split_segments(self, data):
        # 180 samples total, 6 snapshots -> grid points every ~30 samples;
        # 25 messages x 2 samples cross the grid mid-run, so the error
        # snapshot must be taken at intermediate parameters.
        sim = make_sim(data, True)
        messages = craft_messages(sim, 25)
        batched = self.apply_both_ways(data, messages)
        assert batched._grid_pos > 0
        assert batched._snapshot_iters  # crossings actually happened

    def test_max_iterations_guard_drops_tail(self, data):
        messages = craft_messages(make_sim(data, True), 10)
        batched = self.apply_both_ways(data, messages, max_iterations=4)
        assert batched._core.iteration == 4
        assert batched._stopped_reason == "max_iterations"
        # The guard drops post-stop deliveries *before* the core sees
        # them — identical rejected-message accounting both ways (0).
        assert batched._core.rejected_messages == 0

    def test_target_error_stop_mid_run(self, data):
        # All-zero noisy error counts drive the DP estimate to 0, so the
        # rho-stop trips as soon as min_samples_for_error_stop (100) is
        # counted — mid-run at 40 x 3 = 120 samples.
        sim = make_sim(data, True, target_error=0.5)
        messages = craft_messages(sim, 40, num_samples=3)
        zeroed = [
            CheckinMessage(
                device_id=m.device_id, token=m.token, gradient=m.gradient,
                num_samples=m.num_samples, noisy_error_count=0,
                noisy_label_counts=m.noisy_label_counts,
                checkout_iteration=m.checkout_iteration,
            )
            for m in messages
        ]
        batched = self.apply_both_ways(data, zeroed, target_error=0.5)
        assert batched._stopped_reason == "target_error"
        assert 0 < batched._core.iteration < len(zeroed)


class TestQueueLevelDrain:
    """End to end through the heap: contiguity, ordering, the counter."""

    def run_scheduled(self, data, coalesce, interleave=False):
        sim = make_sim(data, coalesce)
        messages = craft_messages(sim, 6)
        observed = []

        def foreign_probe():
            # Reads server state at *fire* time: proves the interleaved
            # event really ran between the two half-runs.
            observed.append(("foreign", sim._core.iteration))

        for k, message in enumerate(messages):
            if interleave and k == 3:
                # A foreign event between two check-in deliveries at the
                # same timestamp: it must fire in exactly this position.
                sim._queue.schedule(1.0, foreign_probe)
            sim._queue.schedule(
                1.0, sim._on_checkin_handler, args=(sim._actors[0], message),
            )
        while sim._queue.step():
            pass
        return sim, observed

    def test_same_timestamp_run_is_coalesced(self, data):
        batched, _ = self.run_scheduled(data, coalesce=True)
        sequential, _ = self.run_scheduled(data, coalesce=False)
        assert batched.coalesced_checkins == 5
        assert sequential.coalesced_checkins == 0
        assert_same_state(batched, sequential)
        # Drained deliveries still count as fired events.
        assert batched.events_fired == sequential.events_fired

    def test_interleaved_event_breaks_the_run_in_order(self, data):
        batched, observed = self.run_scheduled(data, coalesce=True, interleave=True)
        sequential, observed_seq = self.run_scheduled(
            data, coalesce=False, interleave=True)
        # The foreign event observed the server mid-run at the same
        # iteration count on both paths: 3 check-ins applied before it.
        assert observed == observed_seq == [("foreign", 3)]
        assert batched.coalesced_checkins == 2 + 2  # runs of 3 either side
        assert_same_state(batched, sequential)


class TestFullRunEquivalence:
    """Whole simulations with the knob on vs off stay bit-identical."""

    @pytest.mark.parametrize(
        "overrides",
        [
            dict(),
            dict(link_delays=LinkDelays(
                ConstantDelay(0.37), ConstantDelay(0.61), ConstantDelay(0.23))),
            dict(max_iterations=30),
            dict(target_error=0.88),
        ],
    )
    def test_coalesce_flag_preserves_traces(self, data, overrides):
        parts, test = data
        traces = []
        for coalesce in (True, False):
            config = SimulationConfig(
                num_devices=NUM_DEVICES, batch_size=3, num_snapshots=6,
                link_delays=overrides.get(
                    "link_delays", LinkDelays.uniform(0.4)),
                transport="simulated", coalesce_checkins=coalesce,
                **{k: v for k, v in overrides.items() if k != "link_delays"},
            )
            traces.append(CrowdSimulator(
                MulticlassLogisticRegression(DIM, CLASSES), parts, test,
                config, seed=11,
            ).run())
        assert_traces_identical(traces[0], traces[1], context=str(overrides))
