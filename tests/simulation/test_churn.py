"""Tests for device churn (Fig. 2: devices join/leave at any time)."""

import math

import numpy as np
import pytest

from repro.data import iid_partition, make_mnist_like
from repro.models import MulticlassLogisticRegression
from repro.simulation import ChurnSchedule, CrowdSimulator, SimulationConfig
from repro.utils.exceptions import ConfigurationError


class TestChurnSchedule:
    def test_always_on(self):
        schedule = ChurnSchedule.always_on(5)
        assert schedule.num_devices == 5
        assert schedule.is_active(0, 0.0)
        assert schedule.is_active(0, 1e12)

    def test_activity_window(self):
        schedule = ChurnSchedule(np.array([2.0]), np.array([5.0]))
        assert not schedule.is_active(0, 1.0)
        assert schedule.is_active(0, 2.0)
        assert schedule.is_active(0, 4.9)
        assert not schedule.is_active(0, 5.0)

    def test_rejects_leave_before_join(self):
        with pytest.raises(ConfigurationError):
            ChurnSchedule(np.array([5.0]), np.array([2.0]))

    def test_rejects_negative_join(self):
        with pytest.raises(ConfigurationError):
            ChurnSchedule(np.array([-1.0]), np.array([2.0]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            ChurnSchedule(np.array([0.0, 1.0]), np.array([2.0]))

    def test_staggered_joins(self, rng):
        schedule = ChurnSchedule.staggered_joins(100, 50.0, rng)
        assert schedule.join_times.min() >= 0.0
        assert schedule.join_times.max() <= 50.0
        assert np.all(np.isinf(schedule.leave_times))

    def test_random_sessions(self, rng):
        schedule = ChurnSchedule.random_sessions(100, 200.0, 30.0, rng)
        assert np.all(schedule.leave_times > schedule.join_times)
        assert np.all(schedule.leave_times - schedule.join_times >= 1.0)


class TestChurnInSimulation:
    @pytest.fixture(scope="class")
    def data(self):
        return make_mnist_like(num_train=400, num_test=150, seed=0)

    def _run(self, data, churn, num_devices=10, seed=0):
        train, test = data
        parts = iid_partition(train, num_devices, np.random.default_rng(seed))
        config = SimulationConfig(
            num_devices=num_devices, learning_rate_constant=30.0, churn=churn,
        )
        return CrowdSimulator(
            MulticlassLogisticRegression(50, 10), parts, test, config, seed=seed
        ).run()

    def test_config_validates_schedule_size(self, data):
        train, test = data
        with pytest.raises(ConfigurationError):
            SimulationConfig(num_devices=10, churn=ChurnSchedule.always_on(3))

    def test_always_on_matches_no_churn(self, data):
        baseline = self._run(data, churn=None)
        always = self._run(data, churn=ChurnSchedule.always_on(10))
        assert always.total_samples_consumed == baseline.total_samples_consumed
        assert np.array_equal(always.final_parameters, baseline.final_parameters)

    def test_early_leavers_contribute_less(self, data):
        # Half the devices leave after 10 time units (~10 samples each).
        joins = np.zeros(10)
        leaves = np.full(10, math.inf)
        leaves[:5] = 10.0
        trace = self._run(data, churn=ChurnSchedule(joins, leaves))
        full = self._run(data, churn=None)
        assert trace.total_samples_consumed < full.total_samples_consumed
        # Learning still completes with the surviving crowd.
        assert trace.curve.final_error < 0.5

    def test_late_joiners_still_contribute(self, data):
        joins = np.zeros(10)
        joins[5:] = 15.0  # half the crowd joins late
        churn = ChurnSchedule(joins, np.full(10, math.inf))
        trace = self._run(data, churn=churn)
        # Everyone eventually drains their stream.
        assert trace.total_samples_consumed == 400

    def test_rolling_sessions_keep_learning(self, data):
        rng = np.random.default_rng(7)
        churn = ChurnSchedule.random_sessions(10, horizon=30.0,
                                              mean_session=25.0, rng=rng)
        trace = self._run(data, churn=churn)
        assert trace.server_iterations > 20
        assert trace.curve.final_error < trace.curve.errors[0]
