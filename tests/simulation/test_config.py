"""Tests for the simulation configuration."""

import math

import pytest

from repro.network import LinkDelays
from repro.simulation import SimulationConfig
from repro.utils.exceptions import ConfigurationError


class TestValidation:
    def test_defaults(self):
        config = SimulationConfig(num_devices=10)
        assert config.batch_size == 1
        assert math.isinf(config.epsilon)
        assert config.link_delays.mean_round_trip == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_devices": 0},
            {"num_devices": 5, "batch_size": 0},
            {"num_devices": 5, "learning_rate_constant": 0.0},
            {"num_devices": 5, "l2_regularization": -1.0},
            {"num_devices": 5, "sampling_rate": 0.0},
            {"num_devices": 5, "num_passes": 0},
            {"num_devices": 5, "holdout_fraction": 1.0},
            {"num_devices": 5, "buffer_factor": 0},
            {"num_devices": 5, "num_snapshots": 0},
            {"num_devices": 5, "projection_radius": 0.0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigurationError):
            SimulationConfig(**kwargs)

    def test_unconstrained_projection_allowed(self):
        config = SimulationConfig(num_devices=5, projection_radius=None)
        assert config.projection_radius is None


class TestHttpTransport:
    def test_http_requires_server_url(self):
        with pytest.raises(ConfigurationError, match="server_url"):
            SimulationConfig(num_devices=5, transport="http")

    def test_server_url_requires_http_transport(self):
        with pytest.raises(ConfigurationError, match="server_url"):
            SimulationConfig(num_devices=5, server_url="http://127.0.0.1:1")

    def test_http_resolves_to_itself(self):
        config = SimulationConfig(
            num_devices=5, transport="http", server_url="http://127.0.0.1:1"
        )
        assert config.resolved_transport() == "http"

    def test_auto_never_selects_http(self):
        assert SimulationConfig(num_devices=5).resolved_transport() == "direct"

    def test_http_rejects_delays_and_outages(self):
        from repro.network.outage import BernoulliOutage

        with pytest.raises(ConfigurationError, match="zero link delays"):
            SimulationConfig(
                num_devices=5, transport="http", server_url="http://127.0.0.1:1",
                link_delays=LinkDelays.uniform(0.5),
            )
        with pytest.raises(ConfigurationError, match="reliable"):
            SimulationConfig(
                num_devices=5, transport="http", server_url="http://127.0.0.1:1",
                outage=BernoulliOutage(0.5),
            )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"learning_rate_constant": 30.0},
            {"projection_radius": 10.0},
            {"max_iterations": 50},
            {"target_error": 0.2},
        ],
    )
    def test_http_rejects_server_owned_knobs(self, kwargs):
        """Knobs the live server owns are rejected, not silently ignored."""
        with pytest.raises(ConfigurationError, match="owned by the live server"):
            SimulationConfig(
                num_devices=5, transport="http",
                server_url="http://127.0.0.1:1", **kwargs,
            )

    def test_unknown_transport_rejected(self):
        with pytest.raises(ConfigurationError, match="transport"):
            SimulationConfig(num_devices=5, transport="grpc")


class TestDelayUnits:
    def test_delta_conversion(self):
        """Δ = 1/(M·F_s): a k·Δ delay spans k crowd-wide samples."""
        config = SimulationConfig(num_devices=100, sampling_rate=2.0)
        tau = config.delay_in_sample_units(1000)
        assert tau == pytest.approx(1000 / (100 * 2.0))

    def test_one_delta_is_one_sample_interval(self):
        config = SimulationConfig(num_devices=50, sampling_rate=1.0)
        # During 1Δ the crowd generates exactly one sample on average.
        tau = config.delay_in_sample_units(1)
        assert tau * 50 * 1.0 == pytest.approx(1.0)
