"""Tests for the simulation configuration."""

import math

import pytest

from repro.network import LinkDelays
from repro.simulation import SimulationConfig
from repro.utils.exceptions import ConfigurationError


class TestValidation:
    def test_defaults(self):
        config = SimulationConfig(num_devices=10)
        assert config.batch_size == 1
        assert math.isinf(config.epsilon)
        assert config.link_delays.mean_round_trip == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_devices": 0},
            {"num_devices": 5, "batch_size": 0},
            {"num_devices": 5, "learning_rate_constant": 0.0},
            {"num_devices": 5, "l2_regularization": -1.0},
            {"num_devices": 5, "sampling_rate": 0.0},
            {"num_devices": 5, "num_passes": 0},
            {"num_devices": 5, "holdout_fraction": 1.0},
            {"num_devices": 5, "buffer_factor": 0},
            {"num_devices": 5, "num_snapshots": 0},
            {"num_devices": 5, "projection_radius": 0.0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigurationError):
            SimulationConfig(**kwargs)

    def test_unconstrained_projection_allowed(self):
        config = SimulationConfig(num_devices=5, projection_radius=None)
        assert config.projection_radius is None


class TestDelayUnits:
    def test_delta_conversion(self):
        """Δ = 1/(M·F_s): a k·Δ delay spans k crowd-wide samples."""
        config = SimulationConfig(num_devices=100, sampling_rate=2.0)
        tau = config.delay_in_sample_units(1000)
        assert tau == pytest.approx(1000 / (100 * 2.0))

    def test_one_delta_is_one_sample_interval(self):
        config = SimulationConfig(num_devices=50, sampling_rate=1.0)
        # During 1Δ the crowd generates exactly one sample on average.
        tau = config.delay_in_sample_units(1)
        assert tau * 50 * 1.0 == pytest.approx(1.0)
