"""Shared machinery for the recorded-trace regression suite.

The legacy ``arrival_mode="per_sample"`` scheduler used to be the
equivalence oracle for the batch-arrival fast path.  It is retired; in its
place, the traces it certified are recorded once in
``tests/data/golden_traces.json`` and every future refactor of the
protocol stack must reproduce them **bit for bit**.  This module holds the
figure-level configuration matrix (the same knobs the retired cross-path
suite exercised) and the exact-fingerprint encoding.

Floats are fingerprinted losslessly: scalars via ``float.hex()``, arrays
via SHA-256 over their raw little-endian bytes (the learned parameter
vector additionally as per-element hex, so value-level comparison stays
possible).  Fingerprints therefore pin the exact IEEE-754 bits, not a
tolerance — matching the project's "bit-identical traces" contract on
the platform that recorded them.

Because those bits are a property of the numpy/BLAS build, comparison is
**tolerance-tiered** (:func:`compare_fingerprint`): an exact match
passes silently; on a mismatch, discrete trajectory facts (iteration
grids, message counts, stop reason) must still match exactly while the
float-valued fields (curve errors, final parameters, ε spend) may drift
within ``REPRO_GOLDEN_ATOL`` (default 1e-6) — the pure-rounding
signature of a different BLAS — producing a warning instead of a
failure.  Set ``REPRO_GOLDEN_ATOL=0`` to forbid the fallback, or
regenerate platform-native goldens with
``REPRO_REGEN_GOLDEN=1 python -m pytest tests/simulation/test_trace_regression.py``.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from typing import Any, Dict, List

import numpy as np

from repro.core.adaptive import StalenessAdaptiveBatch
from repro.data import iid_partition, make_mnist_like
from repro.models import MulticlassLogisticRegression
from repro.network.latency import ConstantDelay, LinkDelays
from repro.network.outage import BernoulliOutage, BurstyOutage, WindowedOutage
from repro.simulation import ChurnSchedule, CrowdSimulator, SimulationConfig

GOLDEN_PATH = os.path.join(
    os.path.dirname(os.path.dirname(__file__)), "data", "golden_traces.json"
)

NUM_DEVICES = 10
SEED = 7


def _churn(num_devices: int) -> ChurnSchedule:
    return ChurnSchedule.random_sessions(
        num_devices, horizon=20.0, mean_session=12.0,
        rng=np.random.default_rng(5),
    )


def make_config_cases() -> Dict[str, dict]:
    """One entry per figure-level knob combination (Figs. 3-9).

    Keys are test ids; values are ``SimulationConfig`` kwargs
    (num_devices/num_snapshots get defaults).  Mirrors the retired
    cross-path equivalence matrix: delays, privacy, holdouts, outages,
    churn, adaptive batch policies, buffer pressure, and both stopping
    rules.
    """
    return {
        # Figs. 4/7: no delay, no privacy, pure SGD (b = 1).
        "fig4_zero_delay_b1": dict(batch_size=1),
        # Fig. 5/8: minibatching without delay.
        "fig5_minibatch_b10": dict(batch_size=10),
        # Fig. 5/8: finite privacy budget (noise draws share the device RNG
        # stream with holdout draws — ordering must survive batching).
        "fig5_privacy_eps1": dict(batch_size=5, epsilon=1.0),
        # Figs. 6/9: uniform link delays, b = 1 and b > 1.
        "fig6_uniform_delay_b1": dict(
            batch_size=1, link_delays=LinkDelays.uniform(0.37)),
        "fig6_uniform_delay_b5": dict(
            batch_size=5, link_delays=LinkDelays.uniform(0.7)),
        # Remark 2 holdout, with and without privacy noise.
        "holdout": dict(batch_size=5, holdout_fraction=0.3),
        "holdout_privacy": dict(
            batch_size=4, holdout_fraction=0.85, epsilon=2.0,
            link_delays=LinkDelays.uniform(0.3)),
        # Remark 1 outages: memoryless, scheduled windows, bursty.
        "outage_bernoulli": dict(
            batch_size=5, link_delays=LinkDelays.uniform(0.7),
            outage=BernoulliOutage(0.25)),
        "outage_windowed": dict(
            batch_size=4, link_delays=LinkDelays.uniform(0.31),
            outage=WindowedOutage([(3.0, 9.0), (20.0, 26.0)])),
        "outage_bursty": dict(
            batch_size=4, link_delays=LinkDelays.uniform(0.31),
            outage=BurstyOutage(8.0, 3.0, seed=3)),
        # Fig. 2 churn (join/leave mid-run), with and without delays.
        "churn_uniform_delay": dict(
            batch_size=3, churn=_churn(NUM_DEVICES),
            link_delays=LinkDelays.uniform(0.41)),
        "churn_zero_delay": dict(batch_size=2, churn=_churn(NUM_DEVICES)),
        # §IV-B3 adaptive minibatch policy (b changes between check-outs).
        "adaptive_batch": dict(
            batch_size=2, link_delays=LinkDelays.uniform(0.9),
            batch_policy_factory=lambda: StalenessAdaptiveBatch(
                target_staleness=4, max_batch=16)),
        # Buffer capacity pressure: long flights overflow B and drop samples.
        "buffer_pressure": dict(
            batch_size=3, buffer_factor=2, link_delays=LinkDelays.uniform(5.0)),
        "buffer_pressure_outage": dict(
            batch_size=3, buffer_factor=1, link_delays=LinkDelays.uniform(5.0),
            outage=BernoulliOutage(0.3)),
        # Both Algorithm 2 stopping rules.
        "stop_max_iterations": dict(batch_size=2, max_iterations=30),
        "stop_target_error": dict(batch_size=2, target_error=0.88),
        # Multiple passes re-shuffle the local stream per pass.
        "multi_pass": dict(
            batch_size=4, num_passes=3, link_delays=LinkDelays.uniform(0.53)),
        # Deterministic delays exercise the tie-breaking caveat boundary.
        "constant_delay": dict(
            batch_size=3,
            link_delays=LinkDelays(
                ConstantDelay(0.37), ConstantDelay(0.61), ConstantDelay(0.23))),
    }


def make_data():
    return make_mnist_like(num_train=400, num_test=80, seed=0)


def run_case(data, overrides: dict, **config_extra):
    """Run one golden configuration; returns (trace, events_fired)."""
    train, test = data
    config = SimulationConfig(
        num_devices=NUM_DEVICES, num_snapshots=8, **overrides, **config_extra,
    )
    parts = iid_partition(train, NUM_DEVICES, np.random.default_rng(0))
    simulator = CrowdSimulator(
        MulticlassLogisticRegression(50, 10), parts, test, config, seed=SEED,
    )
    return simulator.run(), simulator.events_fired


def _array_digest(array: np.ndarray) -> Dict[str, Any]:
    array = np.ascontiguousarray(array)
    return {
        "dtype": str(array.dtype),
        "shape": list(array.shape),
        "sha256": hashlib.sha256(array.tobytes()).hexdigest(),
    }


def trace_fingerprint(trace) -> Dict[str, Any]:
    """Lossless, JSON-stable fingerprint of a :class:`RunTrace`."""
    comm = trace.communication
    return {
        "curve_iterations": [int(i) for i in trace.curve.iterations],
        "curve_errors": [float(e).hex() for e in trace.curve.errors],
        "online_errors": _array_digest(trace.online_errors),
        "online_error_count": int(np.sum(trace.online_errors)),
        "final_parameters": _array_digest(trace.final_parameters),
        # Value-level copy of the learned vector (lossless hex): the
        # tier-2 atol comparison needs values, not just the bit digest.
        "final_parameters_values": [
            float(v).hex() for v in trace.final_parameters
        ],
        "staleness": _array_digest(trace.staleness),
        "staleness_sum": int(np.sum(trace.staleness)) if trace.staleness.size else 0,
        "total_samples_consumed": int(trace.total_samples_consumed),
        "server_iterations": int(trace.server_iterations),
        "per_sample_epsilon": float(trace.per_sample_epsilon).hex(),
        "stop_reason": trace.stop_reason,
        "communication": {
            "checkout_requests": comm.checkout_requests,
            "checkouts_delivered": comm.checkouts_delivered,
            "checkins_delivered": comm.checkins_delivered,
            "messages_dropped": comm.messages_dropped,
            "uplink_floats": comm.uplink_floats,
            "downlink_floats": comm.downlink_floats,
        },
    }


GOLDEN_ATOL_ENV = "REPRO_GOLDEN_ATOL"
DEFAULT_GOLDEN_ATOL = 1e-6

#: Discrete trajectory facts: different BLAS rounding never changes these
#: unless the run genuinely diverged, so they must match in every tier.
#: (Staleness is schedule-derived — event ordering, not float values — so
#: it is exact even on a foreign BLAS; a prediction flip big enough to
#: change the schedule also changes server_iterations and fails here.)
EXACT_FIELDS = (
    "curve_iterations",
    "total_samples_consumed",
    "server_iterations",
    "stop_reason",
    "communication",
    "staleness",
    "staleness_sum",
)
#: Float-valued fields allowed to drift within atol in tier 2.
FLOAT_LIST_FIELDS = ("curve_errors", "final_parameters_values")
FLOAT_SCALAR_FIELDS = ("per_sample_epsilon",)
#: Bit-level digests and prediction-sensitive counts, excused in tier 2:
#: they pin exact IEEE-754 bits (or error-side-of-boundary outcomes),
#: which differ on another BLAS *by construction* whenever tier 2 is in
#: play at all.
BIT_LEVEL_FIELDS = (
    "online_errors",
    "online_error_count",
    "final_parameters",
)
#: Every fingerprint field must appear in exactly one tier above; a field
#: outside this union fails tier 2 instead of being silently excused.
TIERED_FIELDS = frozenset(
    EXACT_FIELDS + FLOAT_LIST_FIELDS + FLOAT_SCALAR_FIELDS + BIT_LEVEL_FIELDS
)


def golden_atol() -> float:
    """Tier-2 tolerance from ``REPRO_GOLDEN_ATOL`` (<= 0 disables tier 2)."""
    raw = os.environ.get(GOLDEN_ATOL_ENV, "")
    if not raw:
        return DEFAULT_GOLDEN_ATOL
    return float(raw)


def _hex_values(field: Any) -> np.ndarray:
    if not isinstance(field, list):
        raise TypeError(f"expected a hex-float list, got {type(field).__name__}")
    return np.array([float.fromhex(v) for v in field], dtype=np.float64)


def compare_fingerprint(
    name: str,
    fingerprint: Dict[str, Any],
    expected: Dict[str, Any],
    atol: float = None,
) -> List[str]:
    """Tiered golden comparison; returns a list of failure descriptions.

    Tier 1 — exact: every recorded field matches bit for bit (the union
    of keys is compared, so a fingerprint field added without
    regenerating the golden file fails loudly instead of being silently
    skipped).  Tier 2 — atol fallback for foreign-BLAS hardware:
    discrete fields must still match exactly; float-valued fields may
    differ by at most ``atol`` elementwise; bit-level digests are
    excused.  A tier-2 pass emits a :class:`UserWarning` naming the
    largest drift, so CI logs show the platform is off-golden even
    though the job stays green.
    """
    differing = [
        key for key in sorted(set(expected) | set(fingerprint))
        if fingerprint.get(key) != expected.get(key)
    ]
    if not differing:
        return []
    if atol is None:
        atol = golden_atol()
    if atol <= 0:
        return [f"{name}: trace differs from golden on {differing} "
                f"(tier-2 fallback disabled via {GOLDEN_ATOL_ENV})"]

    problems = []
    for key in differing:
        if key not in TIERED_FIELDS:
            # A fingerprint/golden field with no assigned tier: fail
            # loudly (the tier-1 guarantee) instead of excusing it.
            problems.append(
                f"{name}: field {key!r} has no comparison tier; assign it "
                f"in _golden.py and regenerate the golden file"
            )
    for key in EXACT_FIELDS:
        if fingerprint.get(key) != expected.get(key):
            problems.append(
                f"{name}: discrete field {key!r} differs "
                f"(no tolerance applies): {expected.get(key)!r} -> "
                f"{fingerprint.get(key)!r}"
            )
    worst = 0.0
    for key in FLOAT_LIST_FIELDS:
        try:
            got = _hex_values(fingerprint.get(key))
            want = _hex_values(expected.get(key))
        except (TypeError, ValueError) as error:
            problems.append(f"{name}: cannot value-compare {key!r}: {error}")
            continue
        if got.shape != want.shape:
            problems.append(
                f"{name}: {key!r} length {got.shape} != golden {want.shape}"
            )
            continue
        drift = float(np.max(np.abs(got - want))) if got.size else 0.0
        worst = max(worst, drift)
        if drift > atol:
            problems.append(
                f"{name}: {key!r} drifts by {drift:.3e} > atol {atol:.3e}"
            )
    for key in FLOAT_SCALAR_FIELDS:
        try:
            got = float.fromhex(fingerprint.get(key))
            want = float.fromhex(expected.get(key))
        except (TypeError, ValueError) as error:
            problems.append(f"{name}: cannot value-compare {key!r}: {error}")
            continue
        drift = abs(got - want)
        worst = max(worst, drift)
        if drift > atol:
            problems.append(
                f"{name}: {key!r} drifts by {drift:.3e} > atol {atol:.3e}"
            )
    if problems:
        return problems
    float_fields_differ = any(
        key in differing
        for key in FLOAT_LIST_FIELDS + FLOAT_SCALAR_FIELDS
    )
    if not float_fields_differ:
        # No float field differs at all (not even in representation, so
        # this is not ±0.0 or low-bit BLAS drift): the only differing
        # fields are the bit-level/prediction ones, which is a genuine
        # regression (e.g. in online error recording) — no excuse
        # applies.
        return [
            f"{name}: only bit-level fields differ ({differing}) while "
            f"every float field is bit-exact — that is a regression, "
            f"not BLAS drift"
        ]
    warnings.warn(
        f"golden trace {name!r}: bit-exact match failed on {differing}; "
        f"accepted at atol {atol:.1e} (max float drift {worst:.3e}). "
        f"This platform's BLAS produces different low bits — regenerate "
        f"platform-native goldens with REPRO_REGEN_GOLDEN=1 for exact "
        f"pinning.",
        UserWarning,
        stacklevel=2,
    )
    return []


def load_golden() -> Dict[str, Any]:
    with open(GOLDEN_PATH) as handle:
        return json.load(handle)


def save_golden(golden: Dict[str, Any]) -> None:
    os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
    with open(GOLDEN_PATH, "w") as handle:
        json.dump(golden, handle, indent=1, sort_keys=True)
        handle.write("\n")
