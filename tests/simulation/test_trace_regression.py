"""Recorded-trace regression suite: the bit-identical protocol contract.

Golden fingerprints in ``tests/data/golden_traces.json`` were recorded
from the event-driven scheduler that the retired
``arrival_mode="per_sample"`` oracle had certified, across the full
figure-level configuration matrix (Figs. 3-9 knobs: delays, privacy,
holdouts, outages, churn, adaptive batching, buffer pressure, stopping
rules).  Every configuration must keep producing those exact traces —
through the :class:`~repro.network.transport.SimulatedTransport` path
always, and through the fused
:class:`~repro.network.transport.DirectTransport` path wherever it is
eligible (zero delay, no outage).  This is the contract that lets the
run store serve results recorded before the transport redesign.

Regenerate after an *intentional* trace change (or on a platform with a
different BLAS) with::

    REPRO_REGEN_GOLDEN=1 python -m pytest tests/simulation/test_trace_regression.py
"""

import dataclasses
import os

import numpy as np
import pytest

from repro.data import iid_partition
from repro.evaluation import assert_traces_identical
from repro.models import MulticlassLogisticRegression
from repro.network.latency import LinkDelays
from repro.simulation import CrowdSimulator, SimulationConfig

from tests.simulation import _golden as golden_mod

CONFIG_CASES = golden_mod.make_config_cases()
REGENERATE = os.environ.get("REPRO_REGEN_GOLDEN", "") not in ("", "0")


@pytest.fixture(scope="module")
def data():
    return golden_mod.make_data()


@pytest.fixture(scope="module")
def golden():
    if REGENERATE:
        return {}
    return golden_mod.load_golden()


def _check(name, fingerprint, golden):
    if REGENERATE:
        stored = golden_mod.load_golden()
        stored[name] = fingerprint
        golden_mod.save_golden(stored)
        return
    assert name in golden, (
        f"no golden trace recorded for {name!r}; run with REPRO_REGEN_GOLDEN=1"
    )
    # Tiered: exact (bit-for-bit) first, then the REPRO_GOLDEN_ATOL
    # fallback for foreign-BLAS hardware — see _golden.compare_fingerprint.
    problems = golden_mod.compare_fingerprint(name, fingerprint, golden[name])
    assert not problems, "\n".join(problems)


def _zero_delay(overrides) -> bool:
    config = SimulationConfig(num_devices=golden_mod.NUM_DEVICES, **overrides)
    return config.direct_transport_eligible


@pytest.mark.parametrize("name", sorted(CONFIG_CASES))
def test_simulated_transport_matches_golden(data, golden, name):
    """The event-driven path reproduces the recorded traces bit for bit."""
    overrides = CONFIG_CASES[name]
    trace, _ = golden_mod.run_case(data, overrides, transport="simulated")
    _check(name, golden_mod.trace_fingerprint(trace), golden)


@pytest.mark.parametrize(
    "name", sorted(n for n, o in CONFIG_CASES.items() if _zero_delay(o))
)
def test_direct_transport_matches_golden(data, golden, name):
    """Fused synchronous rounds are bit-identical to the recorded traces —
    and fire strictly fewer heap events than the event-driven path."""
    overrides = CONFIG_CASES[name]
    direct_trace, direct_events = golden_mod.run_case(
        data, overrides, transport="direct"
    )
    _check(name, golden_mod.trace_fingerprint(direct_trace), golden)
    simulated_trace, simulated_events = golden_mod.run_case(
        data, overrides, transport="simulated"
    )
    assert_traces_identical(direct_trace, simulated_trace, context=name)
    # The whole point of the fused path: no per-message heap events.
    assert direct_events < simulated_events


def test_auto_transport_selects_direct_when_eligible(data):
    train, test = data
    parts = iid_partition(train, 10, np.random.default_rng(0))
    zero = CrowdSimulator(
        MulticlassLogisticRegression(50, 10), parts, test,
        SimulationConfig(num_devices=10), seed=0,
    )
    assert zero.transport.synchronous
    delayed = CrowdSimulator(
        MulticlassLogisticRegression(50, 10), parts, test,
        SimulationConfig(num_devices=10, link_delays=LinkDelays.uniform(0.5)),
        seed=0,
    )
    assert not delayed.transport.synchronous


def test_single_device(data, golden):
    train, test = data
    config = SimulationConfig(num_devices=1, num_snapshots=8, batch_size=5,
                              link_delays=LinkDelays.uniform(0.2))
    parts = iid_partition(train, 1, np.random.default_rng(0))
    trace = CrowdSimulator(
        MulticlassLogisticRegression(50, 10), parts, test, config,
        seed=golden_mod.SEED,
    ).run()
    _check("single_device", golden_mod.trace_fingerprint(trace), golden)


def test_empty_device_dataset(data, golden):
    """A device with no local data stays silent (both transports)."""
    train, test = data
    parts = iid_partition(train, 2, np.random.default_rng(0))
    empty = dataclasses.replace(
        parts[0],
        features=parts[0].features[:0],
        labels=parts[0].labels[:0],
    )
    traces = []
    for transport in ("direct", "simulated"):
        config = SimulationConfig(num_devices=3, batch_size=2, num_snapshots=4,
                                  transport=transport)
        simulator = CrowdSimulator(
            MulticlassLogisticRegression(50, 10),
            [parts[0], empty, parts[1]], test, config, seed=3,
        )
        traces.append(simulator.run())
    assert_traces_identical(traces[0], traces[1], context="empty_device")
    _check("empty_device", golden_mod.trace_fingerprint(traces[0]), golden)


def test_seed_sensitivity_preserved(data):
    """Different seeds still give different runs."""
    train, test = data
    config = SimulationConfig(num_devices=10, batch_size=5, num_snapshots=8,
                              link_delays=LinkDelays.uniform(0.5))
    parts = iid_partition(train, 10, np.random.default_rng(0))
    traces = [
        CrowdSimulator(MulticlassLogisticRegression(50, 10), parts, test,
                       config, seed=seed).run()
        for seed in (0, 1)
    ]
    assert not np.array_equal(traces[0].final_parameters,
                              traces[1].final_parameters)
