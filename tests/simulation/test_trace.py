"""Tests for RunTrace and CommunicationStats."""

import numpy as np
import pytest

from repro.evaluation import ErrorCurve
from repro.simulation import CommunicationStats, RunTrace


def make_trace(staleness=None, online=None):
    return RunTrace(
        curve=ErrorCurve(np.array([1, 2]), np.array([0.5, 0.25])),
        online_errors=np.asarray(online if online is not None else [True, False]),
        final_parameters=np.zeros(3),
        total_samples_consumed=2,
        server_iterations=2,
        communication=CommunicationStats(uplink_floats=10, downlink_floats=5),
        per_sample_epsilon=1.0,
        stop_reason="data_exhausted",
        staleness=np.asarray(staleness if staleness is not None else [], dtype=np.int64),
    )


class TestRunTrace:
    def test_final_error(self):
        assert make_trace().final_error == 0.25

    def test_time_averaged_error(self):
        trace = make_trace(online=[True, True, False, False])
        assert np.allclose(trace.time_averaged_error(), [1.0, 1.0, 2 / 3, 0.5])

    def test_staleness_stats(self):
        trace = make_trace(staleness=[0, 2, 4])
        assert trace.mean_staleness == pytest.approx(2.0)
        assert trace.max_staleness == 4

    def test_staleness_empty(self):
        trace = make_trace(staleness=[])
        assert trace.mean_staleness == 0.0
        assert trace.max_staleness == 0


class TestCommunicationStats:
    def test_total_floats(self):
        stats = CommunicationStats(uplink_floats=7, downlink_floats=3)
        assert stats.total_floats == 10

    def test_defaults_zero(self):
        stats = CommunicationStats()
        assert stats.total_floats == 0
        assert stats.checkout_requests == 0


class TestSimulatorStalenessIntegration:
    def test_zero_delay_zero_staleness_with_b1(self):
        """With no delays and chained zero-delay events, a check-in applies
        before any other update can interleave."""
        from repro.data import iid_partition, make_mnist_like
        from repro.models import MulticlassLogisticRegression
        from repro.simulation import CrowdSimulator, SimulationConfig

        train, test = make_mnist_like(num_train=200, num_test=100)
        parts = iid_partition(train, 5, np.random.default_rng(0))
        config = SimulationConfig(num_devices=5, learning_rate_constant=30.0)
        trace = CrowdSimulator(
            MulticlassLogisticRegression(50, 10), parts, test, config, seed=0
        ).run()
        assert trace.max_staleness == 0

    def test_delay_induces_staleness(self):
        from repro.data import iid_partition, make_mnist_like
        from repro.models import MulticlassLogisticRegression
        from repro.network import LinkDelays
        from repro.simulation import CrowdSimulator, SimulationConfig

        train, test = make_mnist_like(num_train=400, num_test=100)
        parts = iid_partition(train, 20, np.random.default_rng(0))
        config = SimulationConfig(
            num_devices=20, link_delays=LinkDelays.uniform(3.0),
            learning_rate_constant=30.0,
        )
        trace = CrowdSimulator(
            MulticlassLogisticRegression(50, 10), parts, test, config, seed=0
        ).run()
        assert trace.mean_staleness > 0
