"""Tests for the multi-trial experiment runner."""

import numpy as np
import pytest

from repro.data import dirichlet_partition, make_mnist_like
from repro.models import MulticlassLogisticRegression
from repro.simulation import SimulationConfig, run_crowd_trials


@pytest.fixture(scope="module")
def data():
    return make_mnist_like(num_train=300, num_test=150, seed=0)


def factory():
    return MulticlassLogisticRegression(50, 10)


class TestRunner:
    def test_trial_count(self, data):
        train, test = data
        config = SimulationConfig(num_devices=5, learning_rate_constant=30.0)
        report = run_crowd_trials(factory, train, test, config, num_trials=3)
        assert report.num_trials == 3

    def test_mean_curve_averages_trials(self, data):
        train, test = data
        config = SimulationConfig(num_devices=5, epsilon=1.0,
                                  learning_rate_constant=30.0)
        report = run_crowd_trials(factory, train, test, config, num_trials=3)
        grid = report.mean_curve.iterations
        manual = np.mean(
            [[t.curve.value_at(int(i)) for i in grid] for t in report.traces], axis=0
        )
        assert np.allclose(report.mean_curve.errors, manual)

    def test_reproducible_given_base_seed(self, data):
        train, test = data
        config = SimulationConfig(num_devices=5, epsilon=1.0,
                                  learning_rate_constant=30.0)
        a = run_crowd_trials(factory, train, test, config, num_trials=2, base_seed=9)
        b = run_crowd_trials(factory, train, test, config, num_trials=2, base_seed=9)
        assert np.array_equal(a.mean_curve.errors, b.mean_curve.errors)

    def test_trials_differ_from_each_other(self, data):
        train, test = data
        config = SimulationConfig(num_devices=5, epsilon=1.0,
                                  learning_rate_constant=30.0)
        report = run_crowd_trials(factory, train, test, config, num_trials=2)
        a, b = report.traces
        assert not np.array_equal(a.final_parameters, b.final_parameters)

    def test_custom_partition(self, data):
        train, test = data
        config = SimulationConfig(num_devices=5, learning_rate_constant=30.0)
        report = run_crowd_trials(
            factory, train, test, config, num_trials=1,
            partition=lambda ds, m, rng: dirichlet_partition(ds, m, rng, alpha=0.2),
        )
        assert report.traces[0].total_samples_consumed == len(train)

    def test_rejects_zero_trials(self, data):
        train, test = data
        config = SimulationConfig(num_devices=5)
        with pytest.raises(ValueError):
            run_crowd_trials(factory, train, test, config, num_trials=0)

    def test_tail_error_exposed(self, data):
        train, test = data
        config = SimulationConfig(num_devices=5, num_passes=3,
                                  learning_rate_constant=30.0)
        report = run_crowd_trials(factory, train, test, config, num_trials=1)
        assert 0.0 <= report.tail_error() <= 1.0
        assert 0.0 <= report.final_error <= 1.0
