"""Tests for the Section IV analysis models (repro.analysis)."""

import math

import numpy as np
import pytest

from repro.analysis import (
    Approach,
    SystemShape,
    centralized_input_noise_power,
    convergence_rate_bound,
    crowd_gradient_moments,
    decentralized_error_inflation,
    device_flops_per_sample,
    expected_staleness,
    minimum_batch_for_overhead,
    server_flops_per_sample,
    staleness_for_uniform_delay,
    total_network_floats_per_sample,
    uplink_floats_per_sample,
)


@pytest.fixture
def shape():
    return SystemShape(num_devices=1000, num_features=50, num_classes=10,
                       batch_size=20, sampling_rate=1.0)


class TestGradientMoments:
    def test_eq13_total(self):
        moments = crowd_gradient_moments(4.0, 500, 20, 10.0)
        assert moments.total == pytest.approx(4.0 / 20 + 32 * 500 / (20 * 10.0) ** 2)

    def test_overhead_fraction_in_unit_interval(self):
        moments = crowd_gradient_moments(4.0, 500, 20, 10.0)
        assert 0.0 <= moments.privacy_overhead <= 1.0

    def test_non_private_overhead_zero(self):
        moments = crowd_gradient_moments(4.0, 500, 20, math.inf)
        assert moments.privacy_overhead == 0.0

    def test_overhead_shrinks_with_batch(self):
        small = crowd_gradient_moments(4.0, 500, 1, 10.0)
        large = crowd_gradient_moments(4.0, 500, 50, 10.0)
        assert large.privacy_overhead < small.privacy_overhead


class TestCentralizedNoise:
    def test_formula(self):
        # D * 8 / eps^2.
        assert centralized_input_noise_power(50, 2.0) == pytest.approx(100.0)

    def test_constant_in_batch(self):
        """The structural weakness: no b appears in the formula at all."""
        assert centralized_input_noise_power(50, 1.0) == centralized_input_noise_power(
            50, 1.0
        )

    def test_zero_when_non_private(self):
        assert centralized_input_noise_power(50, math.inf) == 0.0


class TestMinimumBatch:
    def test_returns_one_when_non_private(self):
        assert minimum_batch_for_overhead(1.0, 500, math.inf) == 1

    def test_stronger_privacy_needs_bigger_batch(self):
        weak = minimum_batch_for_overhead(1.0, 500, 100.0)
        strong = minimum_batch_for_overhead(1.0, 500, 1.0)
        assert strong > weak

    def test_batch_satisfies_requested_overhead(self):
        eps, dim, power, cap = 10.0, 500, 1.0, 0.5
        b = minimum_batch_for_overhead(power, dim, eps, cap)
        moments = crowd_gradient_moments(power, dim, b, eps)
        assert moments.privacy_overhead <= cap + 1e-9

    def test_rejects_bad_overhead(self):
        with pytest.raises(ValueError):
            minimum_batch_for_overhead(1.0, 500, 1.0, max_overhead=1.0)


class TestDecentralizedInflation:
    def test_sqrt_over_log(self):
        assert decentralized_error_inflation(1000) == pytest.approx(
            math.sqrt(1000) / math.log(1000)
        )

    def test_single_device_no_inflation(self):
        assert decentralized_error_inflation(1) == 1.0

    def test_grows_with_m(self):
        assert decentralized_error_inflation(10_000) > decentralized_error_inflation(100)


class TestConvergenceBound:
    def test_rg_over_sqrt_t(self):
        assert convergence_rate_bound(4.0, 10.0, 100) == pytest.approx(
            10.0 * 2.0 / 10.0
        )

    def test_decreases_in_iterations(self):
        assert convergence_rate_bound(1.0, 1.0, 10_000) < convergence_rate_bound(
            1.0, 1.0, 100
        )


class TestScalabilityModels:
    def test_crowd_uplink_is_centralized_over_b_scaled(self, shape):
        crowd = uplink_floats_per_sample(shape, Approach.CROWD)
        central = uplink_floats_per_sample(shape, Approach.CENTRALIZED)
        # 512/20 = 25.6 vs 51 — the b/2-ish reduction for C=10, D=50, b=20.
        assert crowd < central

    def test_decentralized_has_no_traffic(self, shape):
        assert total_network_floats_per_sample(shape, Approach.DECENTRALIZED) == 0.0

    def test_crowd_traffic_scales_inversely_with_b(self):
        def traffic(b):
            shape = SystemShape(1000, 50, 10, batch_size=b)
            return total_network_floats_per_sample(shape, Approach.CROWD)

        assert traffic(20) == pytest.approx(traffic(1) / 20)

    def test_server_load_ordering(self, shape):
        """IV-B1: centralized server works hardest, decentralized not at all."""
        central = server_flops_per_sample(shape, Approach.CENTRALIZED)
        crowd = server_flops_per_sample(shape, Approach.CROWD)
        local = server_flops_per_sample(shape, Approach.DECENTRALIZED)
        assert central > crowd > local == 0.0

    def test_device_load_ordering(self, shape):
        """Crowd devices work more than centralized ones (they compute the
        gradient), decentralized at least as much as crowd."""
        central = device_flops_per_sample(shape, Approach.CENTRALIZED)
        crowd = device_flops_per_sample(shape, Approach.CROWD)
        local = device_flops_per_sample(shape, Approach.DECENTRALIZED)
        assert local >= crowd > central

    def test_device_load_independent_of_m(self):
        small = SystemShape(10, 50, 10, batch_size=20)
        large = SystemShape(100_000, 50, 10, batch_size=20)
        assert device_flops_per_sample(small, Approach.CROWD) == pytest.approx(
            device_flops_per_sample(large, Approach.CROWD)
        )


class TestStaleness:
    def test_formula(self, shape):
        # (tau_co + tau_ci) * M * Fs / b.
        assert expected_staleness(shape, 0.5, 0.5) == pytest.approx(
            1.0 * 1000 * 1.0 / 20
        )

    def test_uniform_delay_uses_half_tau_per_leg(self, shape):
        assert staleness_for_uniform_delay(shape, 2.0) == pytest.approx(
            expected_staleness(shape, 1.0, 1.0)
        )

    def test_batch_size_divides_staleness(self):
        a = SystemShape(1000, 50, 10, batch_size=1)
        b = SystemShape(1000, 50, 10, batch_size=20)
        assert expected_staleness(b, 1.0, 1.0) == pytest.approx(
            expected_staleness(a, 1.0, 1.0) / 20
        )

    def test_simulator_staleness_matches_model(self):
        """Empirical staleness from the event-driven simulator agrees with
        the IV-B3 closed form within a small factor."""
        from repro.data import iid_partition, make_mnist_like
        from repro.models import MulticlassLogisticRegression
        from repro.network import LinkDelays
        from repro.simulation import CrowdSimulator, SimulationConfig

        train, test = make_mnist_like(num_train=1000, num_test=200)
        devices = 50

        def measure(tau):
            config = SimulationConfig(
                num_devices=devices, batch_size=1,
                link_delays=LinkDelays.uniform(tau), learning_rate_constant=30.0,
            )
            parts = iid_partition(train, devices, np.random.default_rng(0))
            return CrowdSimulator(
                MulticlassLogisticRegression(50, 10), parts, test, config, seed=0
            ).run().mean_staleness

        model_shape = SystemShape(devices, 50, 10, batch_size=1, sampling_rate=1.0)
        small, large = measure(0.5), measure(2.0)
        predicted = staleness_for_uniform_delay(model_shape, 2.0)
        # The closed form is a "roughly" upper estimate (Section IV-B3): a
        # waiting device keeps buffering, so n_s grows past b and fewer,
        # larger updates arrive — measured staleness sits below the model
        # but within a small factor, and grows with τ.
        assert 0 < large <= predicted
        assert large >= predicted / 5
        assert large > small
