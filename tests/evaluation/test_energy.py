"""Tests for the device energy model (Section IV-B1/B2 extension)."""

import pytest

from repro.analysis import (
    Approach,
    EnergyProfile,
    SystemShape,
    battery_lifetime_hours,
    compute_energy_per_sample,
    radio_energy_per_sample,
    total_energy_per_sample,
)
from repro.utils.exceptions import ConfigurationError


@pytest.fixture
def shape():
    return SystemShape(num_devices=1000, num_features=50, num_classes=10,
                       batch_size=20, sampling_rate=1.0)


@pytest.fixture
def profile():
    return EnergyProfile()


class TestComponents:
    def test_compute_energy_ordering(self, shape, profile):
        """Crowd devices compute more than centralized ones (gradients),
        decentralized at least as much as crowd (adds local update)."""
        central = compute_energy_per_sample(shape, Approach.CENTRALIZED, profile)
        crowd = compute_energy_per_sample(shape, Approach.CROWD, profile)
        local = compute_energy_per_sample(shape, Approach.DECENTRALIZED, profile)
        assert local >= crowd > central

    def test_radio_energy_ordering_large_batch(self, shape, profile):
        """With b = 20 the crowd radio cost per sample is below the
        centralized approach's (fewer wake-ups, less volume)."""
        central = radio_energy_per_sample(shape, Approach.CENTRALIZED, profile)
        crowd = radio_energy_per_sample(shape, Approach.CROWD, profile)
        local = radio_energy_per_sample(shape, Approach.DECENTRALIZED, profile)
        assert local == 0.0
        assert crowd < central

    def test_radio_energy_scales_inversely_with_b(self, profile):
        def radio(b):
            shape = SystemShape(1000, 50, 10, batch_size=b)
            return radio_energy_per_sample(shape, Approach.CROWD, profile)

        assert radio(20) == pytest.approx(radio(1) / 20)

    def test_total_is_sum(self, shape, profile):
        total = total_energy_per_sample(shape, Approach.CROWD, profile)
        assert total == pytest.approx(
            compute_energy_per_sample(shape, Approach.CROWD, profile)
            + radio_energy_per_sample(shape, Approach.CROWD, profile)
        )

    def test_profile_validation(self):
        with pytest.raises(ConfigurationError):
            EnergyProfile(joules_per_flop=-1.0)


class TestBatteryLifetime:
    def test_paper_rate_is_no_battery_problem(self, profile):
        """At the deployment's F_s = 1/352 Hz the workload alone would run
        for years — the paper's 'no battery problem was observed'."""
        shape = SystemShape(7, 64, 3, batch_size=1, sampling_rate=1.0 / 352.0)
        hours = battery_lifetime_hours(shape, Approach.CROWD, profile)
        assert hours > 24 * 365  # > a year on the workload alone

    def test_overhead_dominates_at_low_rates(self, profile):
        """With a realistic platform draw the workload is negligible."""
        shape = SystemShape(7, 64, 3, batch_size=1, sampling_rate=1.0 / 352.0)
        idle_only = battery_lifetime_hours(
            shape, Approach.DECENTRALIZED, profile, overhead_watts=0.05
        )
        with_workload = battery_lifetime_hours(
            shape, Approach.CROWD, profile, overhead_watts=0.05
        )
        assert with_workload == pytest.approx(idle_only, rel=0.01)

    def test_lifetime_decreases_with_rate(self, profile):
        slow = SystemShape(100, 50, 10, batch_size=20, sampling_rate=0.01)
        fast = SystemShape(100, 50, 10, batch_size=20, sampling_rate=100.0)
        assert battery_lifetime_hours(
            fast, Approach.CROWD, profile
        ) < battery_lifetime_hours(slow, Approach.CROWD, profile)

    def test_zero_draw_infinite_lifetime(self):
        free = EnergyProfile(0.0, 0.0, 0.0, 0.0)
        shape = SystemShape(10, 5, 2, batch_size=1)
        assert battery_lifetime_hours(shape, Approach.DECENTRALIZED, free) == float(
            "inf"
        )

    def test_rejects_bad_battery(self, shape, profile):
        with pytest.raises(ConfigurationError):
            battery_lifetime_hours(shape, Approach.CROWD, profile,
                                   battery_joules=0.0)
