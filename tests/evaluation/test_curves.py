"""Tests for error curves and multi-trial aggregation."""

import json

import numpy as np
import pytest

from repro.evaluation import ErrorCurve, average_curves, curve_std


class TestErrorCurve:
    def test_basic_properties(self):
        curve = ErrorCurve(np.array([1, 10, 100]), np.array([0.9, 0.5, 0.1]))
        assert len(curve) == 3
        assert curve.final_error == pytest.approx(0.1)

    def test_rejects_non_increasing_iterations(self):
        with pytest.raises(ValueError):
            ErrorCurve(np.array([1, 1]), np.array([0.5, 0.4]))
        with pytest.raises(ValueError):
            ErrorCurve(np.array([2, 1]), np.array([0.5, 0.4]))

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            ErrorCurve(np.array([1, 2]), np.array([0.5]))

    def test_value_at_holds_last(self):
        curve = ErrorCurve(np.array([10, 20]), np.array([0.8, 0.4]))
        assert curve.value_at(5) == 0.8  # before first snapshot
        assert curve.value_at(10) == 0.8
        assert curve.value_at(15) == 0.8
        assert curve.value_at(20) == 0.4
        assert curve.value_at(1000) == 0.4

    def test_tail_error(self):
        curve = ErrorCurve(np.arange(1, 11), np.linspace(1.0, 0.1, 10))
        assert curve.tail_error(0.2) == pytest.approx((0.1 + 0.2) / 2)

    def test_tail_error_full_fraction(self):
        curve = ErrorCurve(np.array([1, 2]), np.array([0.4, 0.2]))
        assert curve.tail_error(1.0) == pytest.approx(0.3)

    def test_tail_error_rejects_bad_fraction(self):
        curve = ErrorCurve(np.array([1]), np.array([0.5]))
        with pytest.raises(ValueError):
            curve.tail_error(0.0)

    def test_empty_curve_guards(self):
        curve = ErrorCurve(np.array([], dtype=int), np.array([]))
        with pytest.raises(ValueError):
            _ = curve.final_error


class TestErrorCurveRoundTrip:
    def test_to_dict_plain_types(self):
        curve = ErrorCurve(np.array([1, 2]), np.array([0.5, 0.25]))
        data = curve.to_dict()
        assert data == {"iterations": [1, 2], "errors": [0.5, 0.25]}
        assert all(isinstance(v, int) for v in data["iterations"])
        assert all(isinstance(v, float) for v in data["errors"])

    def test_from_dict_restores_dtypes(self):
        curve = ErrorCurve.from_dict({"iterations": [1, 2],
                                      "errors": [0.5, 0.25]})
        assert curve.iterations.dtype == np.int64
        assert curve.errors.dtype == np.float64

    def test_json_round_trip_is_bit_identical(self):
        # Awkward floats: accumulated sums whose repr needs all 17
        # significant digits to round-trip.
        rng = np.random.default_rng(7)
        errors = np.cumsum(rng.uniform(0.0, 1e-3, size=64)) + 0.1
        curve = ErrorCurve(np.arange(1, 65), errors)
        loaded = ErrorCurve.from_dict(json.loads(json.dumps(curve.to_dict())))
        assert np.array_equal(loaded.iterations, curve.iterations)
        assert np.array_equal(loaded.errors, curve.errors)
        assert loaded.errors.tobytes() == curve.errors.tobytes()

    def test_empty_curve_round_trips(self):
        curve = ErrorCurve(np.array([], dtype=np.int64),
                           np.array([], dtype=np.float64))
        loaded = ErrorCurve.from_dict(curve.to_dict())
        assert len(loaded) == 0


class TestAverageCurves:
    def test_pointwise_mean_on_shared_grid(self):
        a = ErrorCurve(np.array([1, 2]), np.array([1.0, 0.5]))
        b = ErrorCurve(np.array([1, 2]), np.array([0.5, 0.3]))
        avg = average_curves([a, b])
        assert np.allclose(avg.errors, [0.75, 0.4])

    def test_mixed_grids_use_union_clipped_to_shortest(self):
        a = ErrorCurve(np.array([1, 4]), np.array([1.0, 0.4]))
        b = ErrorCurve(np.array([2, 8]), np.array([0.8, 0.2]))
        avg = average_curves([a, b])
        assert avg.iterations.tolist() == [1, 2, 4]

    def test_explicit_grid(self):
        a = ErrorCurve(np.array([1, 10]), np.array([1.0, 0.0]))
        avg = average_curves([a], grid=np.array([5]))
        assert avg.errors.tolist() == [1.0]  # hold-last between snapshots

    def test_single_curve_identity(self):
        a = ErrorCurve(np.array([1, 2, 3]), np.array([0.9, 0.6, 0.3]))
        avg = average_curves([a])
        assert np.allclose(avg.errors, a.errors)

    def test_rejects_empty_list(self):
        with pytest.raises(ValueError):
            average_curves([])

    def test_std_zero_for_identical_curves(self):
        a = ErrorCurve(np.array([1, 2]), np.array([0.5, 0.25]))
        std = curve_std([a, a], grid=np.array([1, 2]))
        assert np.allclose(std, 0.0)

    def test_std_positive_for_distinct_curves(self):
        a = ErrorCurve(np.array([1]), np.array([0.4]))
        b = ErrorCurve(np.array([1]), np.array([0.8]))
        std = curve_std([a, b], grid=np.array([1]))
        assert std[0] == pytest.approx(0.2)
