"""Tests for evaluation metrics."""

import numpy as np
import pytest

from repro.data import Dataset
from repro.evaluation import snapshot_grid, time_averaged_error
from repro.evaluation import test_error as compute_test_error
from repro.evaluation import test_loss as compute_test_loss
from repro.models import MulticlassLogisticRegression


class TestTestError:
    def test_perfect_classifier(self):
        model = MulticlassLogisticRegression(1, 2)
        ds = Dataset(np.array([[1.0], [-1.0]]), np.array([1, 0]), 2)
        assert compute_test_error(model, np.array([-1.0, 1.0]), ds) == 0.0

    def test_inverted_classifier(self):
        model = MulticlassLogisticRegression(1, 2)
        ds = Dataset(np.array([[1.0], [-1.0]]), np.array([1, 0]), 2)
        assert compute_test_error(model, np.array([1.0, -1.0]), ds) == 1.0

    def test_empty_dataset_raises(self):
        model = MulticlassLogisticRegression(1, 2)
        ds = Dataset(np.zeros((0, 1)), np.zeros(0, dtype=int), 2)
        with pytest.raises(ValueError):
            compute_test_error(model, np.zeros(2), ds)

    def test_loss_includes_regularization(self):
        model = MulticlassLogisticRegression(1, 2, l2_regularization=2.0)
        ds = Dataset(np.array([[0.0]]), np.array([0]), 2)
        w = np.array([1.0, 0.0])
        assert compute_test_loss(model, w, ds) == pytest.approx(np.log(2.0) + 1.0)


class TestTimeAveragedError:
    def test_fig3_definition(self):
        errors = np.array([True, False, False, True])
        out = time_averaged_error(errors)
        assert np.allclose(out, [1.0, 0.5, 1 / 3, 0.5])

    def test_converges_to_rate(self, rng):
        errors = rng.random(20_000) < 0.2
        out = time_averaged_error(errors)
        assert out[-1] == pytest.approx(0.2, abs=0.02)


class TestSnapshotGrid:
    def test_includes_endpoint(self):
        grid = snapshot_grid(1000, 10)
        assert grid[-1] == 1000
        assert grid[0] == 1

    def test_unique_and_increasing(self):
        grid = snapshot_grid(50, 100)
        assert np.all(np.diff(grid) > 0)
        assert grid.size == 50  # clipped to max_iterations points

    def test_small_horizon(self):
        assert snapshot_grid(1, 10).tolist() == [1]

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            snapshot_grid(0, 10)
        with pytest.raises(ValueError):
            snapshot_grid(10, 0)


class TestSnapshotEvaluator:
    def _setup(self, num_test=40):
        from repro.data import make_mnist_like

        model = MulticlassLogisticRegression(50, 10)
        _, test = make_mnist_like(num_train=20, num_test=num_test, seed=0)
        return model, test

    def test_matches_test_error_bitwise(self):
        from repro.evaluation.metrics import SnapshotEvaluator

        model, test = self._setup()
        evaluator = SnapshotEvaluator(model, test)
        rng = np.random.default_rng(3)
        for _ in range(5):
            params = rng.normal(size=model.num_parameters)
            assert evaluator.error(params) == compute_test_error(model, params, test)

    def test_repeated_parameters_hit_cache(self):
        from repro.evaluation.metrics import SnapshotEvaluator

        model, test = self._setup()
        evaluator = SnapshotEvaluator(model, test)
        params = np.random.default_rng(0).normal(size=model.num_parameters)
        first = evaluator.error(params)
        for _ in range(3):
            assert evaluator.error(params.copy()) == first
        assert evaluator.misses == 1
        assert evaluator.hits == 3

    def test_subsample_draws_once_and_is_deterministic(self):
        from repro.evaluation.metrics import SnapshotEvaluator

        model, test = self._setup()
        params = np.random.default_rng(0).normal(size=model.num_parameters)
        a = SnapshotEvaluator(model, test, subsample=10,
                              rng=np.random.default_rng(7))
        b = SnapshotEvaluator(model, test, subsample=10,
                              rng=np.random.default_rng(7))
        assert a.num_examples == b.num_examples == 10
        assert a.error(params) == b.error(params)

    def test_subsample_larger_than_dataset_uses_all(self):
        from repro.evaluation.metrics import SnapshotEvaluator

        model, test = self._setup(num_test=8)
        evaluator = SnapshotEvaluator(model, test, subsample=100)
        assert evaluator.num_examples == 8

    def test_binding_subsample_requires_rng(self):
        from repro.evaluation.metrics import SnapshotEvaluator

        model, test = self._setup()
        with pytest.raises(ValueError):
            SnapshotEvaluator(model, test, subsample=5)
