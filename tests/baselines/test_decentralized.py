"""Tests for the decentralized (no-communication) baseline."""

import numpy as np
import pytest

from repro.baselines import DecentralizedTrainer
from repro.data import Dataset, iid_partition, make_mnist_like
from repro.models import MulticlassLogisticRegression
from repro.optim import InverseSqrtRate
from repro.utils.exceptions import ConfigurationError


class TestMechanics:
    def test_curve_x_axis_scaled_by_m(self, small_dataset, rng):
        parts = iid_partition(small_dataset, 3, rng)
        model = MulticlassLogisticRegression(4, 3)
        trainer = DecentralizedTrainer(model, InverseSqrtRate(1.0))
        result = trainer.fit(parts, small_dataset, rng, num_passes=1)
        # Each device consumes 30 samples; x axis counts crowd-wide samples.
        assert result.curve.iterations[-1] == 30 * 3

    def test_evaluation_subsample(self, small_dataset, rng):
        parts = iid_partition(small_dataset, 9, rng)
        model = MulticlassLogisticRegression(4, 3)
        trainer = DecentralizedTrainer(
            model, InverseSqrtRate(1.0), evaluation_devices=4
        )
        result = trainer.fit(parts, small_dataset, rng)
        assert result.final_errors.shape == (4,)

    def test_rejects_empty_device_list(self, small_dataset, rng):
        model = MulticlassLogisticRegression(4, 3)
        trainer = DecentralizedTrainer(model, InverseSqrtRate(1.0))
        with pytest.raises(ConfigurationError):
            trainer.fit([], small_dataset, rng)

    def test_skips_empty_devices(self, small_dataset, rng):
        model = MulticlassLogisticRegression(4, 3)
        empty = Dataset(np.zeros((0, 4)), np.zeros(0, dtype=int), 3)
        parts = [small_dataset, empty, small_dataset]
        trainer = DecentralizedTrainer(model, InverseSqrtRate(1.0),
                                       evaluation_devices=3)
        result = trainer.fit(parts, small_dataset, rng)
        assert len(result.final_errors) <= 3

    def test_rejects_bad_eval_count(self):
        model = MulticlassLogisticRegression(4, 3)
        with pytest.raises(ConfigurationError):
            DecentralizedTrainer(model, InverseSqrtRate(1.0), evaluation_devices=0)


class TestDataFragmentationPenalty:
    def test_many_devices_worse_than_few(self):
        """Section IV-A: each device sees ~1/M of the data, so the average
        local model degrades as M grows."""
        train, test = make_mnist_like(num_train=3000, num_test=600)
        model = MulticlassLogisticRegression(50, 10)
        trainer = DecentralizedTrainer(
            model, InverseSqrtRate(30.0), evaluation_devices=8
        )

        def final(num_devices, seed):
            parts = iid_partition(train, num_devices, np.random.default_rng(seed))
            return trainer.fit(
                parts, test, np.random.default_rng(seed), num_passes=3
            ).curve.final_error

        few = final(5, 0)  # 600 samples/device
        many = final(100, 0)  # 30 samples/device
        assert many > few + 0.1
