"""Tests for Appendix C input perturbation."""

import math

import numpy as np
import pytest

from repro.baselines import perturb_dataset, perturb_features
from repro.data import Dataset
from repro.privacy import CentralizedBudget


@pytest.fixture
def dataset(rng):
    features = rng.normal(size=(200, 5))
    features /= np.abs(features).sum(axis=1, keepdims=True)
    return Dataset(features, rng.integers(0, 4, 200), 4)


class TestFeaturePerturbation:
    def test_identity_when_non_private(self, dataset, rng):
        out = perturb_features(dataset.features, math.inf, rng)
        assert np.array_equal(out, dataset.features)

    def test_noise_variance_is_eight_over_eps_squared(self, rng):
        """Section IV-A: 'Laplace noise of constant variance 8/ε²'."""
        eps = 2.0
        out = perturb_features(np.zeros((2000, 50)), eps, rng)
        assert out.var() == pytest.approx(8.0 / eps**2, rel=0.05)

    def test_noise_independent_of_batch_size(self, rng):
        """The centralized approach's structural weakness: unlike Crowd-ML,
        per-sample noise does not shrink with any minibatch size."""
        eps = 1.0
        small = perturb_features(np.zeros((500, 20)), eps, np.random.default_rng(1))
        large = perturb_features(np.zeros((5000, 20)), eps, np.random.default_rng(2))
        assert small.var() == pytest.approx(large.var(), rel=0.1)


class TestDatasetPerturbation:
    def test_identity_when_non_private(self, dataset, rng):
        out = perturb_dataset(dataset, CentralizedBudget.even_split(math.inf), rng)
        assert np.array_equal(out.features, dataset.features)
        assert np.array_equal(out.labels, dataset.labels)

    def test_both_features_and_labels_perturbed(self, dataset, rng):
        out = perturb_dataset(dataset, CentralizedBudget.even_split(0.5), rng)
        assert not np.allclose(out.features, dataset.features)
        assert not np.array_equal(out.labels, dataset.labels)

    def test_label_flip_rate_matches_mechanism(self, rng):
        eps = 1.0
        ds = Dataset(np.zeros((50_000, 2)), np.zeros(50_000, dtype=int), 10)
        out = perturb_dataset(ds, CentralizedBudget.even_split(eps), rng)
        from repro.privacy import label_flip_distribution

        keep = np.mean(out.labels == 0)
        # eps_y = eps/2 under the even split.
        expected = label_flip_distribution(eps / 2.0, 10)[0]
        assert keep == pytest.approx(expected, rel=0.05)

    def test_num_classes_preserved(self, dataset, rng):
        out = perturb_dataset(dataset, CentralizedBudget.even_split(1.0), rng)
        assert out.num_classes == dataset.num_classes
        assert len(out) == len(dataset)
