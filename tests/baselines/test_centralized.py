"""Tests for the centralized batch baseline."""

import math

import numpy as np
import pytest

from repro.baselines import CentralizedBatchTrainer
from repro.models import MulticlassLogisticRegression
from repro.privacy import CentralizedBudget


class TestCleanTraining:
    def test_fits_separable_data(self, small_dataset):
        model = MulticlassLogisticRegression(4, 3, l2_regularization=1e-3)
        trainer = CentralizedBatchTrainer(model)
        result = trainer.fit(small_dataset, np.random.default_rng(0))
        assert result.converged
        error = model.error_rate(
            result.parameters, small_dataset.features, small_dataset.labels
        )
        assert error == 0.0

    def test_achieves_lower_loss_than_zero_vector(self, small_dataset):
        model = MulticlassLogisticRegression(4, 3, l2_regularization=1e-3)
        result = CentralizedBatchTrainer(model).fit(
            small_dataset, np.random.default_rng(0)
        )
        zero_loss = model.loss(
            model.init_parameters(), small_dataset.features, small_dataset.labels
        )
        assert result.train_loss < zero_loss

    def test_deterministic_given_data(self, small_dataset):
        model = MulticlassLogisticRegression(4, 3, l2_regularization=1e-3)
        a = CentralizedBatchTrainer(model).fit(small_dataset, np.random.default_rng(0))
        b = CentralizedBatchTrainer(model).fit(small_dataset, np.random.default_rng(1))
        # No perturbation -> rng unused -> identical fits.
        assert np.allclose(a.parameters, b.parameters)

    def test_evaluate_returns_test_error(self, small_dataset):
        model = MulticlassLogisticRegression(4, 3, l2_regularization=1e-3)
        err = CentralizedBatchTrainer(model).evaluate(
            small_dataset, small_dataset, np.random.default_rng(0)
        )
        assert err == 0.0


class TestPrivateTraining:
    def test_privacy_degrades_performance(self, small_dataset):
        """Fig. 5's premise: input perturbation hurts the batch learner."""
        model = MulticlassLogisticRegression(4, 3, l2_regularization=1e-3)
        clean = CentralizedBatchTrainer(model).evaluate(
            small_dataset, small_dataset, np.random.default_rng(0)
        )
        noisy = CentralizedBatchTrainer(
            model, budget=CentralizedBudget.even_split(0.2)
        ).evaluate(small_dataset, small_dataset, np.random.default_rng(0))
        assert noisy > clean

    def test_infinite_budget_matches_clean(self, small_dataset):
        model = MulticlassLogisticRegression(4, 3, l2_regularization=1e-3)
        clean = CentralizedBatchTrainer(model).fit(
            small_dataset, np.random.default_rng(0)
        )
        inf_budget = CentralizedBatchTrainer(
            model, budget=CentralizedBudget.even_split(math.inf)
        ).fit(small_dataset, np.random.default_rng(0))
        assert np.allclose(clean.parameters, inf_budget.parameters)

    def test_test_data_never_perturbed(self, small_dataset):
        """Footnote 8: evaluation is on clean test inputs, so two trainers
        with different budgets still evaluate on identical test data."""
        model = MulticlassLogisticRegression(4, 3, l2_regularization=1e-3)
        trainer = CentralizedBatchTrainer(model, CentralizedBudget.even_split(0.5))
        result = trainer.fit(small_dataset, np.random.default_rng(0))
        # evaluate() == test_error on the clean set with fitted parameters.
        err_direct = model.error_rate(
            result.parameters, small_dataset.features, small_dataset.labels
        )
        err_eval = trainer.evaluate(
            small_dataset, small_dataset, np.random.default_rng(0)
        )
        assert err_eval == pytest.approx(err_direct)
