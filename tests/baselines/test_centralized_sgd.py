"""Tests for the centralized-SGD (input-perturbed) baseline."""

import numpy as np
import pytest

from repro.baselines import CentralizedSGDTrainer
from repro.models import MulticlassLogisticRegression
from repro.optim import InverseSqrtRate
from repro.privacy import CentralizedBudget
from repro.utils.exceptions import ConfigurationError


@pytest.fixture
def model():
    return MulticlassLogisticRegression(4, 3, l2_regularization=1e-3)


class TestCleanSGD:
    def test_learns_separable_data(self, model, small_dataset):
        trainer = CentralizedSGDTrainer(model, InverseSqrtRate(2.0), batch_size=1)
        result = trainer.fit(
            small_dataset, small_dataset, np.random.default_rng(0), num_passes=10
        )
        assert result.curve.final_error <= 0.05

    def test_curve_iterations_count_samples(self, model, small_dataset):
        trainer = CentralizedSGDTrainer(model, InverseSqrtRate(2.0), batch_size=5)
        result = trainer.fit(
            small_dataset, small_dataset, np.random.default_rng(0), num_passes=2
        )
        assert result.curve.iterations[-1] == 2 * len(small_dataset)

    def test_batch_size_changes_update_count_not_samples(self, model, small_dataset):
        for b in (1, 10):
            trainer = CentralizedSGDTrainer(model, InverseSqrtRate(2.0), batch_size=b)
            result = trainer.fit(
                small_dataset, small_dataset, np.random.default_rng(0)
            )
            assert result.curve.iterations[-1] == len(small_dataset)

    def test_snapshot_count_respected(self, model, small_dataset):
        trainer = CentralizedSGDTrainer(model, InverseSqrtRate(2.0))
        result = trainer.fit(
            small_dataset, small_dataset, np.random.default_rng(0), num_snapshots=10
        )
        assert len(result.curve) <= 12

    def test_rejects_bad_batch_size(self, model):
        with pytest.raises(ConfigurationError):
            CentralizedSGDTrainer(model, InverseSqrtRate(1.0), batch_size=0)


class TestPerturbedSGD:
    def test_strong_privacy_destroys_learning(self, model, small_dataset):
        """The Fig. 5 phenomenon: at small ε the perturbed-input learner is
        near-useless regardless of minibatch size."""
        errors = {}
        for b in (1, 10):
            trainer = CentralizedSGDTrainer(
                model,
                InverseSqrtRate(2.0),
                batch_size=b,
                budget=CentralizedBudget.even_split(0.1),
            )
            result = trainer.fit(
                small_dataset, small_dataset, np.random.default_rng(0), num_passes=5
            )
            errors[b] = result.curve.final_error
        assert errors[1] > 0.4
        assert errors[10] > 0.4

    def test_minibatch_cannot_rescue_perturbed_inputs(self, model, small_dataset):
        """Increasing b gives no significant improvement (constant noise)."""
        def tail(b):
            trainer = CentralizedSGDTrainer(
                model,
                InverseSqrtRate(2.0),
                batch_size=b,
                budget=CentralizedBudget.even_split(0.1),
            )
            return trainer.fit(
                small_dataset, small_dataset, np.random.default_rng(0), num_passes=5
            ).curve.tail_error()

        assert abs(tail(1) - tail(20)) < 0.25

    def test_weak_privacy_close_to_clean(self, model, small_dataset):
        clean = CentralizedSGDTrainer(model, InverseSqrtRate(2.0)).fit(
            small_dataset, small_dataset, np.random.default_rng(0), num_passes=5
        )
        weak = CentralizedSGDTrainer(
            model,
            InverseSqrtRate(2.0),
            budget=CentralizedBudget.even_split(1e6),
        ).fit(small_dataset, small_dataset, np.random.default_rng(0), num_passes=5)
        assert abs(clean.curve.final_error - weak.curve.final_error) < 0.1
