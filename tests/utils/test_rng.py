"""Tests for deterministic hierarchical RNG derivation."""

import numpy as np
import pytest

from repro.utils.rng import RngFactory, as_generator, derive_seed, spawn_generators


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", 1) == derive_seed(42, "a", 1)

    def test_distinct_paths_differ(self):
        assert derive_seed(42, "a", 1) != derive_seed(42, "a", 2)
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_distinct_roots_differ(self):
        assert derive_seed(0, "x") != derive_seed(1, "x")

    def test_path_is_not_concatenation_ambiguous(self):
        # ("ab", "c") must differ from ("a", "bc").
        assert derive_seed(0, "ab", "c") != derive_seed(0, "a", "bc")

    def test_output_is_64_bit(self):
        seed = derive_seed(123, "component")
        assert 0 <= seed < 2**64

    def test_no_names_is_valid(self):
        assert derive_seed(7) == derive_seed(7)


class TestAsGenerator:
    def test_accepts_int(self):
        gen = as_generator(3)
        assert isinstance(gen, np.random.Generator)

    def test_same_int_same_stream(self):
        assert as_generator(3).random() == as_generator(3).random()

    def test_passes_through_generator(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)


class TestRngFactory:
    def test_same_name_same_stream(self):
        factory = RngFactory(9)
        a = factory.generator("noise", 0).random()
        b = factory.generator("noise", 0).random()
        assert a == b

    def test_different_names_different_streams(self):
        factory = RngFactory(9)
        a = factory.generator("noise", 0).random()
        b = factory.generator("noise", 1).random()
        assert a != b

    def test_child_namespacing(self):
        factory = RngFactory(9)
        child = factory.child("device", 3)
        # A child's stream matches deriving the full path from the root.
        direct = RngFactory(factory.seed("device", 3)).generator("x")
        assert child.generator("x").random() == direct.random()

    def test_root_seed_property(self):
        assert RngFactory(17).root_seed == 17

    def test_repr_contains_seed(self):
        assert "17" in repr(RngFactory(17))

    def test_spawn_generators_independent(self):
        gens = spawn_generators(RngFactory(0), "dev", 5)
        values = [g.random() for g in gens]
        assert len(set(values)) == 5

    def test_adding_consumer_does_not_shift_existing_stream(self):
        # Streams are keyed by name: consuming "a" never changes "b".
        factory = RngFactory(4)
        before = factory.generator("b").random()
        factory.generator("a").random()
        after = factory.generator("b").random()
        assert before == after
