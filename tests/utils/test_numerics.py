"""Tests for numerically stable primitives."""

import numpy as np
import pytest

from repro.utils.numerics import (
    l1_normalize,
    log_sum_exp,
    one_hot,
    running_mean,
    softmax,
)


class TestLogSumExp:
    def test_matches_naive_for_small_values(self):
        scores = np.array([0.1, 0.5, -0.3])
        assert np.isclose(log_sum_exp(scores), np.log(np.exp(scores).sum()))

    def test_no_overflow_for_large_values(self):
        scores = np.array([1000.0, 1000.0])
        assert np.isclose(log_sum_exp(scores), 1000.0 + np.log(2.0))

    def test_no_underflow_for_very_negative(self):
        scores = np.array([-1000.0, -1000.0])
        assert np.isfinite(log_sum_exp(scores))

    def test_axis_handling(self):
        scores = np.array([[0.0, 0.0], [1.0, 1.0]])
        out = log_sum_exp(scores, axis=1)
        assert out.shape == (2,)
        assert np.allclose(out, [np.log(2.0), 1.0 + np.log(2.0)])


class TestSoftmax:
    def test_sums_to_one(self):
        probs = softmax(np.array([1.0, 2.0, 3.0]))
        assert np.isclose(probs.sum(), 1.0)

    def test_uniform_for_equal_scores(self):
        probs = softmax(np.zeros(4))
        assert np.allclose(probs, 0.25)

    def test_invariant_to_constant_shift(self):
        scores = np.array([1.0, 2.0, 3.0])
        assert np.allclose(softmax(scores), softmax(scores + 100.0))

    def test_stable_for_huge_scores(self):
        probs = softmax(np.array([1e5, 0.0]))
        assert np.isclose(probs[0], 1.0)

    def test_batch_axis(self):
        scores = np.zeros((3, 5))
        probs = softmax(scores, axis=1)
        assert np.allclose(probs.sum(axis=1), 1.0)


class TestOneHot:
    def test_basic(self):
        out = one_hot(np.array([0, 2]), 3)
        assert out.tolist() == [[1.0, 0.0, 0.0], [0.0, 0.0, 1.0]]

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            one_hot(np.zeros((2, 2), dtype=int), 3)

    def test_empty(self):
        assert one_hot(np.array([], dtype=int), 3).shape == (0, 3)


class TestL1Normalize:
    def test_unit_norm(self):
        out = l1_normalize(np.array([[2.0, -2.0]]))
        assert np.isclose(np.abs(out).sum(), 1.0)

    def test_zero_rows_untouched(self):
        out = l1_normalize(np.zeros((2, 3)))
        assert np.allclose(out, 0.0)

    def test_never_exceeds_one(self):
        rng = np.random.default_rng(0)
        out = l1_normalize(rng.normal(size=(50, 10)))
        assert np.all(np.sum(np.abs(out), axis=1) <= 1.0 + 1e-12)

    def test_preserves_direction(self):
        row = np.array([[3.0, 1.0]])
        out = l1_normalize(row)
        assert np.allclose(out / out.sum(), row / row.sum())


class TestRunningMean:
    def test_basic(self):
        out = running_mean(np.array([1.0, 0.0, 1.0, 0.0]))
        assert np.allclose(out, [1.0, 0.5, 2 / 3, 0.5])

    def test_empty(self):
        assert running_mean(np.array([])).size == 0

    def test_constant_sequence(self):
        assert np.allclose(running_mean(np.full(5, 0.3)), 0.3)

    def test_rejects_matrix(self):
        with pytest.raises(ValueError):
            running_mean(np.zeros((2, 2)))
