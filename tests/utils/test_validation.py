"""Tests for argument validation helpers."""

import numpy as np
import pytest

from repro.utils.exceptions import ConfigurationError
from repro.utils.validation import (
    check_fraction,
    check_in_choices,
    check_labels,
    check_matrix,
    check_non_negative,
    check_positive,
    check_positive_int,
    check_vector,
)


class TestScalarChecks:
    def test_positive_accepts(self):
        assert check_positive(1.5, "x") == 1.5

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf")])
    def test_positive_rejects(self, bad):
        with pytest.raises(ConfigurationError, match="x"):
            check_positive(bad, "x")

    def test_non_negative_accepts_zero(self):
        assert check_non_negative(0.0, "x") == 0.0

    @pytest.mark.parametrize("bad", [-0.1, float("nan")])
    def test_non_negative_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            check_non_negative(bad, "x")

    def test_positive_int_accepts(self):
        assert check_positive_int(3, "n") == 3
        assert check_positive_int(np.int64(3), "n") == 3

    @pytest.mark.parametrize("bad", [0, -1, 1.5, True, "3"])
    def test_positive_int_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            check_positive_int(bad, "n")

    def test_fraction_inclusive(self):
        assert check_fraction(0.0, "f") == 0.0
        assert check_fraction(1.0, "f") == 1.0

    def test_fraction_exclusive(self):
        with pytest.raises(ConfigurationError):
            check_fraction(0.0, "f", inclusive=False)
        assert check_fraction(0.5, "f", inclusive=False) == 0.5

    def test_in_choices(self):
        assert check_in_choices("a", "c", ["a", "b"]) == "a"
        with pytest.raises(ConfigurationError):
            check_in_choices("z", "c", ["a", "b"])


class TestArrayChecks:
    def test_vector_coerces_dtype(self):
        out = check_vector([1, 2, 3], "v")
        assert out.dtype == np.float64

    def test_vector_size_enforced(self):
        with pytest.raises(ConfigurationError, match="length"):
            check_vector([1.0, 2.0], "v", size=3)

    def test_vector_rejects_matrix(self):
        with pytest.raises(ConfigurationError):
            check_vector(np.zeros((2, 2)), "v")

    def test_vector_rejects_nan(self):
        with pytest.raises(ConfigurationError, match="finite"):
            check_vector([1.0, float("nan")], "v")

    def test_matrix_shape_wildcards(self):
        out = check_matrix(np.zeros((4, 3)), "m", shape=(None, 3))
        assert out.shape == (4, 3)

    def test_matrix_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            check_matrix(np.zeros((4, 3)), "m", shape=(None, 5))

    def test_matrix_rejects_vector(self):
        with pytest.raises(ConfigurationError):
            check_matrix(np.zeros(4), "m")

    def test_matrix_rejects_inf(self):
        bad = np.zeros((2, 2))
        bad[0, 0] = np.inf
        with pytest.raises(ConfigurationError, match="finite"):
            check_matrix(bad, "m")


class TestLabelChecks:
    def test_accepts_int_labels(self):
        out = check_labels(np.array([0, 1, 2]), "y", 3)
        assert out.dtype == np.int64

    def test_accepts_integral_floats(self):
        out = check_labels(np.array([0.0, 1.0]), "y", 2)
        assert out.tolist() == [0, 1]

    def test_rejects_fractional_floats(self):
        with pytest.raises(ConfigurationError):
            check_labels(np.array([0.5]), "y", 2)

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            check_labels(np.array([0, 3]), "y", 3)
        with pytest.raises(ConfigurationError):
            check_labels(np.array([-1]), "y", 3)

    def test_empty_labels_ok(self):
        assert check_labels(np.array([], dtype=np.int64), "y", 3).size == 0
